"""Ablation — round length factor K (paper §4.1).

"The number of flit cycles in a round is an integer multiple K (K > 1) of
the number of virtual channels per link ... a greater value of K provides
a higher flexibility for bandwidth allocation.  However, it may increase
jitter on a connection since rounds take longer to complete.  Therefore,
the selected value for K is a trade-off between flexibility and jitter."

This sweep runs with round budgets *enforced* (the machinery §4.1/§4.3
describes) and reports, per K: allocation granularity (the bandwidth
overshoot of a ceil-ed allocation), mean jitter and mean delay.
"""

from conftest import bench_full, run_once

from repro.core.config import RouterConfig
from repro.harness.figures import FULL_CYCLES, QUICK_CYCLES
from repro.harness.report import format_table
from repro.harness.single_router import ExperimentSpec, run_single_router_experiment
from repro.traffic.rates import PAPER_RATE_SET

ROUND_FACTORS = (1, 2, 4, 8)
LOAD = 0.6


def allocation_overshoot(config: RouterConfig) -> float:
    """Mean relative bandwidth overshoot of integer cycles/round grants."""
    overshoots = []
    for rate in PAPER_RATE_SET:
        cycles = config.rate_to_cycles_per_round(rate)
        granted = cycles / config.round_length * config.link_rate_bps
        overshoots.append(granted / rate - 1.0)
    return sum(overshoots) / len(overshoots)


def run_round_factor_sweep():
    cycles = FULL_CYCLES if bench_full() else QUICK_CYCLES
    results = {}
    for k in ROUND_FACTORS:
        config = RouterConfig(round_factor=k, enforce_round_budgets=True)
        spec = ExperimentSpec(
            target_load=LOAD, priority="biased", config=config, seed=1, **cycles
        )
        results[k] = run_single_router_experiment(spec)
    return results


def test_round_factor_tradeoff(benchmark):
    results = run_once(benchmark, run_round_factor_sweep)
    rows = []
    for k, result in sorted(results.items()):
        config = result.spec.config
        rows.append(
            [
                k,
                config.round_length,
                allocation_overshoot(config),
                result.mean_jitter_cycles,
                result.mean_delay_us,
                result.utilisation,
            ]
        )
    print()
    print(
        format_table(
            ["K", "round_cycles", "alloc_overshoot", "jitter_cyc", "delay_us", "util"],
            rows,
        )
    )
    # Flexibility: larger K always shrinks the allocation granularity.
    overshoots = [row[2] for row in rows]
    assert overshoots == sorted(overshoots, reverse=True)
    # The budget machinery must not break throughput at this load.
    for row in rows:
        assert row[5] >= LOAD * 0.9
