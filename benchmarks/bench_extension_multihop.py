"""Extension study — end-to-end QoS across a multi-router cluster (§6).

The paper evaluates one router and names network-level VBR/best-effort
support as the project's next step.  This extension bench loads a
12-switch irregular cluster with EPB-established CBR streams at rising
link utilisation — with and without best-effort background chatter — and
reports end-to-end delay/jitter, per-hop scaling, and acceptance ratios.
"""

from conftest import bench_full, run_once

from repro.harness.network_experiment import (
    NetworkExperimentSpec,
    run_network_experiment,
)
from repro.harness.report import format_table

LINK_LOADS = (0.2, 0.4, 0.6)


def run_load_sweep():
    cycles = (
        dict(warmup_cycles=8000, measure_cycles=40000)
        if bench_full()
        else dict(warmup_cycles=3000, measure_cycles=12000)
    )
    results = {}
    for load in LINK_LOADS:
        for be_rate in (0.0, 2.0):
            spec = NetworkExperimentSpec(
                target_link_load=load,
                best_effort_rate=be_rate,
                seed=2,
                **cycles,
            )
            results[(load, be_rate)] = run_network_experiment(spec)
    return results


def test_multihop_qos(benchmark):
    results = run_once(benchmark, run_load_sweep)
    rows = []
    for (load, be_rate), result in sorted(results.items()):
        rows.append(
            [
                load,
                be_rate,
                result.streams,
                result.acceptance_ratio,
                result.mean_hops,
                result.delay_cycles.mean,
                result.delay_per_hop,
                result.jitter_cycles.mean,
                result.best_effort_delivered,
            ]
        )
    print()
    print(
        format_table(
            [
                "link_load",
                "be_rate",
                "streams",
                "accept",
                "hops",
                "delay_cyc",
                "delay/hop",
                "jitter",
                "be_pkts",
            ],
            rows,
        )
    )
    no_be = {load: results[(load, 0.0)] for load in LINK_LOADS}
    # End-to-end delay grows with network load.
    assert (
        no_be[LINK_LOADS[-1]].delay_cycles.mean
        >= no_be[LINK_LOADS[0]].delay_cycles.mean
    )
    # Per-hop delay stays within a small factor of the single-router
    # result at comparable loads: hops compose roughly additively.
    # (mean_hops counts routers, i.e. links + 1, so the uncontended
    # per-hop figure sits just below 1 cycle.)
    for load in LINK_LOADS:
        assert 0.5 <= no_be[load].delay_per_hop < 10.0
    # Best-effort chatter must not break the streams' QoS class: delay
    # rises by at most a small factor (control/data priority dominates).
    for load in LINK_LOADS:
        with_be = results[(load, 2.0)]
        assert with_be.delay_cycles.mean <= no_be[load].delay_cycles.mean * 3 + 2
        assert with_be.best_effort_delivered > 0
    # Acceptance degrades monotonically-ish with load.
    assert (
        results[(LINK_LOADS[-1], 0.0)].acceptance_ratio
        <= results[(LINK_LOADS[0], 0.0)].acceptance_ratio + 0.01
    )
