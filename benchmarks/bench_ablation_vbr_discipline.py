"""Ablation — VBR excess-bandwidth service discipline (paper §4.3).

"The idea here is that it is preferable to service the excess bandwidth
of most VBR connections completely at the risk of not servicing some of
them at all.  Certainly other service disciplines are possible."

Compares the paper's complete-one-connection-first discipline
(``vbr_excess_discipline='priority'``) against interleaved sharing
(``'shared'``): several bursty VBR streams with distinct priorities fight
for one output link's excess bandwidth; the benchmark reports per-stream
mean delays under both disciplines.
"""

from conftest import bench_full, run_once

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.harness.report import format_table
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.vbr import MpegProfile, VbrSource

NUM_STREAMS = 8


def run_discipline(discipline: str):
    """Eight bursty VBR streams into one output link, with the sum of the
    contracted peaks well above the link's excess capacity — so during
    overlapping bursts the discipline decides who is served.  Returns
    per-stream mean delays (stream 0 = highest priority).

    The traffic draws are seeded identically for both disciplines, so the
    comparison sees the exact same frame sequences.
    """
    config = RouterConfig(
        enforce_round_budgets=True,
        vbr_excess_discipline=discipline,
        vbr_concurrency_factor=4.0,
    )
    sim = Simulator()
    rng = SeededRng(31, "vbr-discipline")
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
    profile = MpegProfile(mean_rate_bps=60e6, frame_rate_hz=1500.0, sigma=0.4)
    permanent = config.rate_to_cycles_per_round(profile.mean_rate_bps)
    peak = config.rate_to_cycles_per_round(profile.peak_rate_bps())
    request = BandwidthRequest(permanent, peak)
    sources = []
    for i in range(NUM_STREAMS):
        connection_id = i + 1
        vc_index = router.open_connection(
            connection_id,
            i,  # one stream per input port
            7,  # all to one output link
            request,
            service_class=ServiceClass.VBR,
            interarrival_cycles=config.rate_to_interarrival_cycles(
                profile.mean_rate_bps
            ),
            static_priority=float(NUM_STREAMS - i),  # stream 0 highest
        )
        assert vc_index is not None
        source = VbrSource(
            sim, router, connection_id, i, vc_index, profile, config,
            rng.spawn(f"s{i}"), phase=rng.uniform(0, 400),
        )
        source.start()
        sources.append(source)
    cycles = 120_000 if bench_full() else 40_000
    sim.run(cycles)
    delays = []
    for i in range(NUM_STREAMS):
        stats = router.connection_stats[i + 1]
        delays.append(stats.delay.mean if stats.flits else float("inf"))
    return delays


def run_both():
    return {
        discipline: run_discipline(discipline)
        for discipline in ("priority", "shared")
    }


def test_vbr_excess_discipline(benchmark):
    results = run_once(benchmark, run_both)
    rows = []
    for i in range(NUM_STREAMS):
        rows.append(
            [i, NUM_STREAMS - i, results["priority"][i], results["shared"][i]]
        )
    print()
    print(
        format_table(
            ["stream", "vbr_priority", "delay_cyc(priority)", "delay_cyc(shared)"],
            rows,
        )
    )
    priority_delays = results["priority"]
    shared_delays = results["shared"]
    # Under the paper's discipline the highest-priority stream is served
    # markedly better than the lowest.
    assert priority_delays[0] < priority_delays[-1] * 0.8
    # Sharing narrows the spread between best and worst treated streams.
    def spread(delays):
        return max(delays) / max(min(delays), 1e-9)

    assert spread(shared_delays) < spread(priority_delays)
