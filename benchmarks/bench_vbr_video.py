"""Extension — MPEG video traffic through the MMR (§2, §4; follow-up work).

The MMR project's follow-up evaluation ("Performance Evaluation of the
Multimedia Router with MPEG-2 Video Traffic", cited in the paper's
related-work list) drives the router with MPEG-2 streams.  Lacking those
traces, this bench synthesises statistically-matched frame traces
(DESIGN.md substitution), plays them through the router via trace-driven
VBR sources, and sweeps the number of concurrent streams: delay and the
frame-level deadline miss rate as utilisation climbs, with the VBR
admission registers deciding how many streams fit.
"""

from conftest import bench_full, run_once

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.harness.report import format_table
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.traces import FrameTrace, TraceVbrSource
from repro.traffic.vbr import MpegProfile

#: 20 Mbps MPEG-2-class video, high frame rate so frames fit the window.
PROFILE = MpegProfile(mean_rate_bps=20e6, frame_rate_hz=1500.0, sigma=0.3)
STREAM_COUNTS = (16, 64, 128, 192)


def run_stream_count(num_streams, cycles):
    config = RouterConfig(
        enforce_round_budgets=True, vbr_concurrency_factor=2.0
    )
    sim = Simulator()
    rng = SeededRng(21, "video")
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
    permanent = config.rate_to_cycles_per_round(PROFILE.mean_rate_bps)
    peak = config.rate_to_cycles_per_round(PROFILE.peak_rate_bps())
    request = BandwidthRequest(permanent, peak)
    admitted = []
    for i in range(num_streams):
        connection_id = i + 1
        vc_index = router.open_connection(
            connection_id,
            i % 8,
            (i * 3 + 1) % 8,
            request,
            service_class=ServiceClass.VBR,
            interarrival_cycles=config.rate_to_interarrival_cycles(
                PROFILE.mean_rate_bps
            ),
            static_priority=rng.random(),
        )
        if vc_index is None:
            continue
        trace = FrameTrace.synthesise(PROFILE, 64, rng.spawn(f"trace{i}"))
        source = TraceVbrSource(
            sim, router, connection_id, i % 8, vc_index, trace, config,
            phase=rng.uniform(0, 400),
        )
        source.start()
        admitted.append((connection_id, source))
    sim.run(cycles)
    frame_period = 1.0 / PROFILE.frame_rate_hz / config.flit_cycle_seconds
    delays, jitters, misses, frames = [], [], 0, 0
    for connection_id, source in admitted:
        stats = router.connection_stats[connection_id]
        if stats.flits == 0:
            continue
        delays.append(stats.delay.mean)
        if stats.jitter.count:
            jitters.append(stats.jitter.mean)
        # A frame misses its deadline when its flits average more than a
        # frame period of delay (they arrive after the next frame starts).
        frames += source.frames_played
        if stats.delay.mean > frame_period:
            misses += source.frames_played
    return {
        "offered": num_streams,
        "admitted": len(admitted),
        "delay": sum(delays) / len(delays) if delays else 0.0,
        "jitter": sum(jitters) / len(jitters) if jitters else 0.0,
        "deadline_miss_fraction": misses / frames if frames else 0.0,
        "utilisation": router.utilisation(),
    }


def run_sweep():
    cycles = 90_000 if bench_full() else 40_000
    return [run_stream_count(n, cycles) for n in STREAM_COUNTS]


def test_mpeg_video_scaling(benchmark):
    rows_data = run_once(benchmark, run_sweep)
    rows = [
        [
            r["offered"],
            r["admitted"],
            r["utilisation"],
            r["delay"],
            r["jitter"],
            r["deadline_miss_fraction"],
        ]
        for r in rows_data
    ]
    print()
    print(
        format_table(
            ["offered", "admitted", "util", "delay_cyc", "jitter_cyc", "miss_frac"],
            rows,
        )
    )
    by_offered = {r["offered"]: r for r in rows_data}
    # Admission control caps concurrency: not every offered stream fits
    # once the peak registers fill (192 x ~45 peak cycles/round per link
    # side exceeds the concurrency budget).
    assert by_offered[192]["admitted"] < 192
    # All admitted streams are actually served.
    for r in rows_data:
        assert r["utilisation"] > 0
        assert r["delay"] > 0
    # Delay grows with concurrency.
    assert by_offered[128]["delay"] >= by_offered[16]["delay"] * 0.8
    # Within admission-controlled operation the deadline-miss fraction
    # stays moderate: the registers refuse what cannot be served.
    for r in rows_data:
        assert r["deadline_miss_fraction"] <= 0.5