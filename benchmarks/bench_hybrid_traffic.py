"""Hybrid traffic — CBR + VBR + best-effort + control (paper §2, §3.4).

"The MMR should handle this hybrid traffic efficiently, satisfying the
QoS requirements of multimedia traffic, minimizing the average latency of
best-effort traffic, and maximizing link utilization."

One router carries all four classes at once.  The benchmark reports
per-class delay/jitter and checks the priority ordering the architecture
promises: control above data, data classes holding their contracts, and
best-effort surviving on the reserved leftover bandwidth.
"""

from conftest import bench_full, run_once

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.harness.report import format_table
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.best_effort import PacketSource
from repro.traffic.cbr import CbrSource
from repro.traffic.vbr import MpegProfile, VbrSource


def run_hybrid():
    config = RouterConfig(
        enforce_round_budgets=True,
        best_effort_reserved_fraction=0.05,
    )
    sim = Simulator()
    rng = SeededRng(77, "hybrid")
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
    classes = {"cbr": [], "vbr": [], "best_effort": [], "control": []}
    connection_id = 0

    # 16 CBR connections, two per input port, assorted rates.
    for i in range(16):
        connection_id += 1
        rate = (20e6, 55e6, 5e6, 120e6)[i % 4]
        vc_index = router.open_connection(
            connection_id,
            i % 8,
            (i * 3 + 1) % 8,
            BandwidthRequest(config.rate_to_cycles_per_round(rate)),
            service_class=ServiceClass.CBR,
            interarrival_cycles=config.rate_to_interarrival_cycles(rate),
        )
        assert vc_index is not None
        source = CbrSource(
            sim, router, connection_id, i % 8, vc_index, rate, config,
            phase=rng.uniform(0, 100),
        )
        source.start()
        classes["cbr"].append(connection_id)

    # 8 VBR video streams.
    profile = MpegProfile(mean_rate_bps=20e6, frame_rate_hz=1500.0, sigma=0.3)
    request = BandwidthRequest(
        config.rate_to_cycles_per_round(profile.mean_rate_bps),
        config.rate_to_cycles_per_round(profile.peak_rate_bps()),
    )
    for i in range(8):
        connection_id += 1
        vc_index = router.open_connection(
            connection_id, i, (i * 5 + 3) % 8, request,
            service_class=ServiceClass.VBR,
            interarrival_cycles=config.rate_to_interarrival_cycles(
                profile.mean_rate_bps
            ),
            static_priority=rng.random(),
        )
        assert vc_index is not None
        source = VbrSource(
            sim, router, connection_id, i, vc_index, profile, config,
            rng.spawn(f"vbr{i}"), phase=rng.uniform(0, 400),
        )
        source.start()
        classes["vbr"].append(connection_id)

    # Best-effort on every port (~10% load each) and one control source.
    for port in range(8):
        connection_id += 1
        source = PacketSource(
            sim, router, connection_id, port, mean_interarrival_cycles=10.0,
            rng=rng.spawn(f"be{port}"), config=config,
        )
        source.start()
        classes["best_effort"].append(connection_id)
    connection_id += 1
    control = PacketSource(
        sim, router, connection_id, 3, mean_interarrival_cycles=500.0,
        rng=rng.spawn("ctl"), config=config,
        service_class=ServiceClass.CONTROL,
    )
    control.start()
    classes["control"].append(connection_id)

    sim.run(150_000 if bench_full() else 50_000)

    report = {}
    for name, ids in classes.items():
        delays, jitters, flits = [], [], 0
        for cid in ids:
            stats = router.connection_stats.get(cid)
            if stats is None or stats.flits == 0:
                continue
            flits += stats.flits
            delays.append(stats.delay.mean)
            if stats.jitter.count:
                jitters.append(stats.jitter.mean)
        report[name] = {
            "flits": flits,
            "delay": sum(delays) / len(delays) if delays else 0.0,
            "jitter": sum(jitters) / len(jitters) if jitters else 0.0,
        }
    report["_utilisation"] = router.utilisation()
    report["_cut_throughs"] = router.stats.get_counter("immediate_cut_throughs")
    return report


def test_hybrid_traffic_classes(benchmark):
    report = run_once(benchmark, run_hybrid)
    rows = [
        [name, data["flits"], data["delay"], data["jitter"]]
        for name, data in report.items()
        if not name.startswith("_")
    ]
    print()
    print(format_table(["class", "flits", "delay_cyc", "jitter_cyc"], rows))
    print(f"utilisation: {report['_utilisation']:.3f}, "
          f"control cut-throughs: {report['_cut_throughs']:.0f}")
    # Control rides above everything: near-minimal delay.
    assert report["control"]["delay"] < 2.0
    # CBR contracts hold: small bounded delay despite the VBR bursts and
    # best-effort pressure.
    assert report["cbr"]["delay"] < 50.0
    # Best-effort is served (no starvation) but worse than CBR.
    assert report["best_effort"]["flits"] > 0
    assert report["best_effort"]["delay"] > report["control"]["delay"]
    # Every class actually moved traffic.
    for name in ("cbr", "vbr", "best_effort", "control"):
        assert report[name]["flits"] > 0, f"{name} starved"
