"""Figure 5 — biased vs fixed vs DEC (Autonet) vs perfect switch.

Regenerates both panels of the paper's Figure 5: delay (microseconds) and
jitter (flit cycles) vs offered load for the four scheduling algorithms,
all with 8-candidate link schedulers.  Asserts the headline orderings:
the perfect switch lower-bounds everything, the biased scheme tracks it
closely, and fixed/DEC trail.
"""

from conftest import run_once

from repro.harness.figures import figure5


def test_fig5_delay_and_jitter(benchmark, loads, full, jobs):
    delay, jitter = run_once(benchmark, figure5, loads=loads, full=full, jobs=jobs)
    print()
    print(delay.table())
    print()
    print(jitter.table())

    for i, load in enumerate(loads):
        # Perfect switch is the lower bound on both metrics.
        for name in ("biased", "fixed", "DEC"):
            assert delay.series["perfect"][i] <= delay.series[name][i] + 1e-9
            assert jitter.series["perfect"][i] <= jitter.series[name][i] + 1e-9
        # Biased beats fixed on jitter everywhere.
        assert jitter.series["biased"][i] <= jitter.series["fixed"][i] * 1.05

    # At high load the biased scheme clearly separates from fixed/DEC on
    # delay and stays within a small multiple of the perfect switch.
    high = max(range(len(loads)), key=lambda i: loads[i])
    if loads[high] >= 0.85:
        assert delay.series["biased"][high] < delay.series["fixed"][high]
        assert delay.series["biased"][high] < delay.series["DEC"][high]
        assert delay.series["biased"][high] <= delay.series["perfect"][high] * 6
