"""Figure 3 — jitter vs offered load, fixed vs biased priorities.

Regenerates both panels of the paper's Figure 3: mean jitter (flit cycles)
as a function of offered load for the greedy input-driven scheduler with
1/2 candidates and 4/8 candidates, under the fixed and the biased priority
scheme.  Prints the series and asserts the paper's qualitative claims.
"""

from conftest import run_once

from repro.harness.figures import figure3


def test_fig3_jitter_low_candidates(benchmark, loads, full, jobs):
    """Figure 3, left panel: 1 and 2 candidates.

    With so few candidates the router saturates above ~60-70% load (the
    paper clips these curves "to avoid scaling problems"), so the
    biased-beats-fixed ordering is asserted on pre-saturation points only
    — inside saturation both schemes' jitter is dominated by unbounded
    queue growth and the comparison is meaningless.
    """
    data = run_once(
        benchmark, figure3, loads=loads, candidates=(1, 2), full=full, jobs=jobs
    )
    print()
    print(data.table())
    for c in (1, 2):
        for i, load in enumerate(loads):
            if load > 0.6:
                continue  # clipped region in the paper
            biased = data.series[f"{c}C biased"][i]
            fixed = data.series[f"{c}C fixed"][i]
            assert biased <= fixed * 1.05 + 0.5, (
                f"biased jitter {biased:.3f} above fixed {fixed:.3f} "
                f"at C={c}, load={load}"
            )


def test_fig3_jitter_high_candidates(benchmark, loads, full, jobs):
    """Figure 3, right panel: 4 and 8 candidates."""
    data = run_once(
        benchmark, figure3, loads=loads, candidates=(4, 8), full=full, jobs=jobs
    )
    print()
    print(data.table())
    for c in (4, 8):
        for i, load in enumerate(loads):
            biased = data.series[f"{c}C biased"][i]
            fixed = data.series[f"{c}C fixed"][i]
            assert biased <= fixed * 1.05 + 0.5
    # More candidates improve jitter for the biased scheme at high load.
    high = len(loads) - 1
    assert data.series["8C biased"][high] <= data.series["4C biased"][high] * 1.5
