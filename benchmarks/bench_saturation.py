"""Saturation loads per scheduler variant (§5.2 "not before 95%").

Bisects the offered-load axis for each variant and tabulates where
delivered throughput stops tracking offered load.  Also cross-checks the
C=1 result against head-of-line-blocking theory (Karol et al.): with a
single candidate per input the MMR degenerates into a FIFO input-queued
switch.
"""

from conftest import bench_full, run_once

from repro.harness.figures import FULL_CYCLES, QUICK_CYCLES
from repro.harness.report import format_table
from repro.harness.saturation import find_saturation_load
from repro.harness.single_router import ExperimentSpec
from repro.qos.queueing import saturation_load_hol_blocking

VARIANTS = (
    ("biased", 8),
    ("fixed", 8),
    ("biased", 4),
    ("biased", 2),
    ("biased", 1),
)


def run_saturation_table():
    cycles = FULL_CYCLES if bench_full() else QUICK_CYCLES
    rows = {}
    for priority, candidates in VARIANTS:
        base = ExperimentSpec(
            target_load=0.5,
            priority=priority,
            candidates=candidates,
            seed=1,
            **cycles,
        )
        estimate = find_saturation_load(base, low=0.5, high=0.97, tolerance=0.04)
        rows[(priority, candidates)] = estimate
    return rows


def test_saturation_loads(benchmark):
    estimates = run_once(benchmark, run_saturation_table)
    rows = []
    for (priority, candidates), estimate in estimates.items():
        rows.append(
            [
                priority,
                candidates,
                estimate.stable_load,
                estimate.saturated_load,
                estimate.estimate,
            ]
        )
    print()
    print(
        format_table(
            ["priority", "C", "stable_to", "saturated_at", "estimate"], rows
        )
    )
    by_variant = {(p, c): e for (p, c), e in estimates.items()}
    # §5.2: with 8 candidates and biasing, no saturation before ~95%.
    assert by_variant[("biased", 8)].stable_load >= 0.90
    # Candidate count orders the saturation points.
    assert (
        by_variant[("biased", 1)].estimate
        <= by_variant[("biased", 2)].estimate + 0.02
    )
    assert (
        by_variant[("biased", 2)].estimate
        <= by_variant[("biased", 8)].estimate + 0.02
    )
    # C=1 lands near HOL-blocking theory for an 8x8 switch (~0.62).
    theory = saturation_load_hol_blocking(8)
    assert abs(by_variant[("biased", 1)].estimate - theory) < 0.15
