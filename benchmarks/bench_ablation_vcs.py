"""Ablation — virtual channel count and flit size (paper §3.2).

"The variable parameters that can be adjusted include flit sizes, number
of memory banks and the virtual channel depth."  Two sweeps:

* VC count: connection capacity vs scheduling cost (mux/arbiter depth,
  which §3.2 cites as the reason traditional multiplexed-queue VC
  organisations stop scaling).
* Flit size: amortising flow-control/scheduling against latency and
  buffer storage (§3.1) — larger flits lengthen the flit cycle, so the
  same microsecond delay costs fewer cycles, but each cycle is longer.
"""

from conftest import bench_full, run_once

from repro.core.config import RouterConfig
from repro.core.costmodel import multiplexor_delay
from repro.harness.figures import FULL_CYCLES, QUICK_CYCLES
from repro.harness.report import format_table
from repro.harness.single_router import ExperimentSpec, run_single_router_experiment

LOAD = 0.7


def _cycles():
    return FULL_CYCLES if bench_full() else QUICK_CYCLES


def run_vc_sweep():
    results = {}
    for vcs in (32, 64, 128, 256):
        # Hold the round length constant (512 cycles) so bandwidth
        # granularity does not confound the sweep.
        config = RouterConfig(
            vcs_per_port=vcs,
            round_factor=512 // vcs,
            enforce_round_budgets=False,
        )
        spec = ExperimentSpec(
            target_load=LOAD, priority="biased", config=config, seed=1, **_cycles()
        )
        results[vcs] = run_single_router_experiment(spec)
    return results


def test_vc_count_sweep(benchmark):
    results = run_once(benchmark, run_vc_sweep)
    rows = []
    for vcs, result in sorted(results.items()):
        rows.append(
            [
                vcs,
                result.connections,
                result.mean_delay_us,
                result.mean_jitter_cycles,
                multiplexor_delay(vcs),
            ]
        )
    print()
    print(
        format_table(
            ["VCs/port", "connections", "delay_us", "jitter_cyc", "mux_gate_delays"],
            rows,
        )
    )
    # More VCs admit at least as many concurrent connections...
    counts = [row[1] for row in rows]
    assert counts == sorted(counts)
    # ...while the analytic multiplexor depth grows (the cost §3.2 dodges
    # with the interleaved-RAM organisation).
    depths = [row[4] for row in rows]
    assert depths == sorted(depths)
    assert depths[-1] > depths[0]


def run_flit_size_sweep():
    results = {}
    for flit_bits in (64, 128, 256, 512):
        config = RouterConfig(flit_size_bits=flit_bits, enforce_round_budgets=False)
        spec = ExperimentSpec(
            target_load=LOAD, priority="biased", config=config, seed=1, **_cycles()
        )
        results[flit_bits] = run_single_router_experiment(spec)
    return results


def test_flit_size_sweep(benchmark):
    results = run_once(benchmark, run_flit_size_sweep)
    rows = []
    for flit_bits, result in sorted(results.items()):
        config = result.spec.config
        rows.append(
            [
                flit_bits,
                config.flit_cycle_ns,
                result.mean_delay_cycles,
                result.mean_delay_us,
                result.mean_jitter_cycles,
            ]
        )
    print()
    print(
        format_table(
            ["flit_bits", "cycle_ns", "delay_cyc", "delay_us", "jitter_cyc"], rows
        )
    )
    # The flit cycle stretches linearly with flit size (scheduling budget,
    # §6: 128-bit flits on 1-2 Gbps links -> 64-128 ns switch settings).
    assert rows[-1][1] == rows[0][1] * (rows[-1][0] / rows[0][0])
    # Microsecond delay grows with flit size at fixed link rate: fewer,
    # longer cycles (the §3.1 latency cost of large flits).
    assert rows[-1][3] > rows[0][3]
