"""Ablation — candidate-set size (paper §4.4).

"The challenge is in deciding how many candidates should be considered at
an input port to maximize switch bandwidth with minimal impact on switch
cycle time."  Sweeps C = 1..8 at a fixed high load and reports delay,
jitter and utilisation, plus the analytic arbiter-delay cost of widening
the candidate set — the two sides of the paper's trade-off.
"""

from conftest import bench_full, run_once

from repro.core.costmodel import arbiter_delay
from repro.harness.figures import FULL_CYCLES, QUICK_CYCLES
from repro.harness.report import format_table
from repro.harness.single_router import ExperimentSpec, run_single_router_experiment
from repro.harness.sweep import SweepAxis, run_sweep

CANDIDATES = (1, 2, 3, 4, 6, 8)
LOAD = 0.8


def run_candidate_sweep():
    cycles = FULL_CYCLES if bench_full() else QUICK_CYCLES
    base = ExperimentSpec(target_load=LOAD, priority="biased", seed=1, **cycles)
    return run_sweep(base, [SweepAxis("candidates", CANDIDATES)])


def test_candidate_sweep(benchmark):
    sweep = run_once(benchmark, run_candidate_sweep)
    rows = []
    for (candidates,), result in sorted(sweep.results.items()):
        rows.append(
            [
                candidates,
                result.mean_delay_us,
                result.mean_jitter_cycles,
                result.utilisation,
                arbiter_delay(candidates * result.spec.config.num_ports),
            ]
        )
    print()
    print(
        format_table(
            ["C", "delay_us", "jitter_cyc", "utilisation", "arbiter_gate_delays"],
            rows,
        )
    )
    by_c = {row[0]: row for row in rows}
    # Going from 1 to 4 candidates must cut delay dramatically at 80% load
    # (1 candidate head-of-line blocks the router into saturation).
    assert by_c[4][1] < by_c[1][1] / 5
    # Diminishing returns: 8 candidates is within 2x of 4 candidates.
    assert by_c[8][1] <= by_c[4][1] * 2.0
    # Utilisation (throughput) recovers the offered load once C >= 4.
    assert by_c[4][3] >= LOAD * 0.97
    assert by_c[8][3] >= LOAD * 0.97
