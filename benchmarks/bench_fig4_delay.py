"""Figure 4 — delay vs offered load, fixed vs biased priorities.

Regenerates both panels of the paper's Figure 4: mean switch delay in
microseconds as a function of offered load, for 1/2 and 4/8 candidates
under fixed and biased priorities.  The underlying simulation grid is
shared with the Figure 3 benchmark through the harness result cache.
"""

from conftest import run_once

from repro.harness.figures import figure4


def test_fig4_delay_low_candidates(benchmark, loads, full, jobs):
    """Figure 4, left panel: 1 and 2 candidates (clipped in the paper —
    these delays blow up near saturation)."""
    data = run_once(
        benchmark, figure4, loads=loads, candidates=(1, 2), full=full, jobs=jobs
    )
    print()
    print(data.table())
    # 2 candidates dominate 1 candidate for the biased scheme.
    for i in range(len(loads)):
        assert data.series["2C biased"][i] <= data.series["1C biased"][i] * 1.1 + 0.1


def test_fig4_delay_high_candidates(benchmark, loads, full, jobs):
    """Figure 4, right panel: 4 and 8 candidates."""
    data = run_once(
        benchmark, figure4, loads=loads, candidates=(4, 8), full=full, jobs=jobs
    )
    print()
    print(data.table())
    moderate = [i for i, load in enumerate(loads) if load <= 0.9]
    for i in moderate:
        # Biased stays in the sub-2us band the paper reports (0.4-0.6us
        # in the paper; our pipeline baseline is shorter, so delays start
        # lower and stay bounded).
        assert data.series["8C biased"][i] < 2.0, (
            f"8C biased delay {data.series['8C biased'][i]:.2f}us "
            f"at load {loads[i]}"
        )
        # Biased beats fixed on delay at matched settings (within noise
        # at light loads where both sit at the pipeline minimum).
        assert (
            data.series["8C biased"][i]
            <= data.series["8C fixed"][i] * 1.10 + 0.05
        )
    # Delay grows with offered load for every curve.
    for name, series in data.series.items():
        assert series[-1] >= series[0] * 0.8, f"{name} did not grow with load"
