"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's figures (or an ablation) and
prints the series the figure plots.  Simulation runs are deterministic and
expensive, so timing uses a single round (``benchmark.pedantic``) and the
figure-level result cache in :mod:`repro.harness.figures` is shared across
benchmark files within the pytest session — figures 3 and 4 are two views
of one grid and are only simulated once.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — paper-scale windows (20k warm-up + 100k
  measured cycles) instead of the quick profile.
* ``REPRO_BENCH_LOADS=0.3,0.8,...`` — override the offered-load axis.
* ``REPRO_BENCH_JOBS=N`` — fan grid points out over N worker processes
  (results are identical for any value; only wall-clock changes).
"""

import os

import pytest

#: Offered-load axis used by the figure benchmarks (overridable).
DEFAULT_LOADS = (0.3, 0.6, 0.8, 0.9)


def bench_loads():
    """The load axis for this benchmark session."""
    raw = os.environ.get("REPRO_BENCH_LOADS")
    if raw:
        return tuple(float(x) for x in raw.split(","))
    return DEFAULT_LOADS


def bench_full():
    """True when paper-scale cycle counts were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def bench_jobs():
    """Worker-process count for parallelisable figure grids."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture
def loads():
    return bench_loads()


@pytest.fixture
def full():
    return bench_full()


@pytest.fixture
def jobs():
    return bench_jobs()


def run_once(benchmark, fn, *args, **kwargs):
    """Time one deterministic run of ``fn`` (no repetition)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
