"""Micro-benchmarks of the simulator's hot paths.

Unlike the figure benchmarks (one deterministic run each), these measure
steady-state throughput of the kernel primitives the cycle loop leans on:
bit-vector candidate math, the event queue, the VCM data path, and a full
router cycle.  Useful for catching performance regressions in the
simulation engine itself.
"""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.status_vectors import BitVector, StatusBank
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.vcm import VcmGeometry, VirtualChannelMemory
from repro.harness.kernel_bench import build_cbr_scenario
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.sim.rng import SeededRng
from repro.traffic.cbr import CbrSource


def test_bitvector_candidate_math(benchmark):
    """The §4.1 bit-parallel AND across four 256-wide status vectors."""
    bank = StatusBank(256)
    rng = SeededRng(1, "bits")
    for name in ("flits_available", "cbr_service_requested"):
        vector = bank.vector(name)
        for _ in range(64):
            vector.set(rng.randint(0, 255))

    def combine():
        return bank.cbr_candidates().count()

    result = benchmark(combine)
    assert result > 0


def test_bitvector_index_walk(benchmark):
    """Walking the set bits of a sparse 256-wide vector."""
    vector = BitVector(256)
    rng = SeededRng(2, "walk")
    for _ in range(16):
        vector.set(rng.randint(0, 255))

    result = benchmark(lambda: sum(1 for _ in vector.indices()))
    assert result == vector.count()


def test_event_queue_churn(benchmark):
    """Push/pop churn at simulation scale."""

    def churn():
        queue = EventQueue()
        for i in range(512):
            queue.push(i % 37, lambda: None)
        drained = 0
        while queue:
            queue.pop()
            drained += 1
        return drained

    assert benchmark(churn) == 512


def test_vcm_write_read(benchmark):
    """Whole-flit VCM transfers through the interleaved modules."""
    vcm = VirtualChannelMemory(VcmGeometry(64, 4, 8, 8))

    def transfer():
        for vc in range(64):
            vcm.write_flit(vc, vc)
        for vc in range(64):
            vcm.read_flit(vc)
        return 64

    assert benchmark(transfer) == 64


def test_router_cycles_per_second(benchmark):
    """Full router flit cycles under a moderate CBR load.

    This is the simulator's headline cost: paper-scale experiments run
    ~120k of these per point.
    """
    config = RouterConfig(enforce_round_budgets=False)
    sim = Simulator()
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
    rng = SeededRng(3, "cycles")
    for i in range(32):
        rate = 55e6
        vc_index = router.open_connection(
            i + 1,
            i % 8,
            (i * 3 + 1) % 8,
            BandwidthRequest(config.rate_to_cycles_per_round(rate)),
            interarrival_cycles=config.rate_to_interarrival_cycles(rate),
        )
        source = CbrSource(
            sim, router, i + 1, i % 8, vc_index, rate, config,
            phase=rng.uniform(0, 20),
        )
        source.start()

    def run_chunk():
        sim.run(1000)
        return router.stats.get_counter("flits_switched")

    assert benchmark(run_chunk) > 0


@pytest.mark.parametrize("kernel", ["legacy", "activity"])
def test_kernel_before_after_light_load(benchmark, kernel):
    """The before/after comparison behind ``scripts/perf_gate.py``.

    One 124 Mbps CBR stream through the 8x8 router — the 10%-link-load
    point where the activity kernel fast-forwards 80% of cycles.  The
    ``legacy`` variant runs the seed kernel (every ticker ticks every
    cycle); comparing the two benchmark medians reproduces the gated
    speedup in ``BENCH_kernel.json``.
    """
    sim, router = build_cbr_scenario(kernel == "activity", connections=1)
    assert sim.kernel == kernel

    def run_chunk():
        sim.run(1000)
        return router.stats.get_counter("flits_switched")

    assert benchmark(run_chunk) > 0
