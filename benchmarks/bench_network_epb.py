"""Network-level PCS establishment — EPB vs greedy single-path (§3.5, §4.2).

Exhaustive profitable backtracking searches *all* minimal paths before
giving up; a greedy probe that never backtracks (the simplest alternative)
fails as soon as its first choice is blocked.  This benchmark loads an
irregular cluster network with connection requests until capacity is
scarce and compares acceptance ratios and search costs, then measures
data-plane QoS over the established connections.
"""

from conftest import bench_full, run_once

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.harness.report import format_table
from repro.network.connection import ConnectionManager
from repro.network.interface import NetworkInterface
from repro.network.network import Network
from repro.network.topology import irregular
from repro.routing.epb import profitable_ports
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng

NUM_NODES = 12
REQUESTS = 250


def greedy_search(topology, source, destination, admissible):
    """A non-backtracking probe: always takes the first admissible
    profitable link; fails at the first dead end."""
    node = source
    visited = {source}
    searched = 0
    while node != destination:
        advanced = False
        for port, neighbor in profitable_ports(topology, node, destination):
            searched += 1
            if neighbor in visited:
                continue
            if admissible(node, port, neighbor):
                node = neighbor
                visited.add(neighbor)
                advanced = True
                break
        if not advanced:
            return False, searched
    return True, searched


def run_comparison():
    """Paired per-request comparison on one evolving network.

    For each request the greedy probe's feasibility is evaluated first
    (read-only), then EPB actually establishes.  Since any greedy-feasible
    path lies inside EPB's search space, EPB dominates per request; the
    interesting quantities are how many requests only EPB could place
    (its backtracking wins) and the extra links it searches to do so.
    """
    rng = SeededRng(9, "epb-bench")
    topology = irregular(NUM_NODES, rng.spawn("topo"), mean_degree=3.0)
    config = RouterConfig(
        num_ports=topology.num_ports,
        vcs_per_port=64,
        round_factor=8,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    network = Network(topology, config, BiasedPriority(), sim, rng.spawn("net"))
    manager = ConnectionManager(network)
    demand_rng = rng.spawn("demand")
    epb_accepted = 0
    greedy_feasible = 0
    epb_only_wins = 0
    greedy_only_wins = 0
    greedy_searched = 0
    attempts = 0
    for _ in range(REQUESTS):
        src = demand_rng.randint(0, NUM_NODES - 1)
        dst = demand_rng.randint(0, NUM_NODES - 1)
        if src == dst:
            continue
        attempts += 1
        rate = demand_rng.choice((55e6, 120e6, 240e6))
        request = BandwidthRequest(config.rate_to_cycles_per_round(rate))
        if manager.feasible_endpoints(src, dst, request):
            greedy_ok, cost = greedy_search(
                topology, src, dst, manager._admissible(request)
            )
            greedy_searched += cost
        else:
            greedy_ok, cost = False, 0
        connection = manager.establish(src, dst, request)
        epb_ok = connection is not None
        epb_accepted += epb_ok
        greedy_feasible += greedy_ok
        epb_only_wins += epb_ok and not greedy_ok
        greedy_only_wins += greedy_ok and not epb_ok
    stats = manager.stats
    return {
        "attempts": attempts,
        "epb_accepted": epb_accepted,
        "greedy_feasible": greedy_feasible,
        "epb_only_wins": epb_only_wins,
        "greedy_only_wins": greedy_only_wins,
        "epb_links_searched": stats.links_searched,
        "greedy_links_searched": greedy_searched,
        "epb_backtracks": stats.backtracks,
    }


def test_epb_vs_greedy_establishment(benchmark):
    results = run_once(benchmark, run_comparison)
    print()
    print(format_table(["metric", "value"], sorted(results.items())))
    # Greedy-feasible implies EPB success (greedy's path is in EPB's
    # search space), so greedy can never beat EPB on a request.
    assert results["greedy_only_wins"] == 0
    # Backtracking places requests the greedy probe dead-ends on.
    assert results["epb_only_wins"] > 0
    assert results["epb_backtracks"] > 0
    assert results["epb_accepted"] >= results["greedy_feasible"]


def run_loaded_network_qos():
    """QoS of EPB-established connections under shared-link contention."""
    rng = SeededRng(10, "netqos")
    topology = irregular(NUM_NODES, rng.spawn("topo"), mean_degree=3.0)
    config = RouterConfig(
        num_ports=topology.num_ports,
        vcs_per_port=64,
        round_factor=8,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    network = Network(topology, config, BiasedPriority(), sim, rng.spawn("net"))
    manager = ConnectionManager(network)
    interfaces = [
        NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
        for n in range(NUM_NODES)
    ]
    demand_rng = rng.spawn("demand")
    streams = []
    for _ in range(60):
        src = demand_rng.randint(0, NUM_NODES - 1)
        dst = demand_rng.randint(0, NUM_NODES - 1)
        if src == dst:
            continue
        stream = interfaces[src].open_cbr(
            dst, demand_rng.choice((5e6, 20e6, 55e6)),
        )
        if stream is not None:
            streams.append((dst, stream))
    sim.run(60_000 if bench_full() else 30_000)
    delays, jitters, flits = [], [], 0
    for dst, stream in streams:
        stats = interfaces[dst].end_to_end.get(stream.connection.connection_id)
        if stats is None or stats.flits == 0:
            continue
        flits += stats.flits
        delays.append(stats.delay.mean)
        if stats.jitter.count:
            jitters.append(stats.jitter.mean)
    return {
        "streams": len(streams),
        "flits": flits,
        "mean_delay": sum(delays) / len(delays) if delays else 0.0,
        "mean_jitter": sum(jitters) / len(jitters) if jitters else 0.0,
        "mean_hops": sum(s.connection.hops for _, s in streams) / len(streams),
    }


def test_loaded_network_qos(benchmark):
    report = run_once(benchmark, run_loaded_network_qos)
    print()
    print(format_table(["metric", "value"], sorted(report.items())))
    assert report["streams"] >= 30
    assert report["flits"] > 1000
    # Multi-hop CBR under light-to-moderate load keeps single-digit-cycle
    # per-hop delays.
    assert report["mean_delay"] < 10 * report["mean_hops"]
