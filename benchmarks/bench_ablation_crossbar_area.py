"""Ablation — crossbar organisation silicon area (paper §3.3).

"[The multiplexed crossbar] reduces silicon area by V and V^2,
respectively, with respect to a partially multiplexed and a fully
de-multiplexed crossbar, where V is the number of virtual channels per
link."  Regenerates that argument quantitatively over the VC-count axis
and times the analytic model itself.
"""

from conftest import run_once

from repro.core.costmodel import (
    CrossbarOrganisation,
    area_ratio,
    crossbar_cost,
    scheduling_rate_ns,
)
from repro.harness.report import format_table

NUM_LINKS = 8
VC_COUNTS = (16, 64, 256, 1024)


def compute_area_table():
    rows = []
    for vcs in VC_COUNTS:
        mux = crossbar_cost(CrossbarOrganisation.MULTIPLEXED, NUM_LINKS, vcs)
        partial = crossbar_cost(
            CrossbarOrganisation.PARTIALLY_MULTIPLEXED, NUM_LINKS, vcs, group_size=4
        )
        full = crossbar_cost(CrossbarOrganisation.FULLY_DEMULTIPLEXED, NUM_LINKS, vcs)
        rows.append(
            [
                vcs,
                mux.crosspoints,
                partial.crosspoints,
                full.crosspoints,
                full.crosspoints / mux.crosspoints,
            ]
        )
    return rows


def test_crossbar_area_argument(benchmark):
    rows = run_once(benchmark, compute_area_table)
    print()
    print(
        format_table(
            ["VCs", "multiplexed", "partial(g=4)", "fully_demuxed", "full/mux"],
            rows,
        )
    )
    for vcs, mux, partial, full, ratio in rows:
        # The paper's headline factors.
        assert ratio == vcs**2
        assert partial / mux == (vcs / 4) ** 2
        assert mux == NUM_LINKS**2
    # At the paper's 256 VCs a fully de-multiplexed crossbar needs 65536x
    # the crosspoints — the "prohibitively expensive in silicon area" claim.
    ratio_256 = area_ratio(
        CrossbarOrganisation.MULTIPLEXED,
        CrossbarOrganisation.FULLY_DEMULTIPLEXED,
        NUM_LINKS,
        256,
    )
    assert ratio_256 == 65536


def test_scheduling_rate_budget(benchmark):
    """§6: switch settings must be computed every 64-128 ns for 1-2 Gbps
    links with 128-bit flits."""

    def budgets():
        return {
            rate: scheduling_rate_ns(rate, 128)
            for rate in (1e9, 1.24e9, 2e9)
        }

    result = run_once(benchmark, budgets)
    print()
    print(format_table(["link_bps", "budget_ns"], sorted(result.items())))
    assert 64.0 <= result[2e9] <= 128.0
    assert 64.0 <= result[1e9] <= 128.0
    assert 100.0 < result[1.24e9] < 107.0  # the paper's ~103 ns
