"""Ablation — connection-oriented service vs best-effort-only (§1, §3.1).

"Traditional router technology developed for high-speed multiprocessor
networks is optimized for low latency and for best-effort traffic.
However, these networks are not designed to permit concurrent guarantees
for communication performance."

The same multimedia stream mix is carried two ways through one router:

* as admitted CBR connections scheduled with biased priorities (the MMR),
* as plain best-effort packets with no reservation or bias (a traditional
  best-effort router), while a bursty background load comes and goes.

Under quiet conditions both look fine; when the background burst arrives,
only the connection-oriented path holds its jitter — the paper's core
motivation, measured.
"""

from conftest import bench_full, run_once

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.flit import Flit, FlitType
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.harness.report import format_table
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.cbr import CbrSource

STREAMS = [(0, 2, 55e6), (1, 2, 20e6), (3, 5, 55e6), (4, 5, 20e6)]
#: Background burst: heavy best-effort packets into the streams' outputs.
BURST_PORTS = (5, 6, 7)


class BestEffortStream:
    """The same CBR arrival process, carried as best-effort packets."""

    def __init__(self, sim, router, connection_id, input_port, output_port,
                 rate_bps, config, phase):
        self.sim = sim
        self.router = router
        self.connection_id = connection_id
        self.input_port = input_port
        self.output_port = output_port
        self.interarrival = config.rate_to_interarrival_cycles(rate_bps)
        self.phase = phase
        self.sequence = 0
        self._next = phase

    def start(self):
        self._next += self.sim.now
        self.sim.schedule_at(int(self._next), self._arrival)

    def _arrival(self):
        vc_index = self.router.open_packet_vc(
            self.input_port, self.output_port, ServiceClass.BEST_EFFORT,
            self.connection_id,
        )
        if vc_index is not None:
            flit = Flit(
                FlitType.BEST_EFFORT, connection_id=self.connection_id,
                created=self.sim.now, sequence=self.sequence, is_tail=True,
            )
            self.sequence += 1
            self.router.inject(self.input_port, vc_index, flit)
        self._next += self.interarrival
        self.sim.schedule_at(int(self._next), self._arrival)


def run_mode(connection_oriented: bool):
    config = RouterConfig(enforce_round_budgets=False)
    sim = Simulator()
    rng = SeededRng(55, "switching")
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)

    for i, (in_port, out_port, rate) in enumerate(STREAMS, start=1):
        phase = rng.uniform(0, 50)
        if connection_oriented:
            vc_index = router.open_connection(
                i, in_port, out_port,
                BandwidthRequest(config.rate_to_cycles_per_round(rate)),
                service_class=ServiceClass.CBR,
                interarrival_cycles=config.rate_to_interarrival_cycles(rate),
            )
            CbrSource(
                sim, router, i, in_port, vc_index, rate, config, phase=phase
            ).start()
        else:
            BestEffortStream(
                sim, router, i, in_port, out_port, rate, config, phase
            ).start()

    # Bursty background: every port floods the streams' output links with
    # best-effort packets during the middle third of the run.
    cycles = 90_000 if bench_full() else 30_000
    burst_rng = rng.spawn("burst")

    def burst(port):
        if cycles / 3 <= sim.now <= 2 * cycles / 3:
            out = burst_rng.choice((2, 5))
            vc_index = router.open_packet_vc(
                port, out, ServiceClass.BEST_EFFORT, -(port + 1)
            )
            if vc_index is not None:
                router.inject(
                    port, vc_index,
                    Flit(FlitType.BEST_EFFORT, connection_id=-(port + 1),
                         created=sim.now, is_tail=True),
                )
        sim.schedule(max(1, round(burst_rng.expovariate(0.5))), lambda: burst(port))

    for port in BURST_PORTS:
        sim.schedule(1, lambda p=port: burst(p))

    sim.run(cycles)
    delays, jitters = [], []
    for i in range(1, len(STREAMS) + 1):
        stats = router.connection_stats.get(i)
        if stats is None or stats.flits == 0:
            continue
        delays.append(stats.delay.mean)
        jitters.append(stats.jitter.mean if stats.jitter.count else 0.0)
    return {
        "delay": sum(delays) / len(delays) if delays else float("inf"),
        "jitter": sum(jitters) / len(jitters) if jitters else float("inf"),
        "delay_max": max(delays) if delays else float("inf"),
    }


def test_connections_vs_best_effort(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "MMR connections": run_mode(True),
            "best-effort only": run_mode(False),
        },
    )
    rows = [
        [name, data["delay"], data["delay_max"], data["jitter"]]
        for name, data in results.items()
    ]
    print()
    print(
        format_table(
            ["service", "delay_cyc", "delay_max_cyc", "jitter_cyc"], rows
        )
    )
    mmr = results["MMR connections"]
    plain = results["best-effort only"]
    # Connection-oriented service holds its jitter through the burst;
    # best-effort-only service degrades by a large factor.
    assert mmr["jitter"] < plain["jitter"] / 3
    assert mmr["delay"] < plain["delay"]