"""Ablation — best-effort bandwidth reservation (§4.2).

"Note that it is possible to reserve some bandwidth/round for best-effort
traffic in order to prevent starvation of best-effort packets."

Sweeps the reserved fraction 0% → 25% with round budgets enforced, under
a CBR load that would otherwise commit the whole round.  Reports the
best-effort delay/throughput against the CBR capacity given up — the
trade the knob exists to tune.
"""

from conftest import bench_full, run_once

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.harness.report import format_table
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.best_effort import PacketSource
from repro.traffic.cbr import CbrSource

FRACTIONS = (0.0, 0.05, 0.15, 0.25)


def run_fraction(fraction, cycles):
    config = RouterConfig(
        enforce_round_budgets=True,
        best_effort_reserved_fraction=fraction,
    )
    sim = Simulator()
    rng = SeededRng(61, "bereserve")
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)

    # Pack every output link with CBR until admission refuses: the only
    # slack left for best-effort is whatever the reservation held back.
    admitted = 0
    connection_id = 0
    rate = 55e6
    request = BandwidthRequest(config.rate_to_cycles_per_round(rate))
    refused_in_a_row = 0
    while refused_in_a_row < 24:
        connection_id += 1
        in_port = connection_id % 8
        out_port = (connection_id * 3 + 1) % 8
        vc_index = router.open_connection(
            connection_id, in_port, out_port, request,
            service_class=ServiceClass.CBR,
            interarrival_cycles=config.rate_to_interarrival_cycles(rate),
        )
        if vc_index is None:
            refused_in_a_row += 1
            continue
        refused_in_a_row = 0
        CbrSource(
            sim, router, connection_id, in_port, vc_index, rate, config,
            phase=rng.uniform(0, 100),
        ).start()
        admitted += 1

    be_sources = []
    for port in range(8):
        connection_id += 1
        source = PacketSource(
            sim, router, connection_id, port,
            mean_interarrival_cycles=25.0,  # ~4% load per port offered
            rng=rng.spawn(f"be{port}"), config=config,
        )
        source.start()
        be_sources.append((connection_id, source))

    sim.run(cycles)
    be_delays, be_flits, be_generated = [], 0, 0
    for cid, source in be_sources:
        stats = router.connection_stats.get(cid)
        be_generated += source.packets_generated
        if stats is None or stats.flits == 0:
            continue
        be_flits += stats.flits
        be_delays.append(stats.delay.mean)
    cbr_committed = sum(
        out.allocated_cycles for out in router.admission.outputs
    ) / (8 * config.round_length)
    return {
        "fraction": fraction,
        "cbr_streams": admitted,
        "cbr_committed": cbr_committed,
        "be_delay": sum(be_delays) / len(be_delays) if be_delays else float("inf"),
        "be_delivered_fraction": be_flits / be_generated if be_generated else 0.0,
    }


def run_sweep():
    cycles = 60_000 if bench_full() else 25_000
    return [run_fraction(f, cycles) for f in FRACTIONS]


def test_best_effort_reservation(benchmark):
    rows_data = run_once(benchmark, run_sweep)
    rows = [
        [
            r["fraction"],
            r["cbr_streams"],
            r["cbr_committed"],
            r["be_delay"],
            r["be_delivered_fraction"],
        ]
        for r in rows_data
    ]
    print()
    print(
        format_table(
            ["reserved", "cbr_streams", "cbr_committed", "be_delay_cyc", "be_delivered"],
            rows,
        )
    )
    by_fraction = {r["fraction"]: r for r in rows_data}
    # The reservation costs CBR capacity...
    assert by_fraction[0.25]["cbr_streams"] < by_fraction[0.0]["cbr_streams"]
    # ...and prevents exactly the starvation §4.2 warns about: with no
    # reservation almost nothing best-effort gets through a fully
    # committed router; with 25% reserved, essentially everything does.
    assert by_fraction[0.0]["be_delivered_fraction"] < 0.5
    assert by_fraction[0.25]["be_delivered_fraction"] > 0.9
    # Delivery improves monotonically with the reservation.
    fractions = [r["be_delivered_fraction"] for r in rows_data]
    assert fractions == sorted(fractions)