#!/usr/bin/env python
"""Regenerate the reproduction's result artifacts into ``results/``.

Writes, for every figure in the paper's evaluation:

* ``results/figure{3,4,5a,5b}.json`` — the series, machine-readable;
* ``results/figure{3,4,5a,5b}.csv`` — the same as CSV;
* ``results/summary.txt`` — all tables as text.

Quick profile by default; ``--full`` uses paper-scale windows (slow).

Run:  python scripts/generate_results.py [--full] [--out results/]
"""

import argparse
import pathlib
import sys

from repro.harness.export import write_figure_csv, write_figure_json
from repro.harness.figures import figure3, figure4, figure5


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--loads", default="0.3,0.6,0.8,0.9",
        help="comma-separated offered loads",
    )
    args = parser.parse_args()
    loads = tuple(float(x) for x in args.loads.split(","))
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    print("running figure 3/4 grid...", flush=True)
    fig3 = figure3(loads=loads, full=args.full)
    fig4 = figure4(loads=loads, full=args.full)
    print("running figure 5 grid...", flush=True)
    fig5a, fig5b = figure5(loads=loads, full=args.full)

    figures = {
        "figure3": fig3,
        "figure4": fig4,
        "figure5a": fig5a,
        "figure5b": fig5b,
    }
    summary_lines = []
    for name, figure in figures.items():
        with open(out / f"{name}.json", "w") as stream:
            write_figure_json(figure, stream)
        with open(out / f"{name}.csv", "w") as stream:
            write_figure_csv(figure, stream)
        summary_lines.append(figure.table())
        summary_lines.append("")
        print(f"wrote {out / name}.{{json,csv}}")
    (out / "summary.txt").write_text("\n".join(summary_lines))
    print(f"wrote {out / 'summary.txt'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
