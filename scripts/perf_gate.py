#!/usr/bin/env python
"""Kernel performance gate: identity first, then throughput.

Checks two claims about the activity-driven simulation kernel against the
legacy (seed) kernel and writes the evidence to ``BENCH_kernel.json`` so
every future PR has a perf trajectory to regress against:

1. **Identity** — on seeded runs the two kernels must be cycle-for-cycle
   identical: same delivered flits with the same creation/departure
   timestamps, same stats scalars, and (for the multihop check) the same
   end-to-end delay/jitter statistics across an irregular 12-node network
   with best-effort background traffic.
2. **Throughput** — on the 10%-link-load CBR point (one 124 Mbps stream
   through the 8x8 router, the operating point that isolates kernel
   overhead) the activity kernel must be at least ``--min-speedup`` times
   faster in simulated cycles per wall second.  The fully loaded variant
   (124 Mbps on every input port) is also measured and reported, gate
   free: with every port busy there is nothing to skip, so it documents
   the transparency cost of the activity machinery instead.
3. **Observability** — carrying a *disabled* flight recorder must cost
   less than ``--max-obs-overhead`` percent on both timed scenarios, and
   a recorder-on run must export a Chrome/Perfetto trace that validates
   against the trace-event schema with a complete inject/grant/deliver
   lifecycle for every delivered flit (written to ``--trace-output``).
   Control-plane span tracing must likewise be a pure observer: the same
   churn point with the recorder on must reproduce every workload metric
   of the recorder-off run bit-for-bit, while leaving fully closed,
   schema-valid span trees (one root per session attempt).

A second gate covers the bit-parallel scheduling fast path, recorded to
``BENCH_sched.json``:

4. **Scheduler identity** — the fused status-vector candidate walk
   (``scheduler_fast_path=True``) must deliver bit-identical flit streams
   and stats against the reference per-VC walk, on the saturated-CBR
   single-router scenario and on the multihop network.
5. **Scheduler throughput** — on the saturated-CBR scenario at the
   90%-load point the fast path must be at least ``--min-sched-speedup``
   times faster in cycles per wall second.
6. **Sweep parallelism** — ``run_sweep(..., jobs=N)`` must produce the
   same metric rows as a serial run, and must be at least
   ``--min-sweep-speedup`` times faster wall-clock when the machine
   actually has ``--sweep-jobs`` cores (recorded but not gated on
   smaller machines — a 1-core runner cannot exhibit the speedup).

A third gate covers the checkpoint/restore subsystem, recorded to
``BENCH_ckpt.json``:

7. **Checkpoint identity** — the saturated-CBR 90%-load single router
   (the 729-connection scenario) and the 12-node multihop network (with
   best-effort chatter in flight) run straight through vs
   checkpoint-at-midpoint / restore-from-disk / resume, and must produce
   bit-identical delivered-flit streams and statistics.

A fourth gate covers the columnar (NumPy) state engine, recorded to
``BENCH_columnar.json`` (schema ``bench-columnar/1``):

8. **Columnar identity** — ``columnar_state=True`` must deliver
   bit-identical flit streams and stats against both the reference walk
   and the fused scalar fast path on the 729-connection 90%-load single
   router and the 12-node multihop network, and must survive a
   checkpoint/restore round-trip including mid-run flag flips (columnar
   checkpoint resumed scalar, scalar checkpoint resumed columnar).
9. **Columnar throughput** — on the high-VC scenario (512 VCs per link,
   ~446 connections per input port of 2.5 Mbps CBR) the columnar engine
   must be at least ``--min-columnar-speedup`` times faster than the
   *current scalar fast path* (not the reference walk); the paper-default
   256-VC point is measured and recorded gate-free.  When NumPy is not
   installed the section records ``"numpy": false``, verifies the typed
   ``ColumnarUnavailableError``, and skips the gates without failing.

Run from the repo root::

    PYTHONPATH=src python scripts/perf_gate.py

Exits non-zero when an identity check fails or a gated speedup falls
below its threshold.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.kernel_bench import (  # noqa: E402
    HIGH_VC_COUNT,
    build_saturated_scenario,
    measure_columnar_cycles_per_second,
    measure_cycles_per_second,
    measure_obs_overhead,
    measure_sched_cycles_per_second,
    measure_sweep_speedup,
    run_columnar_identity_check,
    run_identity_check,
    run_sched_identity_check,
    run_trace_validation,
)
from repro.ckpt.verify import (  # noqa: E402
    run_ckpt_arena_identity_check,
    run_ckpt_columnar_identity_check,
    run_ckpt_network_identity_check,
    run_ckpt_router_identity_check,
)
from repro.core.columnar import (  # noqa: E402
    ColumnarUnavailableError,
    numpy_available,
)
from repro.obs import build_manifest, validate_chrome_trace  # noqa: E402
from repro.harness.churn import ChurnSpec, run_churn_experiment  # noqa: E402
from repro.harness.network_experiment import (  # noqa: E402
    NetworkExperiment,
    NetworkExperimentSpec,
    attach_delivery_log,
    run_network_experiment,
)


def _network_summary(result) -> dict:
    return {
        "streams": result.streams,
        "attempts": result.attempts,
        "mean_hops": result.mean_hops,
        "delay_count": result.delay_cycles.count,
        "delay_mean": result.delay_cycles.mean,
        "delay_min": result.delay_cycles.minimum,
        "delay_max": result.delay_cycles.maximum,
        "jitter_count": result.jitter_cycles.count,
        "jitter_mean": result.jitter_cycles.mean,
        "by_hops": {str(k): v for k, v in result.by_hops.items()},
        "best_effort_delivered": result.best_effort_delivered,
    }


def multihop_identity(seed: int = 11) -> dict:
    """Compare end-to-end QoS statistics across kernels on a network run."""
    summaries = {}
    for mode in (False, True):
        spec = NetworkExperimentSpec(
            target_link_load=0.3,
            best_effort_rate=0.5,
            warmup_cycles=2000,
            measure_cycles=8000,
            seed=seed,
            allow_fast_forward=mode,
        )
        summaries[mode] = _network_summary(run_network_experiment(spec))
    return {
        "identical": summaries[False] == summaries[True],
        "seed": seed,
        "legacy": summaries[False],
        "activity": summaries[True],
    }


def sched_multihop_identity(seed: int = 11) -> dict:
    """Compare end-to-end QoS across scheduler paths on a network run.

    Same workload as :func:`multihop_identity` (including best-effort
    background traffic, which exercises the routed-bit transitions of
    blocked packets), toggling ``scheduler_fast_path`` instead of the
    kernel mode.
    """
    summaries = {}
    for fast_path in (False, True):
        spec = NetworkExperimentSpec(
            target_link_load=0.3,
            best_effort_rate=0.5,
            warmup_cycles=2000,
            measure_cycles=8000,
            seed=seed,
            scheduler_fast_path=fast_path,
        )
        summaries[fast_path] = _network_summary(run_network_experiment(spec))
    return {
        "identical": summaries[False] == summaries[True],
        "seed": seed,
        "reference": summaries[False],
        "fast_path": summaries[True],
    }


def columnar_multihop_identity(seed: int = 11) -> dict:
    """Compare end-to-end QoS across state engines on a network run.

    Same 12-node workload as :func:`sched_multihop_identity` (including
    best-effort background traffic), toggling ``columnar_state`` with
    the scheduler fast path on in both legs.
    """
    summaries = {}
    for columnar in (False, True):
        spec = NetworkExperimentSpec(
            target_link_load=0.3,
            best_effort_rate=0.5,
            warmup_cycles=2000,
            measure_cycles=8000,
            seed=seed,
            columnar_state=columnar,
        )
        summaries[columnar] = _network_summary(run_network_experiment(spec))
    return {
        "identical": summaries[False] == summaries[True],
        "seed": seed,
        "scalar": summaries[False],
        "columnar": summaries[True],
    }


def columnar_unavailable_check() -> dict:
    """Without NumPy the typed error must name the extra; nothing else breaks."""
    try:
        build_saturated_scenario(True, columnar_state=True)
    except ColumnarUnavailableError as exc:
        return {"typed_error_ok": True, "message": str(exc)}
    return {"typed_error_ok": False, "message": "no error raised"}


def _churn_summary(result) -> dict:
    return {
        "arrivals": result.arrivals,
        "established": result.established,
        "blocked": result.blocked,
        "torn_down": result.torn_down,
        "setup_p50": result.setup_p50,
        "setup_p99": result.setup_p99,
        "setup_mean": result.setup_mean,
        "mean_delay_cycles": result.mean_delay_cycles,
        "mean_jitter_cycles": result.mean_jitter_cycles,
        "flits_delivered": result.flits_delivered,
        "renegotiations_applied": result.renegotiations_applied,
        "renegotiations_refused": result.renegotiations_refused,
        "teardown_retries": result.teardown_retries,
        "links_searched": result.links_searched,
        "backtracks": result.backtracks,
        "drained": result.drained,
        "leak_free": result.leak_free,
    }


def churn_obs_identity(seed: int = 7) -> dict:
    """Span tracing must be a pure observer of the churn workload.

    The same churn point runs with the flight recorder off and on; every
    workload metric must match bit-for-bit (the recorder may observe,
    never steer).  The recorder-on run must additionally leave a
    schema-valid Chrome trace whose control-plane span trees are all
    closed, with one root per completed session attempt.
    """
    spec_kwargs = dict(
        num_sessions=80,
        num_nodes=8,
        mean_interarrival_cycles=150.0,
        mean_holding_cycles=4000.0,
        vbr_fraction=0.4,
        renegotiation_fraction=0.5,
        seed=seed,
    )
    plain = run_churn_experiment(ChurnSpec(telemetry=False, **spec_kwargs))
    observed = run_churn_experiment(ChurnSpec(telemetry=True, **spec_kwargs))
    summaries = {
        "off": _churn_summary(plain),
        "on": _churn_summary(observed),
    }
    recorder = observed.recorder
    schema_ok = True
    try:
        validate_chrome_trace(recorder.chrome_trace())
    except ValueError:
        schema_ok = False
    roots = recorder.spans.roots()
    spans_closed = recorder.spans.open_count == 0
    return {
        "identical": summaries["off"] == summaries["on"],
        "seed": seed,
        "summaries": summaries,
        "spans": len(recorder.spans),
        "span_roots": len(roots),
        "attempts": observed.established + observed.blocked,
        "roots_match_attempts": (
            len(roots) == observed.established + observed.blocked
        ),
        "spans_closed": spans_closed,
        "span_dropped": recorder.spans.dropped,
        "trace_schema_ok": schema_ok,
        "ok": (
            summaries["off"] == summaries["on"]
            and schema_ok
            and spans_closed
            and len(roots) == observed.established + observed.blocked
        ),
    }


def run_columnar_gates(args, failures) -> dict:
    """Gates 8 & 9: columnar identity + throughput (BENCH_columnar.json).

    Self-contained so ``--columnar-only`` (the CI columnar-smoke job,
    run under both NumPy and NumPy-free environments) can execute just
    this section.  Appends failure strings to ``failures`` and writes
    the ``bench-columnar/1`` report to ``args.columnar_output``.
    """
    columnar_available = numpy_available()
    columnar_identity = None
    columnar_network_identity = None
    columnar_ckpt = None
    columnar_throughput = None
    columnar_unavailable = None
    columnar_gate_passed = None
    if not columnar_available:
        print("== columnar: NumPy not installed ==")
        columnar_unavailable = columnar_unavailable_check()
        print(
            f"   typed_error_ok={columnar_unavailable['typed_error_ok']} "
            "(identity and speedup gates skipped)"
        )
        if not columnar_unavailable["typed_error_ok"]:
            failures.append(
                "columnar_state=True without NumPy did not raise "
                "ColumnarUnavailableError"
            )
    else:
        print("== columnar identity: saturated-CBR single router (3-way) ==")
        columnar_identity = run_columnar_identity_check(
            args.columnar_identity_cycles
        )
        print(
            f"   flits={columnar_identity['flits_delivered']} "
            f"identical={columnar_identity['identical']}"
        )
        if not columnar_identity["identical"]:
            failures.append("columnar identity (single router)")

        if not args.skip_multihop:
            print("== columnar identity: 12-node multihop network ==")
            columnar_network_identity = columnar_multihop_identity()
            print(
                f"   streams={columnar_network_identity['scalar']['streams']} "
                f"delay_count="
                f"{columnar_network_identity['scalar']['delay_count']} "
                f"identical={columnar_network_identity['identical']}"
            )
            if not columnar_network_identity["identical"]:
                failures.append("columnar identity (multihop)")

        print("== columnar identity: checkpoint round-trip + flag flips ==")
        columnar_ckpt = run_ckpt_columnar_identity_check(
            args.ckpt_identity_cycles
        )
        print(
            f"   connections={columnar_ckpt['connections']} "
            f"flits={columnar_ckpt['flits_delivered']} "
            f"resumed={columnar_ckpt['columnar_resumed_identical']} "
            f"flip_off={columnar_ckpt['flip_off_identical']} "
            f"flip_on={columnar_ckpt['flip_on_identical']} "
            f"identical={columnar_ckpt['identical']}"
        )
        if not columnar_ckpt["identical"]:
            failures.append("columnar checkpoint identity")

        print(f"== columnar throughput: {HIGH_VC_COUNT}-VC high-VC scenario ==")
        columnar_scalar = measure_columnar_cycles_per_second(
            False, args.columnar_bench_cycles, args.repeats
        )
        columnar_fast = measure_columnar_cycles_per_second(
            True, args.columnar_bench_cycles, args.repeats
        )
        columnar_speedup = (
            columnar_fast["cycles_per_sec"] / columnar_scalar["cycles_per_sec"]
        )
        columnar_gate_passed = columnar_speedup >= args.min_columnar_speedup
        print(
            f"   scalar_fast={columnar_scalar['cycles_per_sec']:,.0f} cyc/s  "
            f"columnar={columnar_fast['cycles_per_sec']:,.0f} cyc/s  "
            f"speedup={columnar_speedup:.2f}x"
        )
        if not columnar_gate_passed:
            failures.append(
                f"columnar speedup {columnar_speedup:.2f}x below "
                f"threshold {args.min_columnar_speedup}x"
            )

        print("== columnar throughput: 256-VC paper point (recorded only) ==")
        base_scalar = measure_columnar_cycles_per_second(
            False, args.columnar_bench_cycles, 3, vcs_per_port=256
        )
        base_columnar = measure_columnar_cycles_per_second(
            True, args.columnar_bench_cycles, 3, vcs_per_port=256
        )
        base_speedup = (
            base_columnar["cycles_per_sec"] / base_scalar["cycles_per_sec"]
        )
        print(
            f"   scalar_fast={base_scalar['cycles_per_sec']:,.0f} cyc/s  "
            f"columnar={base_columnar['cycles_per_sec']:,.0f} cyc/s  "
            f"speedup={base_speedup:.2f}x"
        )
        columnar_throughput = {
            "high_vc": {
                "vcs_per_port": HIGH_VC_COUNT,
                "scalar_fast": columnar_scalar,
                "columnar": columnar_fast,
                "speedup": columnar_speedup,
            },
            "paper_256vc": {
                "vcs_per_port": 256,
                "scalar_fast": base_scalar,
                "columnar": base_columnar,
                "speedup": base_speedup,
            },
        }

    columnar_report = {
        "schema": "bench-columnar/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "manifest": build_manifest(command="scripts/perf_gate.py"),
        "numpy": columnar_available,
        "unavailable": columnar_unavailable,
        "identity": {
            "single_router": columnar_identity,
            "multihop": columnar_network_identity,
            "checkpoint": columnar_ckpt,
        },
        "gate": {
            "scenario": f"cbr_high_vc_{HIGH_VC_COUNT}",
            "min_speedup": args.min_columnar_speedup,
            "speedup": (
                round(columnar_throughput["high_vc"]["speedup"], 3)
                if columnar_throughput
                else None
            ),
            "passed": columnar_gate_passed,
        },
        "throughput": columnar_throughput,
    }
    args.columnar_output.write_text(json.dumps(columnar_report, indent=2) + "\n")
    print(f"wrote {args.columnar_output}")
    return columnar_report


def arena_network_identity(
    topology: str,
    routing: str,
    seed: int = 11,
    warmup: int = 1000,
    measure: int = 4000,
    best_effort: float = 0.5,
) -> dict:
    """Delivered-flit-stream + stats identity: arena vs object graph.

    Stronger than the summary-only multihop checks: every delivered flit
    is fingerprinted ``(cycle, node, port, connection, sequence,
    created)`` in delivery order, so a single reordered or retimed flit
    fails the gate even if the aggregate statistics happen to agree.
    """
    logs = {}
    summaries = {}
    for arena in (False, True):
        spec = NetworkExperimentSpec(
            target_link_load=0.3,
            best_effort_rate=best_effort,
            warmup_cycles=warmup,
            measure_cycles=measure,
            seed=seed,
            topology=topology,
            routing=routing,
            network_arena=arena,
        )
        experiment = NetworkExperiment(spec)
        logs[arena] = attach_delivery_log(experiment)
        summaries[arena] = _network_summary(experiment.result())
    flits_identical = logs[False] == logs[True]
    stats_identical = summaries[False] == summaries[True]
    return {
        "identical": flits_identical and stats_identical,
        "flits_identical": flits_identical,
        "stats_identical": stats_identical,
        "flits_delivered": len(logs[False]),
        "topology": topology,
        "routing": routing,
        "seed": seed,
        "baseline": summaries[False],
        "arena": summaries[True],
    }


def measure_network_cycles_per_second(
    spec: NetworkExperimentSpec, cycles: int, repeats: int
) -> dict:
    """Best-of-repeats steady-state simulation rate of one network point.

    The cluster is built and warmed once; each repeat times a fresh
    window of ``cycles`` on the same live simulation (steady-state CBR,
    so cycles/sec is a rate and windows are comparable).
    """
    import gc
    import time

    experiment = NetworkExperiment(spec)
    experiment.run_to(min(spec.warmup_cycles, experiment.total_cycles))
    best = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            start = experiment.sim.now
            begin = time.perf_counter()
            experiment.sim.run(cycles)
            elapsed = time.perf_counter() - begin
            best = max(best, (experiment.sim.now - start) / elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "cycles_per_sec": best,
        "cycles": cycles,
        "repeats": repeats,
        "num_nodes": experiment.topology.num_nodes,
        "streams": len(experiment.streams),
    }


def _topo_point_spec(
    topology: str,
    arena: bool,
    load: float = 0.002,
    seed: int = 5,
    warmup: int = 500,
) -> NetworkExperimentSpec:
    return NetworkExperimentSpec(
        target_link_load=load,
        warmup_cycles=warmup,
        measure_cycles=warmup,
        seed=seed,
        topology=topology,
        routing="dimension_order",
        network_arena=arena,
    )


def arena_unavailable_check() -> dict:
    """Without NumPy the arena must raise the typed error at build time."""
    try:
        NetworkExperiment(
            NetworkExperimentSpec(
                target_link_load=0.2,
                topology="mesh3x3",
                warmup_cycles=50,
                measure_cycles=50,
                network_arena=True,
            )
        )
    except ColumnarUnavailableError as exc:
        return {"typed_error_ok": True, "message": str(exc)}
    return {"typed_error_ok": False, "message": "no error raised"}


def run_topo_gates(args, failures) -> dict:
    """Topology-scaling gates: arena identity + throughput (BENCH_topo.json).

    Self-contained so ``--topo-only`` (the CI topo-smoke job, run under
    both NumPy and NumPy-free environments) can execute just this
    section.  Gates:

    * delivered-flit-stream identity, arena on vs off, on the 12-node
      irregular network (adaptive routing) and an 8x8 mesh (dimension
      order + best effort);
    * the arena checkpoint round-trip with mid-run flag flips;
    * arena >= ``--min-topo-speedup`` at a 16x16 torus point;
    * a cycles/sec-vs-node-count scaling curve (mesh and torus at 64 /
      256 / 1024 nodes) with the 32x32 saturation point recorded;
    * disabled-recorder overhead < ``--max-obs-overhead`` %% on an
      arena run (the telemetry early-out satellite).
    """
    available = numpy_available()
    identity = None
    arena_ckpt = None
    throughput = None
    scaling = None
    obs = None
    unavailable = None
    gate_passed = None
    obs_ok = None
    if not available:
        print("== topo: NumPy not installed ==")
        unavailable = arena_unavailable_check()
        print(
            f"   typed_error_ok={unavailable['typed_error_ok']} "
            "(identity and speedup gates skipped)"
        )
        if not unavailable["typed_error_ok"]:
            failures.append(
                "network_arena=True without NumPy did not raise "
                "ColumnarUnavailableError"
            )
    else:
        identity = {}
        for label, topology, routing in (
            ("irregular_12", "irregular", "adaptive"),
            ("mesh8x8", "mesh8x8", "dimension_order"),
        ):
            print(f"== topo identity: {label} arena vs object graph ==")
            check = arena_network_identity(
                topology, routing, measure=args.topo_identity_cycles
            )
            identity[label] = check
            print(
                f"   flits={check['flits_delivered']} "
                f"streams={check['baseline']['streams']} "
                f"identical={check['identical']}"
            )
            if not check["identical"]:
                failures.append(f"arena identity ({label})")

        print("== topo identity: arena checkpoint round-trip + flag flips ==")
        arena_ckpt = run_ckpt_arena_identity_check(
            measure=args.topo_identity_cycles
        )
        print(
            f"   streams={arena_ckpt['streams']} "
            f"resumed={arena_ckpt['arena_resumed_identical']} "
            f"flip_off={arena_ckpt['flip_off_identical']} "
            f"flip_on={arena_ckpt['flip_on_identical']} "
            f"identical={arena_ckpt['identical']}"
        )
        if not arena_ckpt["identical"]:
            failures.append("arena checkpoint identity")

        # The gate point is the arena's home turf: sparse steady traffic
        # crossing a 256-node fabric, where the event-driven graph still
        # dispatches every router every cycle but the wake mask steps
        # only the handful on active paths.  (At saturation the busy
        # routers' own work dominates both engines and the arena
        # converges to ~1.2x — the scaling section records that too.)
        print("== topo throughput: 16x16 torus (256 nodes), sparse ==")
        baseline = measure_network_cycles_per_second(
            _topo_point_spec("torus16x16", False, load=0.001),
            args.topo_bench_cycles,
            args.repeats,
        )
        arena = measure_network_cycles_per_second(
            _topo_point_spec("torus16x16", True, load=0.001),
            args.topo_bench_cycles,
            args.repeats,
        )
        speedup = arena["cycles_per_sec"] / baseline["cycles_per_sec"]
        gate_passed = speedup >= args.min_topo_speedup
        print(
            f"   baseline={baseline['cycles_per_sec']:,.0f} cyc/s  "
            f"arena={arena['cycles_per_sec']:,.0f} cyc/s  "
            f"speedup={speedup:.2f}x"
        )
        if not gate_passed:
            failures.append(
                f"arena speedup {speedup:.2f}x below threshold "
                f"{args.min_topo_speedup}x at torus16x16"
            )
        throughput = {
            "scenario": "torus16x16_dor_sparse",
            "target_link_load": 0.001,
            "baseline": baseline,
            "arena": arena,
            "speedup": speedup,
        }

        print("== topo scaling: cycles/sec vs node count (arena) ==")
        scaling = {"points": []}
        for kind in ("mesh", "torus"):
            for side in (8, 16, 32):
                name = f"{kind}{side}x{side}"
                point = measure_network_cycles_per_second(
                    _topo_point_spec(name, True),
                    args.topo_scaling_cycles,
                    max(2, args.repeats - 2),
                )
                entry = {
                    "topology": name,
                    "num_nodes": side * side,
                    "streams": point["streams"],
                    "cycles_per_sec": point["cycles_per_sec"],
                }
                print(
                    f"   {name:<10} nodes={entry['num_nodes']:<5} "
                    f"streams={entry['streams']:<5} "
                    f"{entry['cycles_per_sec']:,.0f} cyc/s"
                )
                scaling["points"].append(entry)
        # The 1024-node saturation point: load the 32x32 torus until
        # admission saturates and record what the cluster sustains.
        print("== topo scaling: 32x32 torus saturation point ==")
        sat_spec = NetworkExperimentSpec(
            target_link_load=0.9,
            warmup_cycles=300,
            measure_cycles=args.topo_scaling_cycles,
            seed=5,
            topology="torus32x32",
            routing="dimension_order",
            network_arena=True,
        )
        sat_experiment = NetworkExperiment(sat_spec)
        sat_rate = measure_network_cycles_per_second(
            sat_spec, args.topo_scaling_cycles, 2
        )
        sat_result = sat_experiment.result()
        scaling["saturation_32x32"] = {
            "topology": "torus32x32",
            "num_nodes": 1024,
            "streams": sat_result.streams,
            "attempts": sat_result.attempts,
            "acceptance_ratio": sat_result.acceptance_ratio,
            "mean_hops": sat_result.mean_hops,
            "mean_delay_cycles": sat_result.delay_cycles.mean,
            "mean_jitter_cycles": sat_result.jitter_cycles.mean,
            "cycles_per_sec": sat_rate["cycles_per_sec"],
        }
        print(
            f"   streams={sat_result.streams} "
            f"acceptance={sat_result.acceptance_ratio:.2f} "
            f"delay={sat_result.delay_cycles.mean:.1f}cyc "
            f"{sat_rate['cycles_per_sec']:,.0f} cyc/s"
        )

        print("== topo observability: disabled recorder on an arena run ==")
        plain_spec = _topo_point_spec("mesh8x8", True, load=0.3)
        disabled_spec = NetworkExperimentSpec(
            target_link_load=plain_spec.target_link_load,
            warmup_cycles=plain_spec.warmup_cycles,
            measure_cycles=plain_spec.measure_cycles,
            seed=plain_spec.seed,
            topology=plain_spec.topology,
            routing=plain_spec.routing,
            network_arena=True,
            telemetry=True,
        )
        import gc
        import time

        def timed(spec, disable_recorder):
            experiment = NetworkExperiment(spec)
            if disable_recorder:
                experiment.recorder.set_enabled(False)
            experiment.run_to(spec.warmup_cycles)
            best = 0.0
            gc.disable()
            try:
                for _ in range(max(args.repeats, 9)):
                    start = experiment.sim.now
                    begin = time.perf_counter()
                    experiment.sim.run(args.topo_bench_cycles)
                    elapsed = time.perf_counter() - begin
                    best = max(best, (experiment.sim.now - start) / elapsed)
            finally:
                gc.enable()
            return best

        base_rate = timed(plain_spec, False)
        disabled_rate = timed(disabled_spec, True)
        overhead_pct = (base_rate - disabled_rate) / base_rate * 100.0
        obs_ok = overhead_pct <= args.max_obs_overhead
        obs = {
            "scenario": "mesh8x8_arena",
            "baseline_cycles_per_sec": base_rate,
            "disabled_cycles_per_sec": disabled_rate,
            "overhead_pct": overhead_pct,
            "max_obs_overhead_pct": args.max_obs_overhead,
            "passed": obs_ok,
        }
        print(
            f"   baseline={base_rate:,.0f} cyc/s  "
            f"disabled={disabled_rate:,.0f} cyc/s  "
            f"overhead={overhead_pct:+.2f}%"
        )
        if not obs_ok:
            failures.append(
                f"disabled-recorder overhead {overhead_pct:.2f}% on the "
                f"arena run above {args.max_obs_overhead}%"
            )

    topo_report = {
        "schema": "bench-topo/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "manifest": build_manifest(command="scripts/perf_gate.py"),
        "numpy": available,
        "unavailable": unavailable,
        "identity": {
            "networks": identity,
            "checkpoint": arena_ckpt,
        },
        "gate": {
            "scenario": "torus16x16_dor_sparse",
            "min_speedup": args.min_topo_speedup,
            "speedup": (
                round(throughput["speedup"], 3) if throughput else None
            ),
            "passed": gate_passed,
        },
        "throughput": throughput,
        "scaling": scaling,
        "observability": obs,
    }
    args.topo_output.write_text(json.dumps(topo_report, indent=2) + "\n")
    print(f"wrote {args.topo_output}")
    return topo_report


def run_fabric_gates(args, failures) -> dict:
    """Distributed-fabric gates: cache + crash requeue (BENCH_fabric.json).

    Self-contained so ``--fabric-only`` (the CI fabric-smoke job, run
    under both NumPy and NumPy-free environments — the fabric is pure
    Python) can execute just this section.  Four legs over one small
    single-router grid, all compared row-for-row against a serial
    ``run_sweep`` baseline with exact float equality:

    * **cold** — ``run_sweep(fabric=...)`` into an empty store computes
      every point and must reproduce the serial rows bit-identically;
    * **warm** — a fresh queue against the same store must recompute
      **zero** points (every marker ``cached``, every lookup a hit);
    * **corruption** — one store entry is truncated; the rerun must
      recompute exactly that point (typed corruption drop, never a
      silent reuse) and still match the serial rows;
    * **kill** — a subprocess worker SIGKILLs itself mid-point after its
      first checkpoint; a second worker must break the dead lease,
      resume the point from its checkpoint (``resumed_from_cycle > 0``),
      and the finished grid must again be bit-identical to serial.

    Hit/miss counts come straight from the workers' store accounting and
    the queue's result markers — no derived or assumed numbers.
    """
    import shutil
    import subprocess
    import tempfile

    from repro.core.config import RouterConfig
    from repro.fabric import (
        Fabric,
        FabricQueue,
        FabricWorker,
        ResultStore,
        collect_sweep,
        submit_sweep,
    )
    from repro.harness.single_router import (
        ExperimentSpec,
        run_single_router_experiment,
    )
    from repro.harness.sweep import SweepAxis, run_sweep, sweep_points

    metrics = ("mean_delay_cycles", "mean_jitter_cycles", "utilisation")
    config = RouterConfig(num_ports=4, vcs_per_port=32, enforce_round_budgets=False)
    base = ExperimentSpec(
        config=config,
        target_load=0.4,
        candidates=4,
        seed=3,
        warmup_cycles=args.fabric_warmup,
        measure_cycles=args.fabric_cycles,
    )
    axes = [SweepAxis("seed", tuple(range(3, 3 + args.fabric_points)))]
    points = sweep_points(base, axes)

    print(f"== fabric baseline: serial run_sweep ({len(points)} points) ==")
    serial_rows = run_sweep(base, axes).rows(metrics)

    workdir = Path(tempfile.mkdtemp(prefix="fabric-gate-"))
    try:
        # --- cold: run_sweep(fabric=...) into an empty store ---------------
        print("== fabric cold: run_sweep(fabric=...) into an empty store ==")
        cold_fabric = Fabric(
            directory=workdir / "cold",
            lease_ttl=30.0,
            checkpoint_every=args.fabric_checkpoint_every,
        )
        cold_rows = run_sweep(base, axes, fabric=cold_fabric).rows(metrics)
        cold_queue = FabricQueue(cold_fabric.directory)
        cold_markers = [
            cold_queue.read_result(pid) for pid in cold_queue.point_ids()
        ]
        cold_cached = sum(1 for m in cold_markers if m["cached"])
        cold_identical = cold_rows == serial_rows
        cold_store = ResultStore(cold_fabric.store_root)
        print(
            f"   computed={len(cold_markers) - cold_cached} "
            f"cached={cold_cached} entries={cold_store.entries()} "
            f"rows_identical={cold_identical}"
        )
        if not cold_identical:
            failures.append("fabric cold rows differ from serial rows")
        if cold_cached != 0:
            failures.append(
                f"fabric cold run reported {cold_cached} cache hits "
                "from an empty store"
            )

        # --- warm: fresh queue, same store → zero recomputes ---------------
        print("== fabric warm: fresh queue against the populated store ==")
        warm_fabric = Fabric(
            directory=workdir / "warm",
            lease_ttl=30.0,
            checkpoint_every=args.fabric_checkpoint_every,
            store_dir=cold_fabric.store_root,
        )
        submit_sweep(warm_fabric, points, run_single_router_experiment, axes=tuple(axes))
        warm_worker = FabricWorker(warm_fabric)
        warm_worker.drain_until_complete(timeout=300)
        warm_rows = collect_sweep(warm_fabric, tuple(axes)).rows(metrics)
        warm_stats = warm_worker.store.stats()
        warm_identical = warm_rows == serial_rows
        print(
            f"   recomputed={warm_worker.points_computed} "
            f"cached={warm_worker.points_cached} "
            f"hits={warm_stats['hits']} misses={warm_stats['misses']} "
            f"rows_identical={warm_identical}"
        )
        if warm_worker.points_computed != 0:
            failures.append(
                f"warm-cache rerun recomputed {warm_worker.points_computed} "
                "points (expected 0)"
            )
        if warm_worker.points_cached != len(points):
            failures.append(
                f"warm-cache rerun cached {warm_worker.points_cached} of "
                f"{len(points)} points"
            )
        if not warm_identical:
            failures.append("fabric warm rows differ from serial rows")

        # --- corruption: truncate one entry → recompute exactly it ---------
        print("== fabric corruption: truncated entry must recompute ==")
        victim_key = warm_worker.store.key_for(points[0][1], repr(points[0][0]))
        victim_path = warm_worker.store.path_for(victim_key)
        victim_path.write_bytes(victim_path.read_bytes()[: len(MAGIC_PROBE)])
        corrupt_fabric = Fabric(
            directory=workdir / "corrupt",
            lease_ttl=30.0,
            checkpoint_every=args.fabric_checkpoint_every,
            store_dir=cold_fabric.store_root,
        )
        submit_sweep(
            corrupt_fabric, points, run_single_router_experiment, axes=tuple(axes)
        )
        corrupt_worker = FabricWorker(corrupt_fabric)
        corrupt_worker.drain_until_complete(timeout=300)
        corrupt_rows = collect_sweep(corrupt_fabric, tuple(axes)).rows(metrics)
        corrupt_stats = corrupt_worker.store.stats()
        corrupt_identical = corrupt_rows == serial_rows
        print(
            f"   corrupt_dropped={corrupt_stats['corrupt_dropped']} "
            f"recomputed={corrupt_worker.points_computed} "
            f"cached={corrupt_worker.points_cached} "
            f"rows_identical={corrupt_identical}"
        )
        if corrupt_stats["corrupt_dropped"] != 1:
            failures.append(
                f"corruption drill dropped {corrupt_stats['corrupt_dropped']} "
                "entries (expected 1)"
            )
        if corrupt_worker.points_computed != 1:
            failures.append(
                f"corruption drill recomputed {corrupt_worker.points_computed} "
                "points (expected exactly the truncated one)"
            )
        if not corrupt_identical:
            failures.append("fabric corruption-drill rows differ from serial rows")

        # --- kill: SIGKILLed worker → lease requeue → checkpoint resume ----
        print("== fabric kill: SIGKILL a worker mid-point, requeue + resume ==")
        kill_fabric = Fabric(
            directory=workdir / "kill",
            lease_ttl=2.0,
            heartbeat_every=0.5,
            checkpoint_every=args.fabric_checkpoint_every,
        )
        submit_sweep(kill_fabric, points, run_single_router_experiment, axes=tuple(axes))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        doomed = subprocess.run(
            [
                sys.executable, "-m", "repro", "fabric", "work",
                str(kill_fabric.directory),
                "--ttl", "2", "--heartbeat-every", "0.5",
                "--kill-after-checkpoints", "1",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        rescue_worker = FabricWorker(kill_fabric)
        rescue_worker.drain_until_complete(timeout=300)
        kill_rows = collect_sweep(kill_fabric, tuple(axes)).rows(metrics)
        kill_queue = FabricQueue(kill_fabric.directory, lease_ttl=2.0)
        kill_status = kill_queue.status()
        resumed_cycles = [
            (kill_queue.read_result(pid).get("checkpoint") or {}).get(
                "resumed_from_cycle"
            )
            for pid in kill_queue.point_ids()
        ]
        resumed_points = sum(1 for c in resumed_cycles if c is not None)
        kill_identical = kill_rows == serial_rows
        print(
            f"   killed_rc={doomed.returncode} "
            f"lease_expiries={kill_status['lease_expiries_logged']} "
            f"resumed_points={resumed_points} "
            f"resume_cycles={[c for c in resumed_cycles if c is not None]} "
            f"rows_identical={kill_identical}"
        )
        if doomed.returncode != -9:
            failures.append(
                f"crash-drill worker exited {doomed.returncode}, expected "
                f"SIGKILL (-9); stderr: {doomed.stderr[-300:]}"
            )
        if kill_status["lease_expiries_logged"] < 1:
            failures.append("killed worker's lease was never broken/requeued")
        if resumed_points < 1:
            failures.append(
                "no point resumed from a checkpoint after the worker kill"
            )
        if not any(c and c > 0 for c in resumed_cycles):
            failures.append(
                "requeued point restarted from cycle 0 instead of its checkpoint"
            )
        if not kill_identical:
            failures.append("fabric killed-worker rows differ from serial rows")

        fabric_report = {
            "schema": "bench-fabric/1",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "manifest": build_manifest(command="scripts/perf_gate.py"),
            "numpy": numpy_available(),
            "grid": {
                "points": len(points),
                "axes": [{"name": a.name, "values": list(a.values)} for a in axes],
                "metrics": list(metrics),
                "warmup_cycles": args.fabric_warmup,
                "measure_cycles": args.fabric_cycles,
                "checkpoint_every": args.fabric_checkpoint_every,
            },
            "cold": {
                "rows_identical": cold_identical,
                "computed": len(cold_markers) - cold_cached,
                "cached": cold_cached,
                "store_entries": cold_store.entries(),
            },
            "warm": {
                "rows_identical": warm_identical,
                "recomputed": warm_worker.points_computed,
                "cached": warm_worker.points_cached,
                "store": warm_stats,
            },
            "corruption": {
                "rows_identical": corrupt_identical,
                "recomputed": corrupt_worker.points_computed,
                "cached": corrupt_worker.points_cached,
                "store": corrupt_stats,
            },
            "kill": {
                "rows_identical": kill_identical,
                "killed_worker_returncode": doomed.returncode,
                "lease_expiries": kill_status["lease_expiries_logged"],
                "resumed_points": resumed_points,
                "resumed_from_cycles": [c for c in resumed_cycles if c is not None],
                "rescue_worker": {
                    "computed": rescue_worker.points_computed,
                    "cached": rescue_worker.points_cached,
                    "resumed": rescue_worker.points_resumed,
                },
            },
            "gate": {
                "warm_recomputed": warm_worker.points_computed,
                "kill_rows_identical": kill_identical,
                "passed": (
                    cold_identical
                    and warm_identical
                    and corrupt_identical
                    and kill_identical
                    and warm_worker.points_computed == 0
                    and resumed_points >= 1
                ),
            },
        }
        args.fabric_output.write_text(json.dumps(fabric_report, indent=2) + "\n")
        print(f"wrote {args.fabric_output}")
        return fabric_report
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


#: Length of the result-store magic line; the corruption drill truncates
#: an entry to exactly this prefix (valid magic, nothing else).
MAGIC_PROBE = b"MMR-RESULT\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cycles", type=int, default=120_000,
        help="simulated cycles per timing run (default 120000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per kernel; best is reported (default 5)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="gate threshold on the 10%%-load point (default 3.0)",
    )
    parser.add_argument(
        "--identity-cycles", type=int, default=60_000,
        help="cycles for the single-router identity runs (default 60000)",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_kernel.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--skip-multihop", action="store_true",
        help="skip the (slower) multihop identity check",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=2.0,
        help="gate: max %% cost of a disabled flight recorder (default 2.0)",
    )
    parser.add_argument(
        "--trace-cycles", type=int, default=1000,
        help="cycles for the recorder-on trace validation run (default 1000)",
    )
    parser.add_argument(
        "--trace-output", type=Path, default=REPO_ROOT / "BENCH_trace.json",
        help="where to write the validated Perfetto trace artefact",
    )
    parser.add_argument(
        "--sched-cycles", type=int, default=10_000,
        help="simulated cycles per scheduler timing run (default 10000)",
    )
    parser.add_argument(
        "--sched-identity-cycles", type=int, default=8_000,
        help="cycles for the saturated-CBR scheduler identity run (default 8000)",
    )
    parser.add_argument(
        "--min-sched-speedup", type=float, default=1.5,
        help="gate threshold on the saturated-CBR 90%%-load point (default 1.5)",
    )
    parser.add_argument(
        "--sweep-jobs", type=int, default=4,
        help="worker count for the sweep-parallelism measurement (default 4)",
    )
    parser.add_argument(
        "--min-sweep-speedup", type=float, default=2.0,
        help="gate threshold on the parallel sweep, enforced only when the "
             "machine has at least --sweep-jobs cores (default 2.0)",
    )
    parser.add_argument(
        "--skip-sweep", action="store_true",
        help="skip the sweep-parallelism measurement",
    )
    parser.add_argument(
        "--sched-output", type=Path, default=REPO_ROOT / "BENCH_sched.json",
        help="where to write the scheduler-gate JSON report",
    )
    parser.add_argument(
        "--ckpt-identity-cycles", type=int, default=8_000,
        help="cycles for the saturated-CBR checkpoint identity run "
             "(default 8000)",
    )
    parser.add_argument(
        "--ckpt-output", type=Path, default=REPO_ROOT / "BENCH_ckpt.json",
        help="where to write the checkpoint-gate JSON report",
    )
    parser.add_argument(
        "--columnar-identity-cycles", type=int, default=8_000,
        help="cycles for the columnar identity runs (default 8000)",
    )
    parser.add_argument(
        "--columnar-bench-cycles", type=int, default=8_000,
        help="simulated cycles per columnar timing run (default 8000; "
             "short windows under-read the speedup because the "
             "connection ramp-up, where few VCs are eligible, is shared "
             "by both engines)",
    )
    parser.add_argument(
        "--min-columnar-speedup", type=float, default=2.0,
        help="gate threshold on the 512-VC high-VC point (default 2.0)",
    )
    parser.add_argument(
        "--columnar-output", type=Path,
        default=REPO_ROOT / "BENCH_columnar.json",
        help="where to write the columnar-gate JSON report",
    )
    parser.add_argument(
        "--columnar-only", action="store_true",
        help="run only the columnar gates (identity + throughput, or the "
             "typed-error check when NumPy is absent); used by the CI "
             "columnar-smoke job's NumPy / no-NumPy matrix",
    )
    parser.add_argument(
        "--topo-identity-cycles", type=int, default=4_000,
        help="measure cycles for the arena identity runs (default 4000)",
    )
    parser.add_argument(
        "--topo-bench-cycles", type=int, default=2_000,
        help="simulated cycles per arena timing window (default 2000)",
    )
    parser.add_argument(
        "--min-topo-speedup", type=float, default=3.0,
        help="gate threshold on the 16x16 torus point (default 3.0)",
    )
    parser.add_argument(
        "--topo-scaling-cycles", type=int, default=1_000,
        help="cycles per point of the node-count scaling curve "
             "(default 1000; the 32x32 points step 1024 routers each)",
    )
    parser.add_argument(
        "--topo-output", type=Path,
        default=REPO_ROOT / "BENCH_topo.json",
        help="where to write the topology-scaling JSON report",
    )
    parser.add_argument(
        "--topo-only", action="store_true",
        help="run only the topology-scaling gates (arena identity + "
             "throughput + scaling curve, or the typed-error check when "
             "NumPy is absent); used by the CI topo-smoke job",
    )
    parser.add_argument(
        "--fabric-points", type=int, default=4,
        help="grid size for the fabric gates (default 4 points)",
    )
    parser.add_argument(
        "--fabric-warmup", type=int, default=300,
        help="warm-up cycles per fabric gate point (default 300)",
    )
    parser.add_argument(
        "--fabric-cycles", type=int, default=12_000,
        help="measured cycles per fabric gate point (default 12000; long "
             "enough that the crash-drill SIGKILL lands mid-point, after "
             "the first checkpoint but before completion)",
    )
    parser.add_argument(
        "--fabric-checkpoint-every", type=int, default=2_000,
        help="per-point checkpoint period for the fabric gates (default 2000)",
    )
    parser.add_argument(
        "--fabric-output", type=Path,
        default=REPO_ROOT / "BENCH_fabric.json",
        help="where to write the fabric-gate JSON report",
    )
    parser.add_argument(
        "--fabric-only", action="store_true",
        help="run only the distributed-fabric gates (warm-cache zero "
             "recompute, corruption recompute, killed-worker requeue + "
             "checkpoint-resume identity); used by the CI fabric-smoke "
             "job's NumPy / no-NumPy matrix (the fabric is pure Python)",
    )
    args = parser.parse_args(argv)
    if args.cycles <= 0 or args.identity_cycles <= 0 or args.repeats <= 0:
        parser.error("--cycles, --identity-cycles and --repeats must be positive")

    failures = []

    if args.columnar_only:
        columnar_report = run_columnar_gates(args, failures)
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
        gate = columnar_report["gate"]
        note = (
            f"identity holds, columnar {gate['speedup']:.2f}x >= "
            f"{gate['min_speedup']}x"
            if gate["speedup"] is not None
            else "typed-error path verified (no NumPy)"
        )
        print(f"PASS: columnar {note}")
        return 0

    if args.topo_only:
        topo_report = run_topo_gates(args, failures)
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
        gate = topo_report["gate"]
        note = (
            f"identity holds, arena {gate['speedup']:.2f}x >= "
            f"{gate['min_speedup']}x at torus16x16"
            if gate["speedup"] is not None
            else "typed-error path verified (no NumPy)"
        )
        print(f"PASS: topo {note}")
        return 0

    if args.fabric_only:
        fabric_report = run_fabric_gates(args, failures)
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
        kill = fabric_report["kill"]
        print(
            "PASS: fabric warm rerun recomputed 0 points, killed-worker "
            f"grid identical to serial (resumed {kill['resumed_points']} "
            f"point(s) from cycle {max(kill['resumed_from_cycles'])})"
        )
        return 0

    print("== identity: 8-stream single router ==")
    router_identity = run_identity_check(8, args.identity_cycles)
    print(
        f"   flits={router_identity['flits_delivered']} "
        f"identical={router_identity['identical']} "
        f"ff={router_identity['fast_forwarded_fraction']:.1%}"
    )
    if not router_identity["identical"]:
        failures.append("single-router identity")
    if router_identity["legacy_fast_forwarded"] != 0:
        failures.append("legacy kernel fast-forwarded")

    network_identity = None
    if not args.skip_multihop:
        print("== identity: 12-node multihop network ==")
        network_identity = multihop_identity()
        print(
            f"   streams={network_identity['legacy']['streams']} "
            f"delay_count={network_identity['legacy']['delay_count']} "
            f"identical={network_identity['identical']}"
        )
        if not network_identity["identical"]:
            failures.append("multihop identity")

    scenarios = {}
    for name, connections, activity_cycle_factor in (
        ("cbr_10pct_single_stream", 1, 5),
        ("cbr_10pct_all_ports", 8, 1),
    ):
        print(f"== throughput: {name} ==")
        # Both kernels are timed in steady state, so cycles/sec is a rate
        # and the two runs need not simulate the same number of cycles.
        # The activity kernel gets proportionally more cycles so each
        # timed run covers comparable *wall time* — short runs are what
        # machine-noise bursts distort most.
        legacy = measure_cycles_per_second(
            False, connections, args.cycles, args.repeats
        )
        activity = measure_cycles_per_second(
            True, connections, args.cycles * activity_cycle_factor, args.repeats
        )
        speedup = activity["cycles_per_sec"] / legacy["cycles_per_sec"]
        scenarios[name] = {
            "connections": connections,
            "legacy": legacy,
            "activity": activity,
            "speedup": speedup,
        }
        print(
            f"   legacy={legacy['cycles_per_sec']:,.0f} cyc/s  "
            f"activity={activity['cycles_per_sec']:,.0f} cyc/s  "
            f"speedup={speedup:.2f}x  "
            f"ff={activity['fast_forwarded_fraction']:.1%}"
        )

    gate_speedup = scenarios["cbr_10pct_single_stream"]["speedup"]
    gate_passed = gate_speedup >= args.min_speedup
    if not gate_passed:
        failures.append(
            f"speedup {gate_speedup:.2f}x below threshold {args.min_speedup}x"
        )

    obs_overhead = {}
    for name, connections, cycle_factor in (
        # The fast-forwarding single-stream scenario gets proportionally
        # more cycles (as in the throughput section) so each timed slice
        # is long enough for a sub-2% comparison to be meaningful; repeats
        # are floored at 9 (72 slice pairs) because pair count, not run
        # length, is what bounds the residual noise here.
        ("cbr_10pct_single_stream", 1, 5),
        ("cbr_10pct_all_ports", 8, 1),
    ):
        print(f"== observability: disabled-recorder overhead, {name} ==")
        measurement = measure_obs_overhead(
            connections, args.cycles * cycle_factor, max(args.repeats, 9)
        )
        obs_overhead[name] = measurement
        print(
            f"   baseline={measurement['baseline_cycles_per_sec']:,.0f} cyc/s  "
            f"disabled={measurement['disabled_cycles_per_sec']:,.0f} cyc/s  "
            f"overhead={measurement['overhead_pct']:+.2f}%"
        )
        if measurement["overhead_pct"] > args.max_obs_overhead:
            failures.append(
                f"disabled-recorder overhead {measurement['overhead_pct']:.2f}% "
                f"on {name} above {args.max_obs_overhead}%"
            )

    print("== observability: trace export validation ==")
    trace_check = run_trace_validation(8, args.trace_cycles)
    trace_payload = trace_check.pop("payload")
    args.trace_output.write_text(json.dumps(trace_payload) + "\n")
    print(
        f"   flits={trace_check['flits_delivered']} "
        f"traced={trace_check['traced_deliveries']} "
        f"complete={trace_check['all_lifecycles_complete']} "
        f"schema_ok=True ({trace_check['trace_bytes']:,} bytes)"
    )
    print(f"wrote {args.trace_output}")
    if not trace_check["ok"]:
        failures.append("trace export validation")

    print("== observability: churn span-tracing identity ==")
    churn_identity = churn_obs_identity()
    print(
        f"   sessions={churn_identity['summaries']['off']['arrivals']} "
        f"spans={churn_identity['spans']} "
        f"roots={churn_identity['span_roots']} "
        f"identical={churn_identity['identical']} "
        f"closed={churn_identity['spans_closed']} "
        f"schema_ok={churn_identity['trace_schema_ok']}"
    )
    if not churn_identity["ok"]:
        failures.append("churn span-tracing identity")

    print("== sched identity: saturated-CBR single router ==")
    sched_identity = run_sched_identity_check(args.sched_identity_cycles)
    print(
        f"   flits={sched_identity['flits_delivered']} "
        f"identical={sched_identity['identical']}"
    )
    if not sched_identity["identical"]:
        failures.append("scheduler fast-path identity (single router)")

    sched_network_identity = None
    if not args.skip_multihop:
        print("== sched identity: 12-node multihop network ==")
        sched_network_identity = sched_multihop_identity()
        print(
            f"   streams={sched_network_identity['reference']['streams']} "
            f"delay_count={sched_network_identity['reference']['delay_count']} "
            f"identical={sched_network_identity['identical']}"
        )
        if not sched_network_identity["identical"]:
            failures.append("scheduler fast-path identity (multihop)")

    print("== sched throughput: saturated CBR at 90% load ==")
    sched_reference = measure_sched_cycles_per_second(
        False, args.sched_cycles, args.repeats
    )
    sched_fast = measure_sched_cycles_per_second(
        True, args.sched_cycles, args.repeats
    )
    sched_speedup = sched_fast["cycles_per_sec"] / sched_reference["cycles_per_sec"]
    sched_gate_passed = sched_speedup >= args.min_sched_speedup
    print(
        f"   reference={sched_reference['cycles_per_sec']:,.0f} cyc/s  "
        f"fast={sched_fast['cycles_per_sec']:,.0f} cyc/s  "
        f"speedup={sched_speedup:.2f}x"
    )
    if not sched_gate_passed:
        failures.append(
            f"scheduler speedup {sched_speedup:.2f}x below "
            f"threshold {args.min_sched_speedup}x"
        )

    sweep_measurement = None
    sweep_gated = False
    if not args.skip_sweep:
        print(f"== sweep parallelism: {args.sweep_jobs} jobs ==")
        sweep_measurement = measure_sweep_speedup(args.sweep_jobs)
        # The wall-clock gate only binds where the hardware can deliver
        # it; row identity must hold everywhere.
        sweep_gated = (os.cpu_count() or 1) >= args.sweep_jobs
        print(
            f"   serial={sweep_measurement['serial_seconds']:.2f}s  "
            f"parallel={sweep_measurement['parallel_seconds']:.2f}s  "
            f"speedup={sweep_measurement['speedup']:.2f}x  "
            f"cores={sweep_measurement['cpu_count']} "
            f"({'gated' if sweep_gated else 'recorded only'})"
        )
        if not sweep_measurement["rows_identical"]:
            failures.append("parallel sweep rows differ from serial rows")
        if sweep_gated and sweep_measurement["speedup"] < args.min_sweep_speedup:
            failures.append(
                f"sweep speedup {sweep_measurement['speedup']:.2f}x below "
                f"threshold {args.min_sweep_speedup}x on a "
                f"{sweep_measurement['cpu_count']}-core machine"
            )

    print("== ckpt identity: saturated-CBR single router (729 connections) ==")
    ckpt_router = run_ckpt_router_identity_check(args.ckpt_identity_cycles)
    print(
        f"   connections={ckpt_router['connections']} "
        f"flits={ckpt_router['flits_delivered']} "
        f"ckpt@{ckpt_router['checkpoint_cycle']} "
        f"({ckpt_router['checkpoint_bytes']:,} bytes) "
        f"identical={ckpt_router['identical']}"
    )
    if not ckpt_router["identical"]:
        failures.append("checkpoint identity (saturated single router)")

    ckpt_network = None
    if not args.skip_multihop:
        print("== ckpt identity: 12-node multihop network ==")
        ckpt_network = run_ckpt_network_identity_check()
        print(
            f"   streams={ckpt_network['streams']} "
            f"delay_count={ckpt_network['delay_count']} "
            f"ckpt@{ckpt_network['checkpoint_cycle']} "
            f"({ckpt_network['checkpoint_bytes']:,} bytes) "
            f"identical={ckpt_network['identical']}"
        )
        if not ckpt_network["identical"]:
            failures.append("checkpoint identity (multihop)")

    columnar_report = run_columnar_gates(args, failures)
    topo_report = run_topo_gates(args, failures)
    run_fabric_gates(args, failures)

    ckpt_report = {
        "schema": "bench-ckpt/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "manifest": build_manifest(command="scripts/perf_gate.py"),
        "identity": {
            "single_router": ckpt_router,
            "multihop": ckpt_network,
        },
    }
    args.ckpt_output.write_text(json.dumps(ckpt_report, indent=2) + "\n")
    print(f"wrote {args.ckpt_output}")

    sched_report = {
        "schema": "bench-sched/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "manifest": build_manifest(command="scripts/perf_gate.py"),
        "identity": {
            "single_router": sched_identity,
            "multihop": sched_network_identity,
        },
        "gate": {
            "scenario": "cbr_saturated_90pct",
            "min_speedup": args.min_sched_speedup,
            "speedup": round(sched_speedup, 3),
            "passed": sched_gate_passed,
        },
        "throughput": {
            "reference": sched_reference,
            "fast_path": sched_fast,
            "speedup": sched_speedup,
        },
        "sweep": {
            "min_speedup": args.min_sweep_speedup,
            "gated": sweep_gated,
            "measurement": sweep_measurement,
        },
    }
    args.sched_output.write_text(json.dumps(sched_report, indent=2) + "\n")
    print(f"wrote {args.sched_output}")

    report = {
        "schema": "bench-kernel/2",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "manifest": build_manifest(command="scripts/perf_gate.py"),
        "identity": {
            "single_router": router_identity,
            "multihop": network_identity,
        },
        "gate": {
            "scenario": "cbr_10pct_single_stream",
            "min_speedup": args.min_speedup,
            "speedup": round(gate_speedup, 3),
            "passed": gate_passed,
        },
        "scenarios": scenarios,
        "observability": {
            "max_obs_overhead_pct": args.max_obs_overhead,
            "overhead": obs_overhead,
            "trace_validation": trace_check,
            "trace_artifact": str(args.trace_output),
            "churn_span_identity": churn_identity,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    columnar_speedup = columnar_report["gate"]["speedup"]
    columnar_note = (
        f"columnar {columnar_speedup:.2f}x >= {args.min_columnar_speedup}x"
        if columnar_speedup is not None
        else "columnar skipped (no NumPy)"
    )
    topo_speedup = topo_report["gate"]["speedup"]
    topo_note = (
        f"arena {topo_speedup:.2f}x >= {args.min_topo_speedup}x"
        if topo_speedup is not None
        else "arena skipped (no NumPy)"
    )
    print(
        f"PASS: identity holds (kernel, scheduler, checkpoint, columnar, "
        f"arena), "
        f"kernel {gate_speedup:.2f}x >= {args.min_speedup}x, "
        f"scheduler {sched_speedup:.2f}x >= {args.min_sched_speedup}x, "
        f"{columnar_note}, {topo_note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
