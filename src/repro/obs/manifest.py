"""Run manifests: every exported artefact says exactly what produced it.

A benchmark number or trace file is only evidence if it can be tied back
to the code, configuration and seed that generated it.  ``build_manifest``
gathers that provenance — seed, a digest of the router configuration, the
git revision, wall time, interpreter and platform — into one JSON-safe
dict that exporters attach to ``BENCH_*.json``, experiment results and
Perfetto traces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Optional

#: Schema tag; bump when the manifest shape changes incompatibly.
MANIFEST_SCHEMA = "mmr-run-manifest/1"

_REPO_ROOT = Path(__file__).resolve().parents[3]


def config_digest(config: Any) -> str:
    """A stable short digest of a configuration object.

    Dataclasses are serialised field-by-field; anything else must already
    be JSON-safe.  Two configs digest equal iff their canonical JSON does,
    so experiment records can be grouped by configuration identity without
    carrying the whole config around.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        record = dataclasses.asdict(config)
    else:
        record = config
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_revision(repo_root: Optional[Path] = None) -> Optional[str]:
    """The current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or _REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_manifest(
    seed: Optional[int] = None,
    config: Any = None,
    command: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance record for one run.

    ``command`` names the producing entry point (CLI subcommand, script);
    ``extra`` carries producer-specific fields (cycle counts, scenario
    names).  The result is JSON-safe and self-describing via ``schema``.
    """
    now = time.time()
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": round(now, 3),
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_revision": git_revision(),
    }
    if seed is not None:
        manifest["seed"] = seed
    if config is not None:
        manifest["config_digest"] = config_digest(config)
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            manifest["config"] = dataclasses.asdict(config)
    if command is not None:
        manifest["command"] = command
    if extra:
        manifest.update(extra)
    return manifest
