"""Streaming SLO engine: declarative budgets over online estimators.

The Tiny Tera evaluation (McKeown et al.) judged its switch against
explicit delay/throughput targets; this module gives the churn and sweep
harnesses the same vocabulary, online.  A run declares **budgets** —

* quantile budgets, ``<stream>_p<NN>`` (``setup_p99=60``,
  ``jitter_p95=12.5``): the ``q``-quantile of a sample stream must stay
  at or under the limit, tracked by a P² streaming estimator
  (Jain & Chlamtac 1985) in O(1) memory — **no unbounded sample lists**;
* ratio budgets (``blocking_probability=0.02``,
  ``policer_refusal_rate=0.01``): a numerator/denominator pair must stay
  at or under the limit once the denominator is large enough to mean
  anything.

Budgets are evaluated **at observation time**: the first sample that
pushes an estimator over its limit produces a typed
:class:`SloViolation` carrying the offending session and span ids, so a
breach is attributable ("session 412's setup crossed p99 over budget at
cycle 81,440 — here is its span tree"), not just a number at the end.
Breach state is sticky for gating (a run that breached and recovered
still fails) while :meth:`SloEngine.state` reports the live estimate for
health snapshots and dashboards.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Samples (or denominator counts) an estimator needs before its budget
#: is considered meaningful.  Below this, no breach can trigger.
DEFAULT_MIN_SAMPLES = 16

#: Violation records retained per engine; later breaches only count.
DEFAULT_MAX_VIOLATIONS = 256

_QUANTILE_METRIC = re.compile(r"^(?P<stream>[a-z][a-z0-9_]*?)_p(?P<digits>\d{1,3})$")


def quantile_label(q: float) -> str:
    """``0.99`` → ``"p99"``, ``0.999`` → ``"p99_9"`` (JSON-key-safe)."""
    text = f"{q * 100:g}".replace(".", "_")
    return f"p{text}"


class P2Quantile:
    """P² single-quantile streaming estimator (Jain & Chlamtac 1985).

    Maintains five markers whose heights bracket the target quantile,
    adjusted with a piecewise-parabolic fit as samples stream in: O(1)
    memory and O(1) per sample.  Below five samples the estimate is the
    exact nearest-rank quantile of the (tiny) buffer, so short runs and
    unit tests see exact values.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._rates: List[float] = []

    def add(self, value: float) -> None:
        """Fold one sample into the estimator."""
        value = float(value)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            # Initialisation phase: keep the first five samples sorted.
            lo, hi = 0, len(heights)
            while lo < hi:
                mid = (lo + hi) // 2
                if heights[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            heights.insert(lo, value)
            if self.count == 5:
                q = self.q
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
                self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        positions = self._positions
        # Locate the marker cell the sample falls into, updating extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._rates[i]
        # Adjust the three interior markers toward their desired positions.
        for i in range(1, 4):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate (0.0 before any sample)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            rank = max(1, math.ceil(self.q * self.count))
            return self._heights[rank - 1]
        return self._heights[2]


class StreamingQuantiles:
    """Several P² estimators plus count/mean/min/max over one stream.

    Replaces exact sample lists where memory must stay O(1) per stream
    (the churn workload's per-session setup latencies, for instance).
    Reported quantiles are clamped monotone non-decreasing in ``q`` —
    independent P² markers can cross by small amounts on short streams,
    and a p50 above p99 would be nonsense downstream.
    """

    __slots__ = ("_estimators", "count", "_total", "_min", "_max")

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.99)) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self._estimators = {q: P2Quantile(q) for q in sorted(set(quantiles))}
        self.count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def quantiles(self) -> Tuple[float, ...]:
        return tuple(self._estimators)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        for estimator in self._estimators.values():
            estimator.add(value)

    def quantile(self, q: float) -> float:
        """The (monotone-clamped) estimate for a tracked quantile."""
        if q not in self._estimators:
            raise KeyError(f"quantile {q} not tracked (have {self.quantiles})")
        estimate = 0.0
        for tracked, estimator in self._estimators.items():
            estimate = max(estimate, estimator.value())
            if tracked == q:
                return min(estimate, self._max) if self.count else 0.0
        raise AssertionError("unreachable")

    @property
    def mean(self) -> float:
        return self._total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary of the stream."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "quantiles": {
                quantile_label(q): self.quantile(q) for q in self.quantiles
            },
        }


@dataclass(frozen=True)
class SloBudget:
    """One declared target: ``metric`` must stay at or under ``limit``.

    ``metric`` is either ``<stream>_p<NN>`` (a quantile budget over the
    sample stream ``<stream>``) or a ratio name fed through
    :meth:`SloEngine.observe_ratio` (``blocking_probability``, ...).
    """

    metric: str
    limit: float

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("budget metric must be non-empty")
        if self.limit < 0:
            raise ValueError(f"budget limit must be >= 0, got {self.limit}")

    @property
    def stream(self) -> Optional[str]:
        """Sample-stream name for a quantile budget, else None."""
        match = _QUANTILE_METRIC.match(self.metric)
        return match.group("stream") if match else None

    @property
    def quantile(self) -> Optional[float]:
        """Target quantile for a quantile budget, else None.

        ``p50`` → 0.50, ``p99`` → 0.99, ``p999`` → 0.999.
        """
        match = _QUANTILE_METRIC.match(self.metric)
        if match is None:
            return None
        digits = match.group("digits")
        q = int(digits) / (10 ** len(digits))
        if not 0.0 < q < 1.0:
            raise ValueError(f"budget {self.metric!r}: quantile {q} out of (0,1)")
        return q

    @classmethod
    def parse(cls, text: str) -> "SloBudget":
        """Parse a ``metric=limit`` CLI budget declaration."""
        metric, sep, limit_text = text.partition("=")
        if not sep or not metric or not limit_text:
            raise ValueError(
                f"SLO budget must look like metric=limit (got {text!r})"
            )
        try:
            limit = float(limit_text)
        except ValueError:
            raise ValueError(
                f"SLO budget {text!r}: limit {limit_text!r} is not a number"
            ) from None
        budget = cls(metric.strip(), limit)
        budget.quantile  # validates quantile syntax eagerly
        return budget


@dataclass
class SloViolation:
    """A budget crossed its limit: typed, attributable, JSON-safe."""

    metric: str
    limit: float
    observed: float
    time: int
    session_id: int = -1
    span_id: int = -1
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "limit": self.limit,
            "observed": self.observed,
            "time": self.time,
            "session_id": self.session_id,
            "span_id": self.span_id,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        where = f" (session {self.session_id}" if self.session_id != -1 else ""
        if where and self.span_id != -1:
            where += f", span {self.span_id}"
        if where:
            where += ")"
        return (
            f"SLO breach: {self.metric}={self.observed:.4g} > "
            f"limit {self.limit:g} at cycle {self.time}{where}"
            + (f" — {self.detail}" if self.detail else "")
        )


@dataclass
class _BudgetState:
    """Mutable evaluation state for one budget."""

    budget: SloBudget
    observed: float = 0.0
    samples: int = 0
    currently_breached: bool = False
    tripped: bool = False
    violations: int = 0


class SloEngine:
    """Evaluates declared budgets online against streaming estimators."""

    def __init__(
        self,
        budgets: Sequence[SloBudget],
        min_samples: int = DEFAULT_MIN_SAMPLES,
        max_violations: int = DEFAULT_MAX_VIOLATIONS,
    ) -> None:
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if max_violations < 1:
            raise ValueError(f"max_violations must be >= 1, got {max_violations}")
        seen = set()
        for budget in budgets:
            if budget.metric in seen:
                raise ValueError(f"duplicate SLO budget for {budget.metric!r}")
            seen.add(budget.metric)
        self.min_samples = min_samples
        self.max_violations = max_violations
        self.violations: List[SloViolation] = []
        self.dropped_violations = 0
        self._states: List[_BudgetState] = [_BudgetState(b) for b in budgets]
        #: Quantile budgets grouped by stream; each stream gets ONE
        #: multi-quantile estimator shared by its budgets.
        self._stream_budgets: Dict[str, List[_BudgetState]] = {}
        self._ratio_budgets: Dict[str, _BudgetState] = {}
        for state in self._states:
            stream = state.budget.stream
            if stream is not None:
                self._stream_budgets.setdefault(stream, []).append(state)
            else:
                self._ratio_budgets[state.budget.metric] = state
        self._estimators: Dict[str, StreamingQuantiles] = {
            stream: StreamingQuantiles(
                tuple(s.budget.quantile for s in states)
            )
            for stream, states in self._stream_budgets.items()
        }

    @property
    def budgets(self) -> List[SloBudget]:
        return [state.budget for state in self._states]

    @property
    def breached(self) -> bool:
        """True once any budget has ever crossed its limit (sticky)."""
        return any(state.tripped for state in self._states)

    # ----- observation -------------------------------------------------------

    def observe(
        self,
        stream: str,
        value: float,
        time: int,
        session_id: int = -1,
        span_id: int = -1,
    ) -> None:
        """Fold one sample into ``stream`` and re-check its budgets.

        A stream no budget targets is ignored (O(1) dict miss), so call
        sites can emit unconditionally.
        """
        states = self._stream_budgets.get(stream)
        if states is None:
            return
        estimator = self._estimators[stream]
        estimator.add(value)
        for state in states:
            q = state.budget.quantile
            assert q is not None
            estimate = estimator.quantile(q)
            self._check(state, estimate, estimator.count, time, session_id, span_id)

    def observe_ratio(
        self,
        metric: str,
        numerator: float,
        denominator: float,
        time: int,
        session_id: int = -1,
        span_id: int = -1,
    ) -> None:
        """Update a ratio budget with the *current* cumulative ratio."""
        state = self._ratio_budgets.get(metric)
        if state is None:
            return
        if denominator <= 0:
            return
        ratio = numerator / denominator
        self._check(state, ratio, int(denominator), time, session_id, span_id)

    def _check(
        self,
        state: _BudgetState,
        observed: float,
        samples: int,
        time: int,
        session_id: int,
        span_id: int,
    ) -> None:
        state.observed = observed
        state.samples = samples
        if samples < self.min_samples:
            return
        if observed > state.budget.limit:
            if not state.currently_breached:
                state.currently_breached = True
                state.tripped = True
                state.violations += 1
                violation = SloViolation(
                    metric=state.budget.metric,
                    limit=state.budget.limit,
                    observed=observed,
                    time=time,
                    session_id=session_id,
                    span_id=span_id,
                    detail=f"crossed after {samples} samples",
                )
                if len(self.violations) < self.max_violations:
                    self.violations.append(violation)
                else:
                    self.dropped_violations += 1
        else:
            state.currently_breached = False

    # ----- reporting ---------------------------------------------------------

    def state(self) -> List[Dict[str, Any]]:
        """JSON-safe live state of every budget (for health snapshots)."""
        return [
            {
                "metric": state.budget.metric,
                "limit": state.budget.limit,
                "observed": state.observed,
                "samples": state.samples,
                "min_samples": self.min_samples,
                "breached": state.tripped,
                "currently_breached": state.currently_breached,
                "violations": state.violations,
            }
            for state in self._states
        ]

    def violation_dicts(self) -> List[Dict[str, Any]]:
        """JSON-safe records of the retained violations."""
        return [v.to_dict() for v in self.violations]

    def violating_sessions(self) -> List[int]:
        """Distinct session ids named by violations, in breach order."""
        seen: Dict[int, None] = {}
        for violation in self.violations:
            if violation.session_id != -1:
                seen.setdefault(violation.session_id)
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"SloEngine(budgets={len(self._states)}, "
            f"violations={len(self.violations)}, breached={self.breached})"
        )


def parse_budgets(texts: Sequence[str]) -> List[SloBudget]:
    """Parse several ``metric=limit`` declarations (CLI helper)."""
    return [SloBudget.parse(text) for text in texts]
