"""The flight recorder: bounded, typed, zero-cost-when-disabled telemetry.

One :class:`FlightRecorder` serves a whole simulation (all routers share
it).  It owns three stores, each with fixed memory:

* a typed trace buffer of flit-lifecycle / connection / round events —
  compact tuples, no string formatting on the hot path (unlike the debug
  :class:`~repro.sim.trace.Tracer` it supersedes for production use);
* a :class:`~repro.obs.timeseries.TelemetryHub` of ring-buffered time
  series, fed per round boundary by :meth:`sample_round` — link
  utilisation, CBR cycles consumed vs reserved, VBR permanent/excess
  grants, candidate-set sizes, VC occupancy, switch grants, fast-forward
  ratio;
* a :class:`~repro.obs.kernel.KernelProfiler` installed into the
  simulator while the recorder is enabled.

Every emission site is guarded by the ``enabled`` flag at the call site
(``if recorder.enabled: ...``), so a disabled recorder costs one
attribute read and branch — the perf gate holds that under 2% on the
gated scenarios.  :data:`NULL_RECORDER` is the permanently disabled
default routers hold when no recorder is wired in.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from .kernel import KernelProfiler
from .manifest import build_manifest
from .spans import DEFAULT_SPAN_CAPACITY, SpanTracer
from .timeseries import TelemetryHub
from .trace_export import (
    CONN_CLOSE,
    CONN_OPEN,
    CUTTHROUGH,
    DELIVER,
    GRANT,
    INJECT,
    ROUND,
    TraceEvent,
    to_chrome_trace,
)

#: Default trace buffer capacity (events).  Six-int tuples: ~100 bytes
#: each, so the default bounds the buffer around 20 MB.
DEFAULT_TRACE_CAPACITY = 200_000


class FlightRecorder:
    """Router-wide observability: typed trace + windowed telemetry."""

    #: Class-level fallback so recorders unpickled from checkpoints that
    #: predate window-staleness tracking restore with a valid epoch.
    _stale_epoch = 0

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        telemetry_capacity: int = 1024,
        manifest: Optional[Mapping[str, Any]] = None,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = True
        self.capacity = capacity
        self.dropped = 0
        self.events: List[TraceEvent] = []
        self.telemetry = TelemetryHub(telemetry_capacity)
        #: Control-plane span tracer (session/setup/hop/teardown trees);
        #: emission sites guard on ``enabled`` like the flit trace.
        self.spans = SpanTracer(span_capacity)
        self.manifest: Dict[str, Any] = (
            dict(manifest) if manifest is not None else build_manifest()
        )
        self.profiler = KernelProfiler()
        self._sim = None
        # Per-router previous counter values for windowed deltas, plus
        # the staleness epoch: bumped while telemetry sampling is off so
        # windows whose stored epoch lags are re-baselined (not sampled)
        # at their first boundary after re-enable.
        self._windows: Dict[str, Dict[str, float]] = {}
        self._stale_epoch = 0
        self._last_kernel_sample = -1

    # ----- lifecycle ---------------------------------------------------------

    def attach(self, sim) -> None:
        """Bind to a simulator: installs the kernel profiler while enabled."""
        self._sim = sim
        if self.enabled:
            sim.set_profiler(self.profiler)

    def set_enabled(self, enabled: bool) -> None:
        """Turn recording on or off, including the kernel profiler."""
        self.enabled = enabled
        if self._sim is not None:
            self._sim.set_profiler(self.profiler if enabled else None)

    def clear(self) -> None:
        """Discard buffered events, telemetry and profile (warm-up reset)."""
        self.events.clear()
        self.dropped = 0
        self.telemetry.clear()
        self.spans.clear()
        self._windows.clear()
        self._last_kernel_sample = -1
        self.profiler = KernelProfiler()
        if self._sim is not None and self.enabled:
            self._sim.set_profiler(self.profiler)

    # ----- typed trace emission (call sites guard on .enabled) ---------------

    def _append(self, event: TraceEvent) -> None:
        events = self.events
        if len(events) >= self.capacity:
            self.dropped += 1
            return
        events.append(event)

    def flit_inject(
        self, time: int, port: int, vc: int, connection_id: int, flit_id: int
    ) -> None:
        """A flit entered an input virtual channel."""
        self._append((INJECT, time, port, vc, connection_id, flit_id))

    def flit_grant(
        self, time: int, port: int, vc: int, connection_id: int, flit_id: int
    ) -> None:
        """The switch scheduler granted this flit its crossbar slot."""
        self._append((GRANT, time, port, vc, connection_id, flit_id))

    def flit_deliver(
        self,
        time: int,
        output_port: int,
        delay_cycles: int,
        connection_id: int,
        flit_id: int,
    ) -> None:
        """A flit left through an output port after ``delay_cycles``."""
        self._append((DELIVER, time, output_port, delay_cycles, connection_id, flit_id))

    def cut_through(
        self,
        time: int,
        input_port: int,
        output_port: int,
        connection_id: int,
        flit_id: int,
    ) -> None:
        """A control flit bypassed synchronous scheduling (§3.4)."""
        self._append((CUTTHROUGH, time, input_port, output_port, connection_id, flit_id))

    def connection_open(
        self, time: int, connection_id: int, input_port: int, vc: int
    ) -> None:
        """A connection was admitted and bound to an input VC."""
        self._append((CONN_OPEN, time, input_port, vc, connection_id, -1))

    def connection_close(
        self, time: int, connection_id: int, input_port: int, vc: int
    ) -> None:
        """A connection was torn down."""
        self._append((CONN_CLOSE, time, input_port, vc, connection_id, -1))

    # ----- windowed telemetry -------------------------------------------------

    def sample(self, name: str, time: float, value: float) -> None:
        """Publish one sample into telemetry channel ``name``."""
        self.telemetry.sample(name, time, value)

    def sample_round(self, router, cycle: int) -> None:
        """Sample a router's per-round window at a round boundary.

        Called by the router *before* its link schedulers reset their
        round accounting, so CBR/VBR consumed-vs-reserved totals reflect
        the round being closed.  Robust to ``reset_statistics``: a window
        whose counters went backwards re-baselines instead of sampling.
        """
        self._append((ROUND, cycle, 0, 0, -1, -1))
        # Single-flag early-out: with channel sampling off, a round
        # boundary costs one boolean test (plus an int bump) instead of
        # walking every link scheduler's window counters.  The bump
        # invalidates every router's window baseline so a later
        # ``TelemetryHub.set_enabled(True)`` re-baselines per router
        # instead of lumping the whole disabled span into one delta.
        if not self.telemetry.enabled:
            self._stale_epoch += 1
            return
        scalars = router.stats.scalars
        cycles = scalars.get("cycles", 0.0)
        flits = scalars.get("flits_switched", 0.0)
        candidates = 0.0
        eligible = 0.0
        busy_cycles = 0.0
        vbr_permanent = 0.0
        vbr_excess = 0.0
        for scheduler in router.link_schedulers:
            candidates += scheduler.candidates_offered
            eligible += scheduler.eligible_vcs_total
            busy_cycles += scheduler.cycles_with_candidates
            vbr_permanent += scheduler.vbr_permanent_grants
            vbr_excess += scheduler.vbr_excess_grants
        switch = router.switch_scheduler
        grants = switch.grants_issued
        window = self._windows.get(router.name)
        if window is None:
            window = self._windows[router.name] = {}
        # This router's first boundary after a disabled span: refresh the
        # window baselines (the unconditional stores below) but emit
        # nothing, so the next sample's deltas cover exactly one round.
        stale = window.get("epoch", 0) != self._stale_epoch
        prev_cycles = window.get("cycles", 0.0)
        delta_cycles = cycles - prev_cycles
        if delta_cycles > 0 and not stale:
            prefix = router.name
            hub = self.telemetry
            num_ports = router.config.num_ports
            hub.sample(
                f"{prefix}.link_utilisation",
                cycle,
                (flits - window.get("flits", 0.0)) / (delta_cycles * num_ports),
            )
            delta_busy = busy_cycles - window.get("busy_cycles", 0.0)
            if delta_busy > 0:
                hub.sample(
                    f"{prefix}.candidate_set_size",
                    cycle,
                    (candidates - window.get("candidates", 0.0)) / delta_busy,
                )
                # Eligible set before candidate truncation — how much the
                # fused mask scan has to look at per busy cycle.
                hub.sample(
                    f"{prefix}.eligible_set_size",
                    cycle,
                    (eligible - window.get("eligible", 0.0)) / delta_busy,
                )
            hub.sample(
                f"{prefix}.vbr_permanent_grants",
                cycle,
                vbr_permanent - window.get("vbr_permanent", 0.0),
            )
            hub.sample(
                f"{prefix}.vbr_excess_grants",
                cycle,
                vbr_excess - window.get("vbr_excess", 0.0),
            )
            hub.sample(
                f"{prefix}.switch_grants",
                cycle,
                grants - window.get("grants", 0.0),
            )
            hub.sample(f"{prefix}.vc_occupancy", cycle, router.buffered_flits())
            consumed = 0.0
            reserved = 0.0
            for port in router.input_ports:
                for vc_index in port.status.vector("cbr_service_requested").indices():
                    vc = port.vcs[vc_index]
                    consumed += vc.serviced_this_round
                    reserved += vc.allocated_cycles
            hub.sample(f"{prefix}.cbr_cycles_consumed", cycle, consumed)
            hub.sample(f"{prefix}.cbr_cycles_reserved", cycle, reserved)
        window["epoch"] = self._stale_epoch
        window["cycles"] = cycles
        window["flits"] = flits
        window["candidates"] = candidates
        window["eligible"] = eligible
        window["busy_cycles"] = busy_cycles
        window["vbr_permanent"] = vbr_permanent
        window["vbr_excess"] = vbr_excess
        window["grants"] = grants
        if self._sim is not None and cycle != self._last_kernel_sample:
            self._last_kernel_sample = cycle
            sim = self._sim
            if sim.now > 0:
                self.telemetry.sample(
                    "kernel.fast_forward_ratio",
                    cycle,
                    sim.fast_forwarded_cycles / sim.now,
                )

    # ----- export -------------------------------------------------------------

    def kernel_snapshot(self) -> Dict[str, Any]:
        """The kernel profile, plus simulator totals when attached."""
        snapshot = self.profiler.snapshot()
        if self._sim is not None:
            snapshot["sim_now"] = self._sim.now
            snapshot["sim_fast_forwarded_cycles"] = self._sim.fast_forwarded_cycles
        return snapshot

    def chrome_trace(self, us_per_cycle: float = 1.0) -> Dict[str, Any]:
        """The buffered events + telemetry + spans as Chrome trace JSON.

        Control-plane spans ride on pid 2 alongside the flit lifecycle
        tracks, so one Perfetto load shows both planes on one timeline.
        """
        return to_chrome_trace(
            self.events,
            manifest=self.manifest,
            telemetry=self.telemetry.snapshot(),
            us_per_cycle=us_per_cycle,
            span_events=self.spans.to_trace_events(us_per_cycle),
        )

    def dropped_summary(self) -> Dict[str, Any]:
        """Where samples were lost: trace buffer, span store, each ring.

        ``channels`` only lists rings that actually dropped, so an empty
        dict there (and zero totals) certifies nothing was truncated.
        """
        channels = self.telemetry.dropped_by_channel()
        return {
            "trace": self.dropped,
            "spans": self.spans.dropped,
            "channels": channels,
            "total": self.dropped + self.spans.dropped + sum(channels.values()),
        }

    def export(self) -> Dict[str, Any]:
        """One self-describing JSON-safe record of everything recorded."""
        return {
            "manifest": self.manifest,
            "telemetry": self.telemetry.snapshot(),
            "kernel": self.kernel_snapshot(),
            "trace": self.chrome_trace(),
            "trace_events": len(self.events),
            "trace_dropped": self.dropped,
            "spans": self.spans.to_dicts(),
            "span_count": len(self.spans),
            "spans_open": self.spans.open_count,
            "spans_dropped": self.spans.dropped,
            "dropped": self.dropped_summary(),
        }


class NullFlightRecorder(FlightRecorder):
    """Permanently disabled recorder: the router's default collaborator.

    ``enabled`` is False so guarded call sites never reach the methods;
    the methods are no-ops anyway so an unguarded (cold-path) call is
    still harmless and allocation-free.
    """

    def __init__(self) -> None:
        super().__init__(capacity=1)
        self.enabled = False

    def set_enabled(self, enabled: bool) -> None:
        if enabled:
            raise RuntimeError(
                "NULL_RECORDER cannot be enabled; construct a FlightRecorder"
            )

    def _append(self, event: TraceEvent) -> None:
        pass

    def sample(self, name: str, time: float, value: float) -> None:
        pass

    def sample_round(self, router, cycle: int) -> None:
        pass

    def __reduce__(self):
        # Checkpoints must not clone the shared singleton: every router in
        # a restored graph should hold the same NULL_RECORDER the module
        # exports, exactly like a freshly built one.
        return (_null_recorder, ())


def _null_recorder() -> "NullFlightRecorder":
    return NULL_RECORDER


#: Shared disabled recorder (stateless — every router may hold it).
NULL_RECORDER = NullFlightRecorder()
