"""Run-health snapshots: periodic JSON state of a live run.

A long churn run (or a sweep point on a preemptible worker) should leave
a machine-readable trail of how healthy it was *while it ran* — not just
a summary after the fact.  A **health snapshot** is one JSON-safe record
of the observable state at a cycle:

* per-channel telemetry aggregates (count / mean / min / max / last)
  plus how many samples each ring dropped — truncated rings cannot
  silently skew a dashboard built from these;
* span-tracer occupancy (retained / open / dropped);
* live SLO budget state and the violation count so far;
* workload-specific extras (active sessions, blocked count, ...).

:class:`HealthWriter` appends snapshots as JSON Lines during a run, so a
crashed run's trail survives up to its last heartbeat.
:func:`merge_health` rolls per-point snapshots up into one record for a
whole sweep — a 64-point grid gets one health page.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

HEALTH_SCHEMA = "health/1"
ROLLUP_SCHEMA = "health-rollup/1"


def build_health_snapshot(
    cycle: int,
    recorder=None,
    slo=None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """One JSON-safe health record of the current run state.

    ``recorder`` is a :class:`~repro.obs.recorder.FlightRecorder` (or
    None when telemetry is off), ``slo`` an
    :class:`~repro.obs.slo.SloEngine` (or None when no budgets are
    declared).  Either side being absent still yields a valid snapshot.
    """
    channels: Dict[str, Dict[str, Any]] = {}
    dropped: Dict[str, Any] = {"trace": 0, "spans": 0, "telemetry": 0}
    spans: Dict[str, int] = {"recorded": 0, "open": 0, "dropped": 0}
    if recorder is not None:
        telemetry_dropped = 0
        for name, series in sorted(recorder.telemetry.snapshot().items()):
            samples = series.get("samples") or []
            channels[name] = {
                "count": series.get("count", 0),
                "mean": series.get("mean", 0.0),
                "min": series.get("min"),
                "max": series.get("max"),
                "dropped": series.get("dropped", 0),
                "last": samples[-1][1] if samples else None,
            }
            telemetry_dropped += int(series.get("dropped", 0))
        dropped = {
            "trace": recorder.dropped,
            "spans": recorder.spans.dropped,
            "telemetry": telemetry_dropped,
        }
        spans = {
            "recorded": len(recorder.spans),
            "open": recorder.spans.open_count,
            "dropped": recorder.spans.dropped,
        }
    snapshot: Dict[str, Any] = {
        "schema": HEALTH_SCHEMA,
        "cycle": cycle,
        "channels": channels,
        "dropped": dropped,
        "spans": spans,
        "slo": slo.state() if slo is not None else [],
        "slo_violations": len(slo.violations) if slo is not None else 0,
        "slo_breached": bool(slo.breached) if slo is not None else False,
        # The most recent typed records (bounded so the JSONL trail stays
        # small); the run result carries the full retained list.
        "violations": (
            [v.to_dict() for v in slo.violations[-32:]]
            if slo is not None
            else []
        ),
    }
    if extra:
        snapshot["extra"] = dict(extra)
    return snapshot


def dropped_total(snapshot: Mapping[str, Any]) -> int:
    """Samples lost anywhere (trace buffer, span store, telemetry rings)."""
    dropped = snapshot.get("dropped") or {}
    return int(
        dropped.get("trace", 0)
        + dropped.get("spans", 0)
        + dropped.get("telemetry", 0)
    )


class HealthWriter:
    """Appends health snapshots to a JSON Lines file during a run.

    Plain data (a path string and a counter), so a checkpointed workload
    carrying one pickles and resumes; the resumed run keeps appending to
    the same trail.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self.written = 0

    def write(self, snapshot: Mapping[str, Any]) -> None:
        """Append one snapshot line (parent directory created lazily)."""
        path = Path(self.path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as stream:
            json.dump(snapshot, stream, sort_keys=True)
            stream.write("\n")
        self.written += 1


def read_health(path) -> List[Dict[str, Any]]:
    """Load a health trail (JSON Lines, or a single JSON object/array)."""
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    if text.startswith("["):
        payload = json.loads(text)
        return list(payload)
    snapshots = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            snapshots.append(json.loads(line))
    return snapshots


def merge_health(
    points: Sequence[Tuple[str, Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Roll per-point snapshots up into one sweep-level health record.

    ``points`` is ``[(label, snapshot), ...]`` — one (latest) snapshot
    per sweep point.  The rollup aggregates SLO pass/fail across the
    grid and totals every dropped-sample counter, so one record answers
    "is the whole sweep healthy and can I trust its dashboards".
    """
    rollup_points: List[Dict[str, Any]] = []
    breached_points: List[str] = []
    dropped_points: List[str] = []
    total_violations = 0
    total_dropped = 0
    for label, snapshot in points:
        violations = int(snapshot.get("slo_violations", 0))
        breached = bool(snapshot.get("slo_breached", False))
        lost = dropped_total(snapshot)
        if breached:
            breached_points.append(label)
        if lost:
            dropped_points.append(label)
        total_violations += violations
        total_dropped += lost
        rollup_points.append(
            {
                "label": label,
                "cycle": snapshot.get("cycle"),
                "slo_breached": breached,
                "slo_violations": violations,
                "dropped": lost,
                "slo": snapshot.get("slo", []),
                "extra": snapshot.get("extra", {}),
            }
        )
    return {
        "schema": ROLLUP_SCHEMA,
        "points": rollup_points,
        "point_count": len(rollup_points),
        "breached_points": breached_points,
        "dropped_sample_points": dropped_points,
        "total_violations": total_violations,
        "total_dropped": total_dropped,
        "ok": not breached_points,
    }
