"""Self-contained HTML run-health dashboard (no external assets).

``repro report`` renders one file a browser opens offline: per-channel
sparklines from the flight-recorder export, the SLO pass/fail table and
violation log from the health trail, and the top-k worst sessions with
their span trees.  A sweep-level rollup page renders one row per point
from a ``health-rollup/1`` record.

Rendering rules follow the repo's charting conventions: marks carry the
(single) series hue, text wears text tokens, status is never color alone
(every state ships an icon + word), gridlines are recessive hairlines,
and dark mode is a selected palette (CSS custom properties under
``prefers-color-scheme``), not an automatic inversion.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .health import dropped_total

#: Sparkline geometry (px).
_SPARK_W = 220
_SPARK_H = 48
_SPARK_PAD = 6

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb;
  --page: #f9f9f7;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series: #2a78d6;
  --good: #0ca30c;
  --good-text: #006300;
  --critical: #d03b3b;
  --warning: #fab219;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19;
    --page: #0d0d0d;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series: #3987e5;
    --good: #0ca30c;
    --good-text: #0ca30c;
    --critical: #d03b3b;
    --warning: #fab219;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--ink);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px;
  line-height: 1.45;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.subtitle { color: var(--ink-2); margin: 0 0 20px; }
.hero {
  display: inline-flex;
  align-items: baseline;
  gap: 12px;
  background: var(--surface);
  border: 1px solid var(--border);
  border-radius: 10px;
  padding: 14px 20px;
  margin: 0 0 8px;
}
.hero .big { font-size: 48px; font-weight: 600; }
.hero .big.pass { color: var(--good-text); }
.hero .big.fail { color: var(--critical); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 12px 0 0; }
.tile {
  background: var(--surface);
  border: 1px solid var(--border);
  border-radius: 10px;
  padding: 10px 16px;
  min-width: 130px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .note { color: var(--muted); font-size: 12px; }
table {
  border-collapse: collapse;
  background: var(--surface);
  border: 1px solid var(--border);
  border-radius: 10px;
  overflow: hidden;
}
th, td {
  text-align: left;
  padding: 6px 14px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
tr:last-child td { border-bottom: none; }
.status-ok { color: var(--good-text); }
.status-bad { color: var(--critical); }
.status-warn { color: var(--ink-2); }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card {
  background: var(--surface);
  border: 1px solid var(--border);
  border-radius: 10px;
  padding: 10px 12px;
}
.card .name { font-size: 12px; color: var(--ink-2); margin-bottom: 4px; }
.card .last { font-weight: 600; }
.card .range { color: var(--muted); font-size: 11px; }
details { margin: 6px 0; }
summary { cursor: pointer; color: var(--ink-2); }
.spantree { margin: 6px 0 6px 18px; color: var(--ink-2); font-size: 13px; }
.spantree .dur { font-variant-numeric: tabular-nums; color: var(--ink); }
.mono { font-variant-numeric: tabular-nums; }
footer { margin-top: 32px; color: var(--muted); font-size: 12px; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value))


def _fmt(value: Any) -> str:
    """Compact numeric formatting for table cells and tiles."""
    if value is None:
        return "–"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return _esc(value)


def sparkline_svg(
    samples: Sequence[Tuple[float, float]],
    width: int = _SPARK_W,
    height: int = _SPARK_H,
) -> str:
    """Inline SVG sparkline: 2px series line, ringed end-dot, baseline.

    ``samples`` is ``[(time, value), ...]`` in time order.  Each point
    carries a native tooltip (an oversized transparent hit circle with a
    ``<title>``), so the hover layer needs no scripting.
    """
    if not samples:
        return (
            f'<svg width="{width}" height="{height}" role="img" '
            f'aria-label="no samples"></svg>'
        )
    pad = _SPARK_PAD
    xs = [float(t) for t, _ in samples]
    ys = [float(v) for _, v in samples]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    inner_w = width - 2 * pad
    inner_h = height - 2 * pad

    def px(t: float) -> float:
        return pad + (t - x_lo) / x_span * inner_w

    def py(v: float) -> float:
        return pad + (1.0 - (v - y_lo) / y_span) * inner_h

    points = " ".join(f"{px(t):.1f},{py(v):.1f}" for t, v in zip(xs, ys))
    hover = "".join(
        f'<circle cx="{px(t):.1f}" cy="{py(v):.1f}" r="7" fill="transparent">'
        f"<title>cycle {t:g}: {v:g}</title></circle>"
        for t, v in zip(xs, ys)
    )
    end_x, end_y = px(xs[-1]), py(ys[-1])
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="sparkline, last value {ys[-1]:g}">'
        # recessive baseline
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="var(--baseline)" stroke-width="1"/>'
        f'<polyline points="{points}" fill="none" stroke="var(--series)" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        # end-dot with a surface ring so it survives crossing the line
        f'<circle cx="{end_x:.1f}" cy="{end_y:.1f}" r="6" '
        f'fill="var(--surface)"/>'
        f'<circle cx="{end_x:.1f}" cy="{end_y:.1f}" r="4" '
        f'fill="var(--series)"/>'
        f"{hover}</svg>"
    )


def _status_cell(ok: bool, ok_word: str = "pass", bad_word: str = "breached") -> str:
    """Status is icon + word, never color alone."""
    if ok:
        return f'<span class="status-ok">✓ {ok_word}</span>'
    return f'<span class="status-bad">✗ {bad_word}</span>'


def _slo_table(slo_state: Sequence[Mapping[str, Any]]) -> str:
    if not slo_state:
        return '<p class="subtitle">No SLO budgets declared.</p>'
    rows = []
    for state in slo_state:
        ok = not state.get("breached", False)
        rows.append(
            "<tr>"
            f"<td>{_esc(state.get('metric'))}</td>"
            f"<td>{_fmt(state.get('limit'))}</td>"
            f"<td>{_fmt(state.get('observed'))}</td>"
            f"<td>{_fmt(state.get('samples'))}</td>"
            f"<td>{_fmt(state.get('violations'))}</td>"
            f"<td>{_status_cell(ok)}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>budget</th><th>limit</th><th>observed</th>"
        "<th>samples</th><th>violations</th><th>status</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _violations_table(violations: Sequence[Mapping[str, Any]]) -> str:
    if not violations:
        return ""
    rows = []
    for v in violations:
        rows.append(
            "<tr>"
            f"<td>{_esc(v.get('metric'))}</td>"
            f"<td>{_fmt(v.get('observed'))}</td>"
            f"<td>{_fmt(v.get('limit'))}</td>"
            f"<td>{_fmt(v.get('time'))}</td>"
            f"<td>{_fmt(v.get('session_id'))}</td>"
            f"<td>{_fmt(v.get('span_id'))}</td>"
            "</tr>"
        )
    return (
        "<h2>SLO violations</h2>"
        "<table><thead><tr><th>budget</th><th>observed</th><th>limit</th>"
        "<th>cycle</th><th>session</th><th>span</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _channel_series_from_health(
    health: Sequence[Mapping[str, Any]],
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-channel ``last``-value series across the snapshot trail."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for snapshot in health:
        cycle = float(snapshot.get("cycle", 0))
        for name, channel in (snapshot.get("channels") or {}).items():
            last = channel.get("last")
            if last is not None:
                series.setdefault(name, []).append((cycle, float(last)))
    return series


def _channel_cards(
    channels: Mapping[str, Sequence[Tuple[float, float]]],
    channel_meta: Mapping[str, Mapping[str, Any]],
) -> str:
    if not channels:
        return '<p class="subtitle">No telemetry channels recorded.</p>'

    def sort_key(name: str) -> Tuple[int, str]:
        # Workload and kernel aggregates lead; per-router lanes follow.
        if name.startswith("churn."):
            return (0, name)
        if name.startswith("kernel."):
            return (1, name)
        return (2, name)

    cards = []
    for name in sorted(channels, key=sort_key):
        samples = list(channels[name])
        meta = channel_meta.get(name, {})
        dropped = int(meta.get("dropped", 0))
        last = samples[-1][1] if samples else None
        lo = min((v for _, v in samples), default=0.0)
        hi = max((v for _, v in samples), default=0.0)
        note = (
            f'<span class="status-bad"> ⚠ {dropped:,} dropped</span>'
            if dropped
            else ""
        )
        cards.append(
            '<div class="card">'
            f'<div class="name">{_esc(name)}{note}</div>'
            f"{sparkline_svg(samples)}"
            f'<div class="last">{_fmt(last)}</div>'
            f'<div class="range">min {_fmt(lo)} · max {_fmt(hi)} · '
            f"{len(samples):,} pts</div>"
            "</div>"
        )
    return f'<div class="cards">{"".join(cards)}</div>'


def _span_tree(
    spans_by_id: Mapping[int, Mapping[str, Any]],
    children: Mapping[int, List[int]],
    span_id: int,
    depth: int = 0,
) -> str:
    span = spans_by_id.get(span_id)
    if span is None or depth > 6:
        return ""
    kids = "".join(
        _span_tree(spans_by_id, children, child, depth + 1)
        for child in children.get(span_id, [])
    )
    return (
        '<div class="spantree">'
        f'<span class="dur">{_fmt(span.get("duration"))} cy</span> '
        f'{_esc(span.get("name"))} <span class="mono">#{span.get("span")}</span> '
        f'({_esc(span.get("status"))})'
        f"{kids}</div>"
    )


def _worst_sessions(spans: Sequence[Mapping[str, Any]], k: int = 10) -> str:
    """Top-``k`` slowest setups with their full session span trees."""
    if not spans:
        return ""
    spans_by_id: Dict[int, Mapping[str, Any]] = {}
    children: Dict[int, List[int]] = {}
    for span in spans:
        spans_by_id[int(span["span"])] = span
        parent = int(span.get("parent", 0))
        if parent:
            children.setdefault(parent, []).append(int(span["span"]))
    setups = [
        s
        for s in spans
        if s.get("category") == "setup" and int(s.get("end", -1)) >= 0
    ]
    if not setups:
        return ""
    setups.sort(key=lambda s: (-int(s.get("duration", 0)), int(s["span"])))
    rows = []
    for setup in setups[:k]:
        args = setup.get("args") or {}
        session_id = args.get("session", "?")
        parent = int(setup.get("parent", 0))
        tree = _span_tree(spans_by_id, children, parent or int(setup["span"]))
        rows.append(
            "<tr>"
            f"<td>{_fmt(session_id)}</td>"
            f"<td>{_fmt(setup.get('duration'))}</td>"
            f"<td>{_fmt(args.get('backtracks'))}</td>"
            f"<td>{_status_cell(setup.get('status') == 'ok', 'ok', _esc(setup.get('status')))}</td>"
            f"<td><details><summary>span #{setup['span']}</summary>{tree}</details></td>"
            "</tr>"
        )
    return (
        f"<h2>Slowest setups (top {min(k, len(setups))} of {len(setups):,})</h2>"
        "<table><thead><tr><th>session</th><th>setup cycles</th>"
        "<th>backtracks</th><th>status</th><th>span tree</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _dropped_banner(snapshot: Mapping[str, Any]) -> str:
    lost = dropped_total(snapshot)
    if not lost:
        return ""
    dropped = snapshot.get("dropped") or {}
    return (
        '<p class="status-bad">⚠ '
        f"{lost:,} samples dropped (trace {_fmt(dropped.get('trace', 0))}, "
        f"spans {_fmt(dropped.get('spans', 0))}, telemetry "
        f"{_fmt(dropped.get('telemetry', 0))}) — aggregates remain exact; "
        "retained windows are truncated.</p>"
    )


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>{body}"
        "<footer>Self-contained report — no external assets; open offline."
        "</footer></body></html>"
    )


def render_report(
    health: Sequence[Mapping[str, Any]],
    export: Optional[Mapping[str, Any]] = None,
    title: str = "Run health",
) -> str:
    """Render the single-run dashboard HTML.

    ``health`` is the snapshot trail (may be a single final snapshot);
    ``export`` the :meth:`FlightRecorder.export` payload, which upgrades
    the sparklines to full-resolution telemetry windows and adds the
    worst-session span trees.
    """
    last: Mapping[str, Any] = health[-1] if health else {}
    slo_state = last.get("slo") or []
    breached = bool(last.get("slo_breached", False))
    extra = last.get("extra") or {}

    # Channel series: prefer the export's full-resolution ring windows,
    # fall back to last-value-per-heartbeat from the health trail.
    channel_meta: Dict[str, Mapping[str, Any]] = {}
    channels: Dict[str, List[Tuple[float, float]]] = {}
    if export and export.get("telemetry"):
        for name, series in export["telemetry"].items():
            channel_meta[name] = series
            channels[name] = [
                (float(t), float(v)) for t, v in series.get("samples", [])
            ]
    else:
        channels = _channel_series_from_health(health)
        channel_meta = last.get("channels") or {}

    if slo_state:
        hero_class = "fail" if breached else "pass"
        hero_word = "✗ SLO breached" if breached else "✓ SLO pass"
    else:
        hero_class = "pass"
        hero_word = "run complete"
    tiles = []
    for label, key in (
        ("Sessions established", "established"),
        ("Blocked", "blocked"),
        ("Torn down", "torn_down"),
        ("Active at end", "active_sessions"),
        ("Blocking probability", "blocking_probability"),
        ("Setup p99 (cycles)", "setup_p99"),
    ):
        if key in extra:
            tiles.append(
                '<div class="tile">'
                f'<div class="label">{label}</div>'
                f'<div class="value">{_fmt(extra[key])}</div></div>'
            )
    spans_info = last.get("spans") or {}
    if spans_info:
        tiles.append(
            '<div class="tile"><div class="label">Spans recorded</div>'
            f'<div class="value">{_fmt(spans_info.get("recorded"))}</div>'
            f'<div class="note">{_fmt(spans_info.get("open"))} open · '
            f'{_fmt(spans_info.get("dropped"))} dropped</div></div>'
        )

    body = (
        f"<h1>{_esc(title)}</h1>"
        f'<p class="subtitle">cycle {_fmt(last.get("cycle"))} · '
        f"{len(health):,} health snapshots</p>"
        f'<div class="hero"><span class="big {hero_class}">{hero_word}</span>'
        "</div>"
        f"{_dropped_banner(last)}"
        f'<div class="tiles">{"".join(tiles)}</div>'
        "<h2>SLO budgets</h2>"
        f"{_slo_table(slo_state)}"
        f"{_violations_table(last.get('violations') or [])}"
        "<h2>Telemetry channels</h2>"
        f"{_channel_cards(channels, channel_meta)}"
        f"{_worst_sessions((export or {}).get('spans') or [])}"
    )
    return _page(title, body)


def render_rollup(rollup: Mapping[str, Any], title: str = "Sweep health") -> str:
    """Render the sweep-level rollup page from a ``health-rollup/1`` record."""
    ok = bool(rollup.get("ok", True))
    rows = []
    for point in rollup.get("points", []):
        extra = point.get("extra") or {}
        rows.append(
            "<tr>"
            f"<td>{_esc(point.get('label'))}</td>"
            f"<td>{_fmt(point.get('cycle'))}</td>"
            f"<td>{_fmt(extra.get('established'))}</td>"
            f"<td>{_fmt(extra.get('blocked'))}</td>"
            f"<td>{_fmt(point.get('slo_violations'))}</td>"
            f"<td>{_fmt(point.get('dropped'))}</td>"
            f"<td>{_status_cell(not point.get('slo_breached', False))}</td>"
            "</tr>"
        )
    hero_class = "pass" if ok else "fail"
    hero_word = "✓ all points pass" if ok else "✗ SLO breached"
    breached = rollup.get("breached_points") or []
    breached_note = (
        f'<p class="status-bad">Breached points: '
        f"{_esc(', '.join(map(str, breached)))}</p>"
        if breached
        else ""
    )
    body = (
        f"<h1>{_esc(title)}</h1>"
        f'<p class="subtitle">{_fmt(rollup.get("point_count"))} sweep points · '
        f"{_fmt(rollup.get('total_violations'))} violations · "
        f"{_fmt(rollup.get('total_dropped'))} dropped samples</p>"
        f'<div class="hero"><span class="big {hero_class}">{hero_word}</span>'
        "</div>"
        f"{breached_note}"
        "<h2>Per-point health</h2>"
        "<table><thead><tr><th>point</th><th>cycle</th><th>established</th>"
        "<th>blocked</th><th>violations</th><th>dropped</th><th>SLO</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )
    return _page(title, body)
