"""Chrome trace-event export: flit lifecycles as Perfetto-loadable JSON.

The flight recorder stores lifecycle events as compact typed tuples
(``(kind, time, a, b, connection_id, flit_id)`` — no string formatting on
the hot path); this module turns them into the Chrome trace-event JSON
object format that ``ui.perfetto.dev`` and ``chrome://tracing`` load
directly:

* each delivered flit becomes an async span (``ph: "b"``/``"e"``) from
  injection to delivery on its input-port track, so a loaded router shows
  as stacked per-port lanes of flit lifetimes;
* inject / grant / deliver (and cut-through) become instant events
  (``ph: "i"``) carrying the flit and connection ids in ``args``;
* connection open/close and round boundaries become instant events on a
  control track;
* telemetry channels become counter events (``ph: "C"``), which Perfetto
  renders as time-series tracks alongside the spans;
* the run manifest rides in the top-level ``metadata`` object.

Timestamps are emitted in microseconds (``ts``), converted from flit
cycles via the configured cycle time — by default 1 cycle = 1 µs so
cycle numbers stay readable in the UI.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

# ----- typed event kinds (stored, not stringly) -----------------------------

INJECT = 0
GRANT = 1
DELIVER = 2
CUTTHROUGH = 3
CONN_OPEN = 4
CONN_CLOSE = 5
ROUND = 6

KIND_NAMES = {
    INJECT: "inject",
    GRANT: "grant",
    DELIVER: "deliver",
    CUTTHROUGH: "cutthrough",
    CONN_OPEN: "connection_open",
    CONN_CLOSE: "connection_close",
    ROUND: "round",
}

#: One recorded lifecycle event.  ``a``/``b`` are kind-specific small ints
#: (ports, VC indices, delays); -1 means not applicable.
TraceEvent = Tuple[int, int, int, int, int, int]

#: Chrome trace-event phases this exporter emits / the validator accepts.
KNOWN_PHASES = frozenset("XBEbeiCM")

_LIFECYCLE_KINDS = (INJECT, GRANT, DELIVER, CUTTHROUGH)

#: Synthetic pid for the router process in the trace.
_ROUTER_PID = 1
#: tid used for the control track (connections, rounds).
_CONTROL_TID = 1000
#: tid used for counter tracks.
_COUNTER_TID = 0


def _instant(
    name: str, ts: float, tid: int, args: Dict[str, Any]
) -> Dict[str, Any]:
    return {
        "name": name,
        "cat": "lifecycle",
        "ph": "i",
        "ts": ts,
        "pid": _ROUTER_PID,
        "tid": tid,
        "s": "t",
        "args": args,
    }


def to_chrome_trace(
    events: Iterable[TraceEvent],
    manifest: Optional[Mapping[str, Any]] = None,
    telemetry: Optional[Mapping[str, Mapping[str, Any]]] = None,
    us_per_cycle: float = 1.0,
    span_events: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for ``events``.

    ``telemetry`` is a :meth:`TelemetryHub.snapshot`-shaped mapping whose
    retained samples become counter tracks.  ``span_events`` are
    pre-built trace events (the control-plane span tracks from
    :meth:`SpanTracer.to_trace_events`) appended verbatim, so session
    trees land in the same timeline as the flit lifecycles.  The result
    is JSON-safe and validates under :func:`validate_chrome_trace`.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _ROUTER_PID,
            "tid": 0,
            "args": {"name": "router"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _ROUTER_PID,
            "tid": _CONTROL_TID,
            "args": {"name": "control"},
        },
    ]
    named_ports = set()
    # First injection time per flit, for the async span begin.
    span_begin: Dict[int, Tuple[float, int]] = {}

    for kind, time, a, b, connection_id, flit_id in events:
        ts = time * us_per_cycle
        if kind in _LIFECYCLE_KINDS:
            if a >= 0 and a not in named_ports:
                named_ports.add(a)
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": _ROUTER_PID,
                        "tid": a,
                        "args": {"name": f"port {a}"},
                    }
                )
            args: Dict[str, Any] = {
                "flit": flit_id,
                "connection": connection_id,
            }
            if kind == INJECT:
                args["vc"] = b
                span_begin[flit_id] = (ts, a)
            elif kind == GRANT:
                args["vc"] = b
            elif kind == DELIVER:
                args["output_port"] = a
                args["delay_cycles"] = b
            elif kind == CUTTHROUGH:
                args["output_port"] = b
                # A cut-through flit bypasses the synchronous pipeline, so
                # its span begins here rather than at a prior injection.
                span_begin.setdefault(flit_id, (ts, a))
            tid = a if a >= 0 else _CONTROL_TID
            trace_events.append(_instant(KIND_NAMES[kind], ts, tid, args))
            if kind == DELIVER and flit_id in span_begin:
                begin_ts, begin_tid = span_begin.pop(flit_id)
                span_args = {"connection": connection_id}
                trace_events.append(
                    {
                        "name": f"flit {flit_id}",
                        "cat": "flit",
                        "ph": "b",
                        "id": flit_id,
                        "ts": begin_ts,
                        "pid": _ROUTER_PID,
                        "tid": begin_tid,
                        "args": span_args,
                    }
                )
                trace_events.append(
                    {
                        "name": f"flit {flit_id}",
                        "cat": "flit",
                        "ph": "e",
                        "id": flit_id,
                        "ts": ts,
                        "pid": _ROUTER_PID,
                        "tid": begin_tid,
                        "args": span_args,
                    }
                )
        elif kind in (CONN_OPEN, CONN_CLOSE):
            trace_events.append(
                _instant(
                    KIND_NAMES[kind],
                    ts,
                    _CONTROL_TID,
                    {"connection": connection_id, "port": a, "vc": b},
                )
            )
        elif kind == ROUND:
            trace_events.append(
                _instant("round", ts, _CONTROL_TID, {"cycle": time})
            )
        else:
            raise ValueError(f"unknown trace event kind {kind}")

    if telemetry:
        for name, channel in sorted(telemetry.items()):
            for sample_time, value in channel.get("samples", []):
                trace_events.append(
                    {
                        "name": name,
                        "cat": "telemetry",
                        "ph": "C",
                        "ts": sample_time * us_per_cycle,
                        "pid": _ROUTER_PID,
                        "tid": _COUNTER_TID,
                        "args": {"value": value},
                    }
                )

    if span_events:
        trace_events.extend(span_events)

    payload: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if manifest is not None:
        payload["metadata"] = dict(manifest)
    return payload


def validate_chrome_trace(payload: Any) -> Dict[str, int]:
    """Check ``payload`` against the Chrome trace-event object format.

    Raises ``ValueError`` naming the first violation; returns per-phase
    event counts on success.  This is the schema check the perf gate and
    tests run over exported traces before calling them loadable.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"trace must be a JSON object, got {type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    if "metadata" in payload and not isinstance(payload["metadata"], dict):
        raise ValueError("'metadata' must be an object")
    counts: Dict[str, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in KNOWN_PHASES:
            raise ValueError(f"traceEvents[{i}] has unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{i}] is missing a string 'name'")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"traceEvents[{i}] is missing an integer 'pid'")
        if not isinstance(event.get("tid"), int):
            raise ValueError(f"traceEvents[{i}] is missing an integer 'tid'")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(
                    f"traceEvents[{i}] needs a non-negative numeric 'ts'"
                )
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}] ('X') needs a non-negative 'dur'"
                )
        if phase in "be" and "id" not in event:
            raise ValueError(f"traceEvents[{i}] ('{phase}') needs an 'id'")
        counts[phase] = counts.get(phase, 0) + 1
    return counts


def lifecycle_by_flit(
    events: Iterable[TraceEvent],
) -> Dict[int, List[str]]:
    """Map each flit id to the ordered list of its lifecycle kind names.

    The perf gate uses this to assert every delivered flit carries the
    full inject → grant → deliver chain (or the cut-through equivalent).
    """
    out: Dict[int, List[str]] = {}
    for kind, _time, _a, _b, _conn, flit_id in events:
        if kind in _LIFECYCLE_KINDS and flit_id >= 0:
            out.setdefault(flit_id, []).append(KIND_NAMES[kind])
    return out
