"""Kernel profiling: where do the simulator's cycles actually go?

``BENCH_kernel.json`` shows the activity kernel's fast-forward advantage
collapsing from 3.4x at 10% load to ~1.5x fully loaded — but the kernel
itself could not say *which ticker* eats the difference.  A
:class:`KernelProfiler` plugs into :meth:`repro.sim.engine.Simulator.set_profiler`
and accounts, per registered ticker, how many cycles it ticked, how many
it skipped, and how much wall time its ticks cost; plus the fast-forward
spans the kernel elided and the events it fired.

Profiling changes dispatch cost (each tick is bracketed by two clock
reads), so the profiler is for diagnosis, not for the perf gate's timing
runs — the gate measures with the profiler detached.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class TickerProfile:
    """Dispatch accounting for one registered ticker."""

    __slots__ = ("index", "name", "ticks", "skipped_cycles", "skip_spans", "seconds")

    def __init__(self, index: int, name: Optional[str]) -> None:
        self.index = index
        self.name = name if name is not None else f"ticker{index}"
        self.ticks = 0
        self.skipped_cycles = 0
        self.skip_spans = 0
        self.seconds = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "ticks": self.ticks,
            "skipped_cycles": self.skipped_cycles,
            "skip_spans": self.skip_spans,
            "seconds": self.seconds,
        }


class KernelProfiler:
    """Receives the engine's profiling hooks and aggregates them.

    The engine calls :meth:`register` as tickers are added (and for any
    tickers that existed before the profiler was attached), then
    :meth:`on_tick` / :meth:`on_skip` per dispatch decision,
    :meth:`on_fast_forward` per elided span and :meth:`on_events` per
    drained batch.
    """

    def __init__(self) -> None:
        self.tickers: List[TickerProfile] = []
        self.events_fired = 0
        self.fast_forward_spans = 0
        self.fast_forwarded_cycles = 0
        self.stepped_cycles = 0

    # ----- engine hooks -----------------------------------------------------

    def register(self, index: int, name: Optional[str]) -> None:
        """Announce ticker ``index`` (called in registration order)."""
        while len(self.tickers) <= index:
            self.tickers.append(TickerProfile(len(self.tickers), None))
        if name is not None:
            self.tickers[index].name = name

    def on_cycle(self) -> None:
        """One cycle was stepped (not fast-forwarded)."""
        self.stepped_cycles += 1

    def on_tick(self, index: int, seconds: float) -> None:
        """Ticker ``index`` ran, costing ``seconds`` of wall time."""
        profile = self.tickers[index]
        profile.ticks += 1
        profile.seconds += seconds

    def on_skip(self, index: int, count: int) -> None:
        """Ticker ``index`` was skipped for ``count`` cycles."""
        profile = self.tickers[index]
        profile.skipped_cycles += count
        profile.skip_spans += 1

    def on_fast_forward(self, cycles: int) -> None:
        """The kernel jumped ``cycles`` cycles in one span."""
        self.fast_forward_spans += 1
        self.fast_forwarded_cycles += cycles

    def on_events(self, count: int) -> None:
        """``count`` due events fired at the start of a cycle."""
        self.events_fired += count

    # ----- reporting --------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """Cycles covered: stepped plus fast-forwarded."""
        return self.stepped_cycles + self.fast_forwarded_cycles

    @property
    def fast_forward_ratio(self) -> float:
        """Fraction of covered cycles the kernel elided entirely."""
        total = self.total_cycles
        return self.fast_forwarded_cycles / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe profile: kernel totals plus per-ticker accounting."""
        return {
            "stepped_cycles": self.stepped_cycles,
            "fast_forwarded_cycles": self.fast_forwarded_cycles,
            "fast_forward_spans": self.fast_forward_spans,
            "fast_forward_ratio": self.fast_forward_ratio,
            "events_fired": self.events_fired,
            "tickers": [profile.to_dict() for profile in self.tickers],
        }
