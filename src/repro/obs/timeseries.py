"""Ring-buffered time series: the flight recorder's sampling substrate.

A production router cannot afford unbounded metric storage, so every
channel is a fixed-capacity ring of ``(time, value)`` samples plus a
:class:`~repro.sim.stats.RunningStats` aggregate that keeps folding in
samples after the ring starts dropping.  The aggregate therefore always
describes the *whole* run; the ring holds the most recent window at full
resolution for export and plotting.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim.stats import RunningStats

#: Default ring capacity per channel.  At the paper's round length of 512
#: cycles this holds ~500k cycles of per-round samples.
DEFAULT_CAPACITY = 1024


class TimeSeries:
    """Fixed-memory ``(time, value)`` ring with a whole-run aggregate."""

    __slots__ = ("name", "capacity", "dropped", "stats", "_samples")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        self.stats = RunningStats()
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def append(self, time: float, value: float) -> None:
        """Record that the signal had ``value`` at ``time``."""
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append((time, value))
        self.stats.add(value)

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[Tuple[float, float]]:
        """The retained window, oldest first."""
        return list(self._samples)

    def latest(self) -> Optional[Tuple[float, float]]:
        """The most recent sample, or None before the first."""
        return self._samples[-1] if self._samples else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe record: aggregate over all samples + retained window."""
        stats = self.stats
        return {
            "name": self.name,
            "capacity": self.capacity,
            "count": stats.count,
            "dropped": self.dropped,
            "mean": stats.mean,
            "min": stats.minimum if stats.count else None,
            "max": stats.maximum if stats.count else None,
            "samples": [[t, v] for t, v in self._samples],
        }

    def __repr__(self) -> str:
        return (
            f"TimeSeries({self.name!r}, n={self.stats.count}, "
            f"retained={len(self._samples)}/{self.capacity})"
        )


class TelemetryHub:
    """A namespace of :class:`TimeSeries` channels components publish into.

    Channels are registered on first access, so instrumentation sites do
    not need set-up code — but unlike the old ``StatsRegistry.get_series``
    bug, the returned series is always the *registered* one, never a
    detached accumulator whose samples would be lost.

    ``enabled`` is the single flag hot paths (round-boundary sampling)
    check before computing any window deltas; disabling it turns the
    whole telemetry plane into one boolean test per round.
    """

    #: Class-level fallback so hubs unpickled from old checkpoints
    #: (which predate the flag) come back enabled.
    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = True
        self._channels: Dict[str, TimeSeries] = {}

    def set_enabled(self, enabled: bool) -> None:
        """Switch channel sampling on or off (registered data is kept)."""
        self.enabled = enabled

    def channel(self, name: str) -> TimeSeries:
        """The channel called ``name``, created on first access."""
        series = self._channels.get(name)
        if series is None:
            series = self._channels[name] = TimeSeries(name, self.capacity)
        return series

    def sample(self, name: str, time: float, value: float) -> None:
        """Append one sample to channel ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.channel(name).append(time, value)

    def names(self) -> List[str]:
        """Registered channel names, sorted."""
        return sorted(self._channels)

    def dropped_by_channel(self) -> Dict[str, int]:
        """Channels whose rings dropped samples: ``{name: dropped}``.

        Empty means every channel's full history is still in its ring —
        a dashboard built from the retained windows is not truncated.
        """
        return {
            name: series.dropped
            for name, series in sorted(self._channels.items())
            if series.dropped
        }

    def __len__(self) -> int:
        return len(self._channels)

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe dict of every channel's :meth:`TimeSeries.to_dict`."""
        return {
            name: series.to_dict()
            for name, series in sorted(self._channels.items())
        }

    def clear(self) -> None:
        """Drop every channel (used when warm-up samples are discarded)."""
        self._channels.clear()
