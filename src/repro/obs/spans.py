"""Hierarchical control-plane spans: causal traces of session lifecycles.

The flit trace answers "where did this flit go"; it cannot answer "why
did this *session's* setup take 180 cycles" — establishment is a walk of
probe/backtrack/ack tokens whose cost structure is per hop, not per
flit.  This module records that structure as **spans**: bounded,
causally-linked ``(begin, end)`` intervals forming a tree per session —

* a ``session`` root span covering the whole lifetime,
* a ``setup`` child covering probe + ack, with one ``hop`` /
  ``backtrack`` grandchild per link the probe searched and an ``ack``
  child for the return walk,
* a ``renegotiation`` child with one ``set_bandwidth`` grandchild per
  hop (plus ``rollback`` grandchildren when a NACK unwinds them),
* a ``teardown`` child with per-hop grandchildren and an optional
  ``drain`` child for the retry window while in-flight flits empty out.

Emission sites live in :mod:`repro.network.probe_protocol` and
:mod:`repro.harness.churn`, guarded by ``recorder.enabled`` exactly like
the flit trace.  Storage is fixed: once ``capacity`` spans are retained,
new ``begin`` calls return the :data:`DROPPED` sentinel (id 0) and are
counted, never stored — ``end(DROPPED)`` is a no-op, so call sites need
no extra guards.

Everything is plain data (dataclass of ints/strings/dicts), so a
simulation with open spans checkpoints through ``ckpt/1`` unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Sentinel span id returned by ``begin`` when the tracer is full (and
#: used as the "no parent" / "no span" value on protocol state).
DROPPED = 0

#: Default retained-span capacity.  Spans are small (~200 bytes), so
#: this bounds the store around 10 MB while covering ~10k sessions of
#: churn at typical span counts (5-15 spans per session).
DEFAULT_SPAN_CAPACITY = 50_000

#: Synthetic pid for the control-plane track in Chrome trace exports
#: (the flit/router track uses pid 1).
CONTROL_PLANE_PID = 2

#: Span statuses with a defined meaning; ``status`` is free-form but
#: these are what the protocol emits and the dashboard colour-codes.
STATUS_OPEN = "open"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_BLOCKED = "blocked"
STATUS_REFUSED = "refused"
STATUS_ROLLED_BACK = "rolled_back"


@dataclass
class Span:
    """One closed-or-open interval in the control-plane tree."""

    span_id: int
    parent_id: int
    name: str
    category: str
    start: int
    end: int = -1
    status: str = STATUS_OPEN
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end >= 0

    @property
    def duration(self) -> int:
        """Cycles from begin to end (0 while still open)."""
        return self.end - self.start if self.end >= 0 else 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe record of this span."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "args": dict(self.args),
        }


class SpanTracer:
    """Bounded store of causally-linked spans with a query API."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._spans: Dict[int, Span] = {}
        self._children: Dict[int, List[int]] = {}
        self._next_id = 1

    # ----- emission ----------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        time: int,
        parent: int = DROPPED,
        **args: Any,
    ) -> int:
        """Open a span; returns its id (or :data:`DROPPED` when full).

        ``parent`` is the id of the causally enclosing span (``DROPPED``
        for a root).  A child of a dropped parent is still recorded as a
        root so partial trees survive capacity pressure.
        """
        if len(self._spans) >= self.capacity:
            self.dropped += 1
            return DROPPED
        span_id = self._next_id
        self._next_id += 1
        if parent and parent not in self._spans:
            parent = DROPPED
        span = Span(span_id, parent, name, category, time, args=args)
        self._spans[span_id] = span
        if parent:
            self._children.setdefault(parent, []).append(span_id)
        return span_id

    def end(
        self, span_id: int, time: int, status: str = STATUS_OK, **args: Any
    ) -> None:
        """Close a span (no-op for the :data:`DROPPED` sentinel)."""
        if span_id == DROPPED:
            return
        span = self._spans.get(span_id)
        if span is None:
            return
        if span.end >= 0:
            raise ValueError(f"span {span_id} ({span.name}) already closed")
        span.end = time
        span.status = status
        if args:
            span.args.update(args)

    def annotate(self, span_id: int, **args: Any) -> None:
        """Attach extra key/values to an open or closed span."""
        span = self._spans.get(span_id)
        if span is not None:
            span.args.update(args)

    def clear(self) -> None:
        """Drop every span (warm-up reset)."""
        self._spans.clear()
        self._children.clear()
        self.dropped = 0
        self._next_id = 1

    # ----- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def open_count(self) -> int:
        """Spans begun but never ended (sessions still alive, or a bug)."""
        return sum(1 for span in self._spans.values() if span.end < 0)

    def get(self, span_id: int) -> Optional[Span]:
        return self._spans.get(span_id)

    def spans(self, category: Optional[str] = None) -> List[Span]:
        """All retained spans (optionally one category), by begin order."""
        if category is None:
            return list(self._spans.values())
        return [s for s in self._spans.values() if s.category == category]

    def roots(self, category: Optional[str] = None) -> List[Span]:
        """Spans with no parent (session roots, normally)."""
        return [
            s
            for s in self.spans(category)
            if s.parent_id == DROPPED
        ]

    def children(self, span_id: int) -> List[Span]:
        """Direct children of a span, in begin order."""
        return [self._spans[c] for c in self._children.get(span_id, [])]

    def critical_path(self, span_id: int) -> List[Span]:
        """The longest-duration descent from ``span_id``.

        At each level the closed child with the largest duration is
        followed, so the returned chain names what dominated the parent's
        wall time — e.g. the hop that dominated a slow setup.
        """
        path: List[Span] = []
        span = self._spans.get(span_id)
        while span is not None:
            path.append(span)
            closed = [c for c in self.children(span.span_id) if c.closed]
            span = max(closed, key=lambda s: s.duration, default=None)
        return path

    def slowest(self, category: str, k: int = 10) -> List[Span]:
        """The ``k`` longest closed spans of a category, slowest first."""
        closed = [s for s in self.spans(category) if s.closed]
        closed.sort(key=lambda s: (-s.duration, s.span_id))
        return closed[:k]

    def quantile_span(self, category: str, q: float) -> Optional[Span]:
        """The span at the ``q``-quantile of closed durations.

        Nearest-rank, matching the harness percentiles: the returned span
        for ``q=0.99`` is *the* p99 setup, so ``critical_path`` on it
        answers "which hop dominated p99 setup".
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        closed = sorted(
            (s for s in self.spans(category) if s.closed),
            key=lambda s: (s.duration, s.span_id),
        )
        if not closed:
            return None
        rank = max(1, math.ceil(q * len(closed)))
        return closed[rank - 1]

    def root_of(self, span_id: int) -> Optional[Span]:
        """Walk parents up to the tree root (the session span)."""
        span = self._spans.get(span_id)
        while span is not None and span.parent_id != DROPPED:
            parent = self._spans.get(span.parent_id)
            if parent is None:
                break
            span = parent
        return span

    # ----- export ------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-safe list of every retained span."""
        return [span.to_dict() for span in self._spans.values()]

    def to_trace_events(self, us_per_cycle: float = 1.0) -> List[Dict[str, Any]]:
        """Chrome trace-event ``X`` (complete) events for closed spans.

        Spans land on a dedicated ``control-plane`` process (pid 2) with
        one thread lane per session tree, so Perfetto shows each
        session's setup/renegotiation/teardown nested under its root
        alongside the flit tracks.  Open spans are skipped (no end yet);
        callers report :attr:`open_count` instead.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": CONTROL_PLANE_PID,
                "tid": 0,
                "args": {"name": "control-plane"},
            }
        ]
        named_lanes = set()
        root_cache: Dict[int, int] = {}

        def lane(span: Span) -> int:
            cached = root_cache.get(span.span_id)
            if cached is not None:
                return cached
            root = self.root_of(span.span_id)
            tid = root.span_id if root is not None else span.span_id
            root_cache[span.span_id] = tid
            return tid

        for span in self._spans.values():
            if not span.closed:
                continue
            tid = lane(span)
            if tid not in named_lanes:
                named_lanes.add(tid)
                root = self._spans.get(tid)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": CONTROL_PLANE_PID,
                        "tid": tid,
                        "args": {"name": root.name if root else f"span {tid}"},
                    }
                )
            args = dict(span.args)
            args["span"] = span.span_id
            args["parent"] = span.parent_id
            args["status"] = span.status
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * us_per_cycle,
                    "dur": span.duration * us_per_cycle,
                    "pid": CONTROL_PLANE_PID,
                    "tid": tid,
                    "args": args,
                }
            )
        return events

    def __repr__(self) -> str:
        return (
            f"SpanTracer(retained={len(self._spans)}/{self.capacity}, "
            f"open={self.open_count}, dropped={self.dropped})"
        )
