"""Observability: flight recorder, telemetry rings, trace export, profiling.

This package is deliberately dependency-light (it imports only
``repro.sim.stats``) so every layer — core router, network, harness,
CLI — can use it without cycles.  The hot-path contract is that all
emission sites guard on ``recorder.enabled``; see
:mod:`repro.obs.recorder`.
"""

from .kernel import KernelProfiler, TickerProfile
from .manifest import MANIFEST_SCHEMA, build_manifest, config_digest, git_revision
from .recorder import (
    DEFAULT_TRACE_CAPACITY,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
)
from .timeseries import DEFAULT_CAPACITY, TelemetryHub, TimeSeries
from .trace_export import (
    KIND_NAMES,
    TraceEvent,
    lifecycle_by_flit,
    to_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "FlightRecorder",
    "KernelProfiler",
    "KIND_NAMES",
    "MANIFEST_SCHEMA",
    "NULL_RECORDER",
    "NullFlightRecorder",
    "TelemetryHub",
    "TickerProfile",
    "TimeSeries",
    "TraceEvent",
    "build_manifest",
    "config_digest",
    "git_revision",
    "lifecycle_by_flit",
    "to_chrome_trace",
    "validate_chrome_trace",
]
