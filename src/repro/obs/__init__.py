"""Observability: flight recorder, telemetry rings, trace export, profiling.

This package is deliberately dependency-light (it imports only
``repro.sim.stats``) so every layer — core router, network, harness,
CLI — can use it without cycles.  The hot-path contract is that all
emission sites guard on ``recorder.enabled``; see
:mod:`repro.obs.recorder`.
"""

from .health import (
    HEALTH_SCHEMA,
    ROLLUP_SCHEMA,
    HealthWriter,
    build_health_snapshot,
    dropped_total,
    merge_health,
    read_health,
)
from .kernel import KernelProfiler, TickerProfile
from .manifest import MANIFEST_SCHEMA, build_manifest, config_digest, git_revision
from .recorder import (
    DEFAULT_TRACE_CAPACITY,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
)
from .report import render_report, render_rollup, sparkline_svg
from .slo import (
    P2Quantile,
    SloBudget,
    SloEngine,
    SloViolation,
    StreamingQuantiles,
    parse_budgets,
)
from .spans import DEFAULT_SPAN_CAPACITY, DROPPED, Span, SpanTracer
from .timeseries import DEFAULT_CAPACITY, TelemetryHub, TimeSeries
from .trace_export import (
    KIND_NAMES,
    TraceEvent,
    lifecycle_by_flit,
    to_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_SPAN_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "DROPPED",
    "FlightRecorder",
    "HEALTH_SCHEMA",
    "HealthWriter",
    "KernelProfiler",
    "KIND_NAMES",
    "MANIFEST_SCHEMA",
    "NULL_RECORDER",
    "NullFlightRecorder",
    "P2Quantile",
    "ROLLUP_SCHEMA",
    "SloBudget",
    "SloEngine",
    "SloViolation",
    "Span",
    "SpanTracer",
    "StreamingQuantiles",
    "TelemetryHub",
    "TickerProfile",
    "TimeSeries",
    "TraceEvent",
    "build_health_snapshot",
    "build_manifest",
    "config_digest",
    "dropped_total",
    "git_revision",
    "lifecycle_by_flit",
    "merge_health",
    "parse_budgets",
    "read_health",
    "render_report",
    "render_rollup",
    "sparkline_svg",
    "to_chrome_trace",
    "validate_chrome_trace",
]
