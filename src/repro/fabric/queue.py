"""Filesystem-backed distributed work queue (schema ``fabric-queue/1``).

A submitted sweep explodes into one **point spec** file per grid point;
any worker that can see the directory — another process, another host on
a shared filesystem — claims points, runs them, and pushes result
markers.  All coordination is plain files with atomic primitives
(``O_EXCL`` create, ``os.replace``), so there is no broker, no daemon
and nothing to install on a cluster beyond this package.

Directory layout under a fabric directory::

    queue.json            submission manifest (grid digest, kind, axes)
    points/<id>.spec      one pickled (key, spec) pair per grid point
    leases/<id>.lease     live claim: JSON {worker, pid, host, heartbeat}
    results/<id>.json     completion marker referencing the result store
    ckpt/<id>.ckpt        the point's periodic checkpoint (resume source)
    events.jsonl          append-only log (lease breaks, requeues)
    store/                default :class:`~repro.fabric.store.ResultStore`

Lease protocol:

* **claim** — create ``leases/<id>.lease`` with ``O_CREAT | O_EXCL``;
  exactly one creator succeeds.
* **heartbeat** — the owner periodically rewrites the lease (tmp +
  ``os.replace``) with a fresh timestamp, after verifying it still owns
  it (a worker that lost its lease must abandon the point, not fight).
* **expiry / requeue** — a lease whose heartbeat is older than its TTL
  belongs to a dead or preempted worker.  A claimer *breaks* it by
  atomically renaming it aside (two racers: one wins the rename, the
  loser sees FileNotFoundError and retries the claim), logs the break to
  ``events.jsonl``, then competes for a fresh ``O_EXCL`` create.  The
  requeued point resumes from ``ckpt/<id>.ckpt`` — its latest
  checkpoint — rather than cycle 0.

The queue is deliberately crash-dumb: every transition is one atomic
rename or exclusive create, and every state can be re-derived by listing
the directory, so a SIGKILL at any instant leaves nothing to repair.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.manifest import build_manifest, config_digest

QUEUE_SCHEMA = "fabric-queue/1"
RESULT_MARKER_SCHEMA = "fabric-result/1"


class FabricError(RuntimeError):
    """Base class for fabric queue failures."""


class FabricSubmissionError(FabricError):
    """The directory already holds a different sweep's queue."""


#: Runner registry: the submission manifest names the runner by kind so a
#: worker on another host (which only sees the directory) can resolve the
#: same per-point experiment function.  Values are import paths resolved
#: lazily to keep this module import-light.
RUNNER_KINDS: Dict[str, Tuple[str, str]] = {
    "single_router": ("repro.harness.single_router", "run_single_router_experiment"),
    "network": ("repro.harness.network_experiment", "run_network_experiment"),
    "churn": ("repro.harness.churn", "run_churn_experiment"),
}


def resolve_runner(kind: str) -> Callable[..., Any]:
    """Import and return the per-point runner for a submission kind."""
    try:
        module_name, attr = RUNNER_KINDS[kind]
    except KeyError:
        raise FabricError(
            f"unknown runner kind {kind!r}; known: {sorted(RUNNER_KINDS)}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def runner_kind(runner: Callable[..., Any]) -> str:
    """Map a known runner callable back to its submission kind."""
    for kind, (module_name, attr) in RUNNER_KINDS.items():
        if (
            getattr(runner, "__module__", None) == module_name
            and getattr(runner, "__name__", None) == attr
        ):
            return kind
    raise FabricError(
        f"runner {runner!r} has no fabric kind; fabric sweeps support "
        f"{sorted(RUNNER_KINDS)} (module-level experiment runners)"
    )


@dataclass(frozen=True)
class Fabric:
    """Policy for running a sweep on the distributed fabric.

    Passed to ``run_sweep(fabric=...)``.  ``directory`` is the shared
    coordination directory; everything else tunes the lease protocol and
    caching.  ``lease_ttl`` must comfortably exceed the longest gap
    between worker heartbeats (``heartbeat_every``) or live workers get
    their points stolen.
    """

    directory: "Path | str"
    #: Seconds without a heartbeat before a lease counts as dead.
    lease_ttl: float = 60.0
    #: Heartbeat period of a healthy worker.
    heartbeat_every: float = 5.0
    #: Per-point checkpoint period (cycles) while computing.
    checkpoint_every: int = 10000
    #: Result store root (defaults to ``directory/store``).  Point a
    #: fleet of sweeps at one shared store to share their cache.
    store_dir: Optional["Path | str"] = None
    #: Code-revision override for the store key (tests only).
    revision: Optional[str] = None
    #: Seconds between scans while waiting on other workers' leases.
    poll: float = 0.2

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {self.lease_ttl}")
        if self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )

    @property
    def store_root(self) -> Path:
        return Path(self.store_dir) if self.store_dir else Path(self.directory) / "store"


def point_id(key: Tuple[Any, ...]) -> str:
    """Stable, filesystem-safe id for one grid point's key tuple."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:12]
    human = re.sub(r"[^A-Za-z0-9.=_-]+", "_", "_".join(str(v) for v in key))
    return f"{human[:60]}-{digest}"


class FabricQueue:
    """One sweep's work queue rooted at a shared directory."""

    def __init__(self, directory, lease_ttl: float = 60.0) -> None:
        self.directory = Path(directory)
        self.lease_ttl = float(lease_ttl)
        self.points_dir = self.directory / "points"
        self.leases_dir = self.directory / "leases"
        self.results_dir = self.directory / "results"
        self.ckpt_dir = self.directory / "ckpt"
        self.manifest_path = self.directory / "queue.json"
        self.events_path = self.directory / "events.jsonl"

    # ----- submission --------------------------------------------------------

    @staticmethod
    def grid_digest(kind: str, points: Sequence[Tuple[Tuple[Any, ...], Any]]) -> str:
        """Digest identifying a submission: runner kind + every point spec."""
        hasher = hashlib.sha256(kind.encode("utf-8"))
        for key, spec in points:
            hasher.update(repr(key).encode("utf-8"))
            hasher.update(config_digest(spec).encode("utf-8"))
        return hasher.hexdigest()[:16]

    def submit(
        self,
        points: Sequence[Tuple[Tuple[Any, ...], Any]],
        kind: str,
        axes: Sequence[Any] = (),
        checkpoint_every: int = 10000,
    ) -> Dict[str, Any]:
        """Explode a sweep into point specs; idempotent for the same grid.

        Re-submitting the identical grid (same kind, same specs) is a
        no-op that returns the existing manifest — that is how a crashed
        driver re-attaches.  Submitting a *different* grid into a
        non-empty fabric directory raises
        :class:`FabricSubmissionError`: results markers from another
        sweep must never be misread as this one's.
        """
        if kind not in RUNNER_KINDS:
            raise FabricError(
                f"unknown runner kind {kind!r}; known: {sorted(RUNNER_KINDS)}"
            )
        digest = self.grid_digest(kind, points)
        existing = self.read_manifest()
        if existing is not None:
            if existing.get("grid_digest") == digest:
                return existing
            raise FabricSubmissionError(
                f"{self.directory} already holds sweep "
                f"{existing.get('grid_digest')} ({existing.get('points')} "
                f"points, kind {existing.get('kind')!r}); refusing to mix in "
                f"grid {digest} — submit to a fresh directory"
            )
        for path in (self.points_dir, self.leases_dir, self.results_dir, self.ckpt_dir):
            path.mkdir(parents=True, exist_ok=True)
        ids = []
        for key, spec in points:
            pid = point_id(key)
            ids.append(pid)
            spec_path = self.points_dir / f"{pid}.spec"
            blob = pickle.dumps(
                {"key": tuple(key), "spec": spec}, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._atomic_write_bytes(spec_path, blob)
        manifest = {
            "schema": QUEUE_SCHEMA,
            "kind": kind,
            "grid_digest": digest,
            "points": len(points),
            "point_ids": ids,
            "axes": [
                {"name": axis.name, "values": list(axis.values), "target": axis.target}
                for axis in axes
            ],
            "checkpoint_every": int(checkpoint_every),
            "manifest": build_manifest(command="fabric.submit"),
        }
        self._atomic_write_bytes(
            self.manifest_path,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        return manifest

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise FabricError(f"{self.manifest_path}: corrupt queue manifest ({exc})")

    def require_manifest(self) -> Dict[str, Any]:
        manifest = self.read_manifest()
        if manifest is None:
            raise FabricError(
                f"{self.directory} holds no submitted sweep (no queue.json); "
                "run `repro fabric submit` first"
            )
        return manifest

    # ----- point access ------------------------------------------------------

    def point_ids(self) -> List[str]:
        return list(self.require_manifest()["point_ids"])

    def load_point(self, pid: str) -> Tuple[Tuple[Any, ...], Any]:
        """The (key, spec) pair of one grid point."""
        blob = (self.points_dir / f"{pid}.spec").read_bytes()
        record = pickle.loads(blob)
        return record["key"], record["spec"]

    def checkpoint_path(self, pid: str) -> Path:
        return self.ckpt_dir / f"{pid}.ckpt"

    # ----- lease protocol ----------------------------------------------------

    def lease_path(self, pid: str) -> Path:
        return self.leases_dir / f"{pid}.lease"

    def read_lease(self, pid: str) -> Optional[Dict[str, Any]]:
        try:
            text = self.lease_path(pid).read_text(encoding="utf-8")
            return json.loads(text)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            # A torn read (claimer mid-write) — treat as present but
            # unreadable; expiry falls back to the file's mtime.
            return {}

    def lease_expired(self, pid: str) -> bool:
        """Whether the point's lease (if any) has outlived its TTL."""
        path = self.lease_path(pid)
        lease = self.read_lease(pid)
        if lease is None:
            return False
        heartbeat = lease.get("heartbeat_unix")
        if heartbeat is None:
            try:
                heartbeat = path.stat().st_mtime
            except OSError:
                return False
        ttl = lease.get("ttl", self.lease_ttl)
        return (time.time() - float(heartbeat)) > float(ttl)

    def _lease_payload(self, worker_id: str) -> bytes:
        now = time.time()
        record = {
            "schema": "fabric-lease/1",
            "worker": worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "acquired_unix": round(now, 3),
            "heartbeat_unix": round(now, 3),
            "ttl": self.lease_ttl,
        }
        return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")

    def try_claim(self, pid: str, worker_id: str) -> bool:
        """Attempt to acquire the point's lease; True when this worker won.

        An expired lease is broken first (rename-aside, logged to the
        event journal) and the freed slot re-contested with ``O_EXCL`` —
        under any interleaving of racing claimers exactly one wins.
        """
        path = self.lease_path(pid)
        for _ in range(8):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self.lease_expired(pid):
                    return False
                stale = self.read_lease(pid) or {}
                aside = path.with_name(f"{path.name}.expired-{uuid.uuid4().hex[:8]}")
                try:
                    os.replace(path, aside)
                except FileNotFoundError:
                    continue  # another claimer broke it first; re-contest
                try:
                    os.unlink(aside)
                except OSError:
                    pass
                self.log_event(
                    "lease_expired",
                    point=pid,
                    dead_worker=stale.get("worker"),
                    broken_by=worker_id,
                )
                continue
            with os.fdopen(fd, "wb") as handle:
                handle.write(self._lease_payload(worker_id))
            return True
        return False

    def heartbeat(self, pid: str, worker_id: str) -> bool:
        """Refresh the lease timestamp; False when ownership was lost."""
        lease = self.read_lease(pid)
        if not lease or lease.get("worker") != worker_id:
            return False
        lease["heartbeat_unix"] = round(time.time(), 3)
        self._atomic_write_bytes(
            self.lease_path(pid),
            (json.dumps(lease, sort_keys=True) + "\n").encode("utf-8"),
        )
        return True

    def release(self, pid: str, worker_id: str) -> None:
        """Drop the lease (only if still owned by ``worker_id``)."""
        lease = self.read_lease(pid)
        if lease is not None and lease.get("worker") == worker_id:
            try:
                os.unlink(self.lease_path(pid))
            except OSError:
                pass

    # ----- results -----------------------------------------------------------

    def result_path(self, pid: str) -> Path:
        return self.results_dir / f"{pid}.json"

    def has_result(self, pid: str) -> bool:
        return self.result_path(pid).exists()

    def write_result(self, pid: str, marker: Dict[str, Any]) -> None:
        record = {"schema": RESULT_MARKER_SCHEMA, "point_id": pid, **marker}
        self._atomic_write_bytes(
            self.result_path(pid),
            (json.dumps(record, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )

    def read_result(self, pid: str) -> Dict[str, Any]:
        return json.loads(self.result_path(pid).read_text(encoding="utf-8"))

    # ----- status / events / gc ----------------------------------------------

    def log_event(self, event: str, **fields: Any) -> None:
        """Append one event line (lease breaks, requeues) to the journal."""
        record = {"event": event, "time_unix": round(time.time(), 3), **fields}
        with open(self.events_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def read_events(self) -> List[Dict[str, Any]]:
        try:
            lines = self.events_path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return []
        events = []
        for line in lines:
            line = line.strip()
            if line:
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail line from a killed writer
        return events

    def status(self) -> Dict[str, Any]:
        """Queue depth, lease health and completion — one JSON-safe record."""
        manifest = self.require_manifest()
        ids = manifest["point_ids"]
        completed = [pid for pid in ids if self.has_result(pid)]
        leased_live: List[str] = []
        leased_expired: List[str] = []
        for pid in ids:
            if pid in completed:
                continue
            lease = self.read_lease(pid)
            if lease is None:
                continue
            (leased_expired if self.lease_expired(pid) else leased_live).append(pid)
        events = self.read_events()
        expiries = sum(1 for e in events if e.get("event") == "lease_expired")
        cached = sum(1 for pid in completed if self.read_result(pid).get("cached"))
        resumed = sum(
            1
            for pid in completed
            if (self.read_result(pid).get("checkpoint") or {}).get(
                "resumed_from_cycle"
            )
            is not None
        )
        return {
            "schema": "fabric-status/1",
            "directory": str(self.directory),
            "kind": manifest["kind"],
            "grid_digest": manifest["grid_digest"],
            "points": len(ids),
            "completed": len(completed),
            "cached": cached,
            "resumed": resumed,
            "queue_depth": len(ids) - len(completed),
            "leases_live": leased_live,
            "leases_expired": leased_expired,
            "lease_expiries_logged": expiries,
            "complete": len(completed) == len(ids),
        }

    def gc(self) -> Dict[str, Any]:
        """Clear expired leases and staging droppings; report what went."""
        broken = []
        for pid in self.point_ids():
            if self.read_lease(pid) is not None and self.lease_expired(pid):
                path = self.lease_path(pid)
                aside = path.with_name(f"{path.name}.expired-{uuid.uuid4().hex[:8]}")
                try:
                    os.replace(path, aside)
                    os.unlink(aside)
                    broken.append(pid)
                    self.log_event("lease_expired", point=pid, broken_by="gc")
                except OSError:
                    pass
        removed_tmp = 0
        for tmp in self.directory.glob("**/*.tmp-*"):
            try:
                tmp.unlink()
                removed_tmp += 1
            except OSError:
                pass
        return {"expired_leases_cleared": broken, "removed_tmp": removed_tmp}

    # ----- internals ---------------------------------------------------------

    @staticmethod
    def _atomic_write_bytes(path: Path, blob: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
