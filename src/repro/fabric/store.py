"""Content-addressed result store (schema ``fabric-store/1``).

A sweep point's result is pure function of three things: the full
experiment specification, the code that ran it, and nothing else.  The
store makes that explicit — every entry is keyed on

    (config digest, code revision, point key)

where the config digest reuses :func:`repro.obs.manifest.config_digest`
(the same digest run manifests and checkpoint headers carry), the code
revision is the git commit hash, and the point key names the grid point.
Re-running an unchanged grid therefore recomputes **zero** points; change
one config field or check out a different revision and every affected
key misses — a stale hit is structurally impossible because staleness is
part of the address.

An entry file is::

    MMR-RESULT\\n          magic line
    {...}\\n               JSON header (one line): schema, the full key,
                           payload sha256 + byte count, provenance
    <pickle blob>          {"result": ..., "manifest": ...}

Writes are atomic (unique tmp beside the entry, then ``os.replace``), so
a preempted worker never leaves a truncated entry where a reusable one
could live.  Reads verify magic, header, key echo, payload length and
sha256 before unpickling; every failure raises the typed
:class:`StoreCorruptionError`.  :meth:`ResultStore.get` is the lenient
worker-facing path: a corrupt entry is deleted, counted in
``stats()["corrupt_dropped"]``, and reported as a miss — recomputed,
never silently reused.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..obs.manifest import build_manifest, config_digest, git_revision

#: First line of every store entry file.
MAGIC = b"MMR-RESULT\n"

#: Current store schema.  Bump when the entry layout changes incompatibly.
STORE_SCHEMA = "fabric-store/1"


class StoreError(RuntimeError):
    """Base class for result-store failures."""


class StoreCorruptionError(StoreError):
    """An entry is truncated, checksum-broken, or answers the wrong key.

    Callers must treat the entry as absent and recompute; :meth:`ResultStore.get`
    does exactly that (and deletes the file so the corruption cannot recur).
    """

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"{path}: corrupt store entry — {reason}")
        self.path = str(path)
        self.reason = reason


@dataclass(frozen=True)
class ResultKey:
    """The full content address of one cached result."""

    #: ``config_digest(spec)`` of the producing experiment spec.
    config_digest: str
    #: Git commit hash of the producing code (``"unknown"`` outside a repo).
    code_revision: str
    #: Name of the grid point (the repr of its axis-value tuple).
    point_key: str

    def digest(self) -> str:
        """sha256 of the canonical key JSON — the entry's file name."""
        canonical = json.dumps(
            {
                "config_digest": self.config_digest,
                "code_revision": self.code_revision,
                "point_key": self.point_key,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, str]:
        return {
            "config_digest": self.config_digest,
            "code_revision": self.code_revision,
            "point_key": self.point_key,
        }


def spec_key(spec: Any, point_key: str, revision: Optional[str] = None) -> ResultKey:
    """Build the store key for one (spec, point) pair.

    ``revision`` overrides the code revision (tests use this to prove a
    revision change misses); the default is the current git commit.
    """
    if revision is None:
        revision = git_revision() or "unknown"
    return ResultKey(
        config_digest=config_digest(spec),
        code_revision=revision,
        point_key=point_key,
    )


class ResultStore:
    """Filesystem-backed, content-addressed result cache.

    Safe for concurrent writers on a shared directory: entries are
    immutable once renamed into place, and two workers racing on the same
    key write byte-identical payloads (same spec, same revision, same
    seeded simulation) so last-rename-wins is harmless.
    """

    def __init__(self, root, revision: Optional[str] = None) -> None:
        self.root = Path(root)
        #: Code revision baked into every key this store builds.
        self.revision = revision or git_revision() or "unknown"
        self.hits = 0
        self.misses = 0
        self.corrupt_dropped = 0
        self.writes = 0

    # ----- keys and paths ----------------------------------------------------

    def key_for(self, spec: Any, point_key: str) -> ResultKey:
        """The content address of ``spec`` at this store's revision."""
        return spec_key(spec, point_key, self.revision)

    def path_for(self, key: ResultKey) -> Path:
        digest = key.digest()
        return self.root / digest[:2] / f"{digest}.res"

    # ----- write -------------------------------------------------------------

    def put(
        self,
        key: ResultKey,
        result: Any,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Store one result atomically; returns the entry path."""
        payload = pickle.dumps(
            {"result": result, "manifest": manifest},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        header = {
            "schema": STORE_SCHEMA,
            "key": key.to_dict(),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "manifest": build_manifest(command="fabric.store.put"),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique tmp name: concurrent workers on a shared directory must
        # not clobber each other's half-written staging files.
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{id(payload):x}")
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            handle.write(b"\n")
            handle.write(payload)
        os.replace(tmp, path)
        self.writes += 1
        return path

    # ----- read --------------------------------------------------------------

    def load(self, key: ResultKey) -> Tuple[Any, Optional[Dict[str, Any]]]:
        """Strict read: returns ``(result, manifest)`` or raises.

        Raises :class:`KeyError` when the entry does not exist and
        :class:`StoreCorruptionError` when it exists but cannot be
        trusted (bad magic, truncated header or payload, checksum
        mismatch, or a header that answers a different key).
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            raise KeyError(key) from None
        if not blob.startswith(MAGIC):
            raise StoreCorruptionError(path, f"bad magic {blob[:12]!r}")
        rest = blob[len(MAGIC):]
        newline = rest.find(b"\n")
        if newline < 0:
            raise StoreCorruptionError(path, "truncated header")
        try:
            header = json.loads(rest[:newline].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(path, f"header is not JSON ({exc})") from exc
        if header.get("schema") != STORE_SCHEMA:
            raise StoreCorruptionError(
                path,
                f"schema {header.get('schema')!r}, this build reads "
                f"{STORE_SCHEMA!r}",
            )
        if header.get("key") != key.to_dict():
            raise StoreCorruptionError(
                path,
                f"entry answers key {header.get('key')!r}, "
                f"caller asked for {key.to_dict()!r}",
            )
        payload = rest[newline + 1:]
        if len(payload) != header.get("payload_bytes"):
            raise StoreCorruptionError(
                path,
                f"payload is {len(payload)} bytes, header says "
                f"{header.get('payload_bytes')} — truncated entry",
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise StoreCorruptionError(
                path,
                f"payload sha256 {digest} does not match header "
                f"{header.get('payload_sha256')}",
            )
        try:
            record = pickle.loads(payload)
        except Exception as exc:
            raise StoreCorruptionError(
                path, f"payload failed to unpickle ({exc})"
            ) from exc
        if not isinstance(record, dict) or "result" not in record:
            raise StoreCorruptionError(
                path, f"payload is {type(record).__name__}, expected result dict"
            )
        return record["result"], record.get("manifest")

    def get(self, key: ResultKey) -> Optional[Tuple[Any, Optional[Dict[str, Any]]]]:
        """Lenient read: hit, or None on miss *and* on corruption.

        A corrupt entry is deleted (so the next writer replaces it),
        counted in ``corrupt_dropped``, and reported as a miss — the
        caller recomputes.  Silent reuse of a broken entry cannot happen:
        every code path that returns a result went through the full
        checksum + key verification of :meth:`load`.
        """
        try:
            entry = self.load(key)
        except KeyError:
            self.misses += 1
            return None
        except StoreCorruptionError:
            self.corrupt_dropped += 1
            self.misses += 1
            try:
                os.unlink(self.path_for(key))
            except OSError:
                pass
            return None
        self.hits += 1
        return entry

    def contains(self, key: ResultKey) -> bool:
        """Whether a (possibly corrupt) entry file exists for ``key``."""
        return self.path_for(key).exists()

    # ----- accounting and maintenance ---------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Honest hit/miss accounting for gates and telemetry."""
        lookups = self.hits + self.misses
        return {
            "root": str(self.root),
            "revision": self.revision,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_dropped": self.corrupt_dropped,
            "writes": self.writes,
            "hit_ratio": self.hits / lookups if lookups else 0.0,
        }

    def entries(self) -> int:
        """Number of entry files currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.res"))

    def gc(self, keep_revision: Optional[str] = None) -> Dict[str, int]:
        """Delete staging droppings and (optionally) other revisions' entries.

        ``keep_revision`` prunes every entry whose header names a
        different code revision — old revisions can never hit again, so
        their entries are pure disk weight.  Unreadable entries are
        dropped too (they would only ever be re-verified and recomputed).
        """
        removed_tmp = 0
        removed_entries = 0
        if not self.root.exists():
            return {"removed_tmp": 0, "removed_entries": 0}
        for tmp in self.root.glob("*/*.tmp-*"):
            try:
                tmp.unlink()
                removed_tmp += 1
            except OSError:
                pass
        if keep_revision is not None:
            for entry in self.root.glob("*/*.res"):
                try:
                    with open(entry, "rb") as handle:
                        handle.read(len(MAGIC))
                        header = json.loads(handle.readline().decode("utf-8"))
                    revision = (header.get("key") or {}).get("code_revision")
                except (OSError, ValueError, UnicodeDecodeError):
                    revision = None
                if revision != keep_revision:
                    try:
                        entry.unlink()
                        removed_entries += 1
                    except OSError:
                        pass
        return {"removed_tmp": removed_tmp, "removed_entries": removed_entries}
