"""Fabric worker: claims queued points, runs them, pushes results.

A worker is the only fabric component that executes simulations.  Its
loop per point:

1. **claim** the point's lease (atomic create; expired leases of dead
   workers are broken and the point *requeued* — see
   :meth:`~repro.fabric.queue.FabricQueue.try_claim`);
2. **cache check** — the content-addressed store is consulted first; a
   hit publishes the stored result without running anything;
3. **compute** — a miss runs the point through the same
   :func:`repro.harness.sweep._run_point` the in-process sweep uses,
   with per-point checkpointing into the fabric's ``ckpt/`` directory
   and ``resume=True``, so a point requeued after a worker died mid-run
   restarts from its latest checkpoint, not cycle 0;
4. **publish** — result into the store, marker into ``results/``,
   lease released.

While computing, a daemon heartbeat thread refreshes the lease every
``Fabric.heartbeat_every`` seconds.  SIGKILL takes the thread down with
the process, so the lease goes stale by itself — exactly the signal the
requeue protocol keys on; no cleanup handler needs to survive the crash.

Workers emit fabric telemetry (``fabric.queue_depth``,
``fabric.lease_expiries``, ``fabric.cache_hit_ratio``) through a
:class:`~repro.obs.recorder.FlightRecorder` and append
:mod:`repro.obs.health` snapshots to a per-worker JSONL trail under the
fabric directory, so a fleet's progress is observable with the same
tooling as a single run.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..harness.sweep import SweepAxis, SweepResult, _run_point
from ..obs.health import HealthWriter, build_health_snapshot
from ..obs.recorder import FlightRecorder
from .queue import Fabric, FabricError, FabricQueue, resolve_runner, runner_kind
from .store import ResultStore


class WorkerKilled(RuntimeError):
    """Internal: the ``kill_after_checkpoints`` test hook fired."""


class FabricWorker:
    """One worker process draining a fabric queue.

    ``worker_id`` defaults to ``host-pid-random`` so two workers on one
    machine (or a fleet across machines) never collide.

    ``kill_after_checkpoints`` is a crash-drill hook: once the worker's
    current point has written that many checkpoints, the worker SIGKILLs
    its own process — no cleanup, no lease release, the honest model of
    a preempted host.  CI's fabric smoke and the perf gate use it to
    prove requeue + checkpoint-resume end to end.
    """

    def __init__(
        self,
        fabric: Fabric,
        worker_id: Optional[str] = None,
        kill_after_checkpoints: Optional[int] = None,
    ) -> None:
        self.fabric = fabric
        self.queue = FabricQueue(fabric.directory, lease_ttl=fabric.lease_ttl)
        self.store = ResultStore(fabric.store_root, revision=fabric.revision)
        self.worker_id = worker_id or (
            f"{os.uname().nodename}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self.kill_after_checkpoints = kill_after_checkpoints
        self.recorder = FlightRecorder(capacity=64, telemetry_capacity=256)
        self.health = HealthWriter(
            Path(fabric.directory) / "health" / f"{self.worker_id}.jsonl"
        )
        self.points_computed = 0
        self.points_cached = 0
        self.points_resumed = 0

    # ----- telemetry ---------------------------------------------------------

    def _sample_fabric_channels(self, queue_depth: int, expiries: int) -> None:
        now = time.time()
        self.recorder.sample("fabric.queue_depth", now, float(queue_depth))
        self.recorder.sample("fabric.lease_expiries", now, float(expiries))
        self.recorder.sample(
            "fabric.cache_hit_ratio", now, float(self.store.stats()["hit_ratio"])
        )

    def write_health(self, queue_depth: int) -> None:
        events = self.queue.read_events()
        expiries = sum(1 for e in events if e.get("event") == "lease_expired")
        self._sample_fabric_channels(queue_depth, expiries)
        snapshot = build_health_snapshot(
            cycle=self.points_computed + self.points_cached,
            recorder=self.recorder,
            extra={
                "worker": self.worker_id,
                "queue_depth": queue_depth,
                "lease_expiries": expiries,
                "points_computed": self.points_computed,
                "points_cached": self.points_cached,
                "points_resumed": self.points_resumed,
                "store": self.store.stats(),
            },
        )
        self.health.write(snapshot)

    # ----- point execution ---------------------------------------------------

    def _heartbeat_loop(self, pid: str, stop: threading.Event) -> None:
        while not stop.wait(self.fabric.heartbeat_every):
            if not self.queue.heartbeat(pid, self.worker_id):
                return  # lost ownership; the compute result will be discarded

    def _kill_watch_loop(self, ckpt_path: Path, stop: threading.Event) -> None:
        """Crash drill: SIGKILL self once enough checkpoints exist."""
        import signal

        seen = 0
        last_mtime = 0.0
        while not stop.wait(0.05):
            try:
                mtime = ckpt_path.stat().st_mtime_ns
            except OSError:
                continue
            if mtime != last_mtime:
                last_mtime = mtime
                seen += 1
            if seen >= (self.kill_after_checkpoints or 1):
                os.kill(os.getpid(), signal.SIGKILL)

    def process_point(self, pid: str, runner, checkpoint_every: int) -> Dict[str, Any]:
        """Run one claimed point to a published result marker.

        The caller holds the lease.  Returns the marker written.  Any
        exception releases the lease (the point stays requeueable); the
        SIGKILL drill never reaches the release, which is the point.
        """
        key, spec = self.queue.load_point(pid)
        store_key = self.store.key_for(spec, repr(key))
        cached = self.store.get(store_key)
        if cached is not None:
            _result, stored_manifest = cached
            marker = {
                "key": list(key),
                "store_key": store_key.to_dict(),
                "cached": True,
                "worker": self.worker_id,
                "checkpoint": (stored_manifest or {}).get("checkpoint"),
            }
            self.queue.write_result(pid, marker)
            self.points_cached += 1
            self.queue.release(pid, self.worker_id)
            return marker

        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(pid, stop), daemon=True
        )
        beat.start()
        killer = None
        ckpt_path = self.queue.checkpoint_path(pid)
        if self.kill_after_checkpoints is not None:
            killer = threading.Thread(
                target=self._kill_watch_loop, args=(ckpt_path, stop), daemon=True
            )
            killer.start()
        try:
            result, manifest = _run_point(
                spec,
                runner,
                checkpoint_path=str(ckpt_path),
                checkpoint_every=checkpoint_every,
                resume=True,
            )
        except Exception:
            stop.set()
            self.queue.release(pid, self.worker_id)
            raise
        finally:
            stop.set()

        lineage = getattr(result, "checkpoint", None)
        if lineage and lineage.get("resumed_from_cycle") is not None:
            self.points_resumed += 1
        stored_manifest = dict(manifest or {})
        if lineage is not None:
            stored_manifest["checkpoint"] = lineage
        self.store.put(store_key, result, stored_manifest or None)
        marker = {
            "key": list(key),
            "store_key": store_key.to_dict(),
            "cached": False,
            "worker": self.worker_id,
            "checkpoint": lineage,
        }
        self.queue.write_result(pid, marker)
        self.points_computed += 1
        self.queue.release(pid, self.worker_id)
        return marker

    # ----- draining ----------------------------------------------------------

    def run_once(self) -> Optional[str]:
        """Claim and finish one available point; None when none claimable.

        "Claimable" means: no result marker yet, and either unleased or
        leased by a worker whose heartbeat has expired.
        """
        manifest = self.queue.require_manifest()
        runner = resolve_runner(manifest["kind"])
        checkpoint_every = int(
            manifest.get("checkpoint_every", self.fabric.checkpoint_every)
        )
        ids = manifest["point_ids"]
        pending = [pid for pid in ids if not self.queue.has_result(pid)]
        for pid in pending:
            if not self.queue.try_claim(pid, self.worker_id):
                continue
            if self.queue.has_result(pid):  # finished while we were claiming
                self.queue.release(pid, self.worker_id)
                continue
            self.process_point(pid, runner, checkpoint_every)
            self.write_health(queue_depth=len(pending) - 1)
            return pid
        return None

    def drain(self, max_points: Optional[int] = None) -> int:
        """Process available points until none are claimable; count done."""
        done = 0
        while max_points is None or done < max_points:
            if self.run_once() is None:
                break
            done += 1
        return done

    def drain_until_complete(self, timeout: Optional[float] = None) -> int:
        """Drain, then wait out other workers' live leases until the queue
        is complete.  Expired leases are claimed (requeue) on each pass.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        done = self.drain()
        while True:
            status = self.queue.status()
            if status["complete"]:
                self.write_health(queue_depth=0)
                return done
            if deadline is not None and time.monotonic() > deadline:
                raise FabricError(
                    f"fabric queue incomplete after {timeout}s: "
                    f"{status['queue_depth']} of {status['points']} points "
                    f"pending, live leases: {status['leases_live']}"
                )
            time.sleep(self.fabric.poll)
            done += self.drain()


# ----- sweep integration -----------------------------------------------------


def submit_sweep(
    fabric: Fabric,
    points,
    runner,
    axes: Tuple[SweepAxis, ...] = (),
) -> Dict[str, Any]:
    """Explode a sweep onto the fabric queue (idempotent per grid)."""
    queue = FabricQueue(fabric.directory, lease_ttl=fabric.lease_ttl)
    return queue.submit(
        points,
        kind=runner_kind(runner),
        axes=axes,
        checkpoint_every=fabric.checkpoint_every,
    )


def collect_sweep(fabric: Fabric, axes: Tuple[SweepAxis, ...]) -> SweepResult:
    """Assemble a completed fabric queue into a :class:`SweepResult`.

    Results come out of the content-addressed store via each point's
    result marker; the marker's worker / cached / checkpoint facts merge
    into the sweep's manifests under ``"fabric"`` so provenance survives
    into reports.
    """
    queue = FabricQueue(fabric.directory, lease_ttl=fabric.lease_ttl)
    store = ResultStore(fabric.store_root, revision=fabric.revision)
    manifest = queue.require_manifest()
    sweep = SweepResult(tuple(axes))
    missing: List[str] = []
    for pid in manifest["point_ids"]:
        if not queue.has_result(pid):
            missing.append(pid)
            continue
        marker = queue.read_result(pid)
        key, spec = queue.load_point(pid)
        store_key = store.key_for(spec, repr(key))
        entry = store.get(store_key)
        if entry is None:
            # Corrupt or vanished after the marker was written: recompute
            # synchronously rather than fail the whole grid.
            runner = resolve_runner(manifest["kind"])
            result, run_manifest = _run_point(
                spec,
                runner,
                checkpoint_path=str(queue.checkpoint_path(pid)),
                checkpoint_every=int(
                    manifest.get("checkpoint_every", fabric.checkpoint_every)
                ),
                resume=True,
            )
            stored = dict(run_manifest or {})
            lineage = getattr(result, "checkpoint", None)
            if lineage is not None:
                stored["checkpoint"] = lineage
            store.put(store_key, result, stored or None)
            entry = (result, stored or None)
        result, stored_manifest = entry
        sweep.results[key] = result
        merged = dict(stored_manifest or {})
        merged["fabric"] = {
            "worker": marker.get("worker"),
            "cached": marker.get("cached"),
            "point_id": pid,
            "store_key": marker.get("store_key"),
        }
        if marker.get("checkpoint") is not None:
            merged.setdefault("checkpoint", marker["checkpoint"])
        sweep.manifests[key] = merged
    if missing:
        raise FabricError(
            f"fabric queue {fabric.directory} incomplete: "
            f"{len(missing)} points without results (e.g. {missing[:3]})"
        )
    return sweep


def run_sweep_on_fabric(
    base,
    axes,
    fabric: Fabric,
    runner,
) -> SweepResult:
    """Drive one sweep through the fabric: submit, drain locally, collect.

    Other workers (other terminals, other hosts sharing the directory)
    may be draining the same queue concurrently; this call contributes a
    local worker and returns once *every* point has a result, whoever
    computed it.  Re-running the identical sweep is a pure warm-cache
    pass: the submission is idempotent and every point hits the store.
    """
    from ..harness.sweep import sweep_points

    points = sweep_points(base, axes)
    submit_sweep(fabric, points, runner, axes=tuple(axes))
    worker = FabricWorker(fabric)
    worker.drain_until_complete()
    return collect_sweep(fabric, tuple(axes))
