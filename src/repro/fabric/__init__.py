"""Distributed content-addressed sweep fabric.

Three cooperating parts, all coordinated through a shared directory (a
local path or a cluster filesystem) with atomic file primitives — no
broker, no daemon:

* :mod:`repro.fabric.store` — content-addressed result cache keyed on
  ``(config digest, code revision, point key)``; an unchanged grid
  recomputes zero points, and staleness is structurally impossible.
* :mod:`repro.fabric.queue` — filesystem work queue with atomic lease
  files, heartbeats, and crash requeue: a dead worker's point is taken
  over and resumed from its latest checkpoint.
* :mod:`repro.fabric.worker` — the execution loop tying both to the
  existing sweep harness, plus fabric telemetry and health trails.

Entry points: ``run_sweep(fabric=Fabric(dir))`` from
:mod:`repro.harness.sweep`, or the ``repro fabric submit / work /
status / gc`` CLI verbs for multi-terminal and multi-host operation.
"""

from .queue import (
    Fabric,
    FabricError,
    FabricQueue,
    FabricSubmissionError,
    point_id,
    resolve_runner,
    runner_kind,
)
from .store import (
    ResultKey,
    ResultStore,
    StoreCorruptionError,
    StoreError,
    spec_key,
)
from .worker import (
    FabricWorker,
    collect_sweep,
    run_sweep_on_fabric,
    submit_sweep,
)

__all__ = [
    "Fabric",
    "FabricError",
    "FabricQueue",
    "FabricSubmissionError",
    "FabricWorker",
    "ResultKey",
    "ResultStore",
    "StoreCorruptionError",
    "StoreError",
    "collect_sweep",
    "point_id",
    "resolve_runner",
    "run_sweep_on_fabric",
    "runner_kind",
    "spec_key",
    "submit_sweep",
]
