"""QoS contract descriptions and verification.

A :class:`QosContract` states what a connection was promised (rate, and
optionally jitter/delay bounds); :func:`verify_contract` checks measured
statistics against it.  The MMR's admission control guarantees rate for
CBR connections and permanent rate for VBR; delay/jitter bounds are
empirical targets, not hard guarantees (paper §4.3 explicitly accepts
that low-priority VBR connections "may not be able to deliver all flits
on time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.config import RouterConfig
from ..sim.stats import ConnectionStats


@dataclass(frozen=True)
class QosContract:
    """The service a connection was admitted with."""

    connection_id: int
    rate_bps: float
    peak_rate_bps: Optional[float] = None  # VBR only
    max_mean_delay_cycles: Optional[float] = None
    max_mean_jitter_cycles: Optional[float] = None

    @property
    def is_vbr(self) -> bool:
        """True when a distinct peak rate was contracted."""
        return self.peak_rate_bps is not None and self.peak_rate_bps > self.rate_bps


@dataclass(frozen=True)
class ContractViolation:
    """One observed breach of a contract clause."""

    connection_id: int
    clause: str
    expected: float
    observed: float

    def __str__(self) -> str:
        return (
            f"connection {self.connection_id}: {self.clause} "
            f"expected <= {self.expected:.4g}, observed {self.observed:.4g}"
        )


def expected_flits(
    contract: QosContract, config: RouterConfig, cycles: int
) -> float:
    """Flits the contracted rate should deliver over ``cycles``."""
    return cycles / config.rate_to_interarrival_cycles(contract.rate_bps)


def verify_contract(
    contract: QosContract,
    stats: ConnectionStats,
    config: RouterConfig,
    cycles: int,
    throughput_tolerance: float = 0.1,
) -> List[ContractViolation]:
    """Check measured per-connection statistics against the contract.

    Returns a list of violations (empty when the contract held).  The
    throughput clause allows ``throughput_tolerance`` relative slack for
    edge effects at the measurement-window boundaries.
    """
    violations: List[ContractViolation] = []
    promised = expected_flits(contract, config, cycles)
    floor = promised * (1.0 - throughput_tolerance) - 1.0
    if stats.flits < floor:
        violations.append(
            ContractViolation(
                contract.connection_id, "throughput_flits", floor, stats.flits
            )
        )
    if contract.max_mean_delay_cycles is not None:
        if stats.delay.mean > contract.max_mean_delay_cycles:
            violations.append(
                ContractViolation(
                    contract.connection_id,
                    "mean_delay_cycles",
                    contract.max_mean_delay_cycles,
                    stats.delay.mean,
                )
            )
    if contract.max_mean_jitter_cycles is not None:
        if stats.jitter.mean > contract.max_mean_jitter_cycles:
            violations.append(
                ContractViolation(
                    contract.connection_id,
                    "mean_jitter_cycles",
                    contract.max_mean_jitter_cycles,
                    stats.jitter.mean,
                )
            )
    return violations
