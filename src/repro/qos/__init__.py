"""QoS metric definitions and contract verification."""

from .guarantees import ContractViolation, QosContract, expected_flits, verify_contract
from .queueing import (
    md1_mean_sojourn,
    md1_mean_wait,
    nd_d1_mean_wait,
    nd_d1_worst_case_wait,
    saturation_load_hol_blocking,
)
from .metrics import UNCLASSIFIED, QosSummary, per_rate_breakdown, summarise, summarise_weighted

__all__ = [
    "ContractViolation",
    "QosContract",
    "expected_flits",
    "verify_contract",
    "QosSummary",
    "UNCLASSIFIED",
    "per_rate_breakdown",
    "summarise",
    "summarise_weighted",
    "md1_mean_sojourn",
    "md1_mean_wait",
    "nd_d1_mean_wait",
    "nd_d1_worst_case_wait",
    "saturation_load_hol_blocking",
]
