"""Analytic queueing references for sanity-checking simulated delays.

The single-router CBR experiment superposes n periodic (deterministic)
flit streams on each link — the classic **ΣD/D/1** setting from ATM CBR
analysis — while the perfect switch reduces each input port to exactly
that queue.  These closed forms bound what any correct simulation of the
same traffic can report, and the test suite holds the simulator to them:

* M/D/1 mean wait (Pollaczek–Khinchine): an *upper*-envelope reference —
  periodic streams are smoother than Poisson, so the simulated mean delay
  at matched utilisation must fall below it.
* ΣD/D/1 worst-case wait: with n homogeneous streams of period T ≥ n, no
  flit ever waits more than n-1 slots (each competitor contributes at
  most one flit per period).
"""

from __future__ import annotations

import math


def md1_mean_wait(utilisation: float) -> float:
    """M/D/1 mean waiting time, in service times (P-K formula).

    W = rho / (2 (1 - rho)).  Diverges at rho -> 1.
    """
    if not 0.0 <= utilisation < 1.0:
        raise ValueError(f"utilisation must be in [0, 1), got {utilisation}")
    return utilisation / (2.0 * (1.0 - utilisation))


def md1_mean_sojourn(utilisation: float) -> float:
    """M/D/1 mean sojourn (wait + the unit service time)."""
    return md1_mean_wait(utilisation) + 1.0


def nd_d1_worst_case_wait(num_streams: int, period: float) -> float:
    """Worst-case wait of n homogeneous D streams sharing a unit server.

    Every other stream contributes at most one flit per period, so a
    tagged arrival finds at most n-1 flits ahead of it; with period >= n
    the backlog cannot compound across periods.
    """
    if num_streams <= 0:
        raise ValueError(f"num_streams must be positive, got {num_streams}")
    if period < num_streams:
        raise ValueError(
            f"unstable: {num_streams} unit demands per period {period}"
        )
    return float(num_streams - 1)


def nd_d1_mean_wait(num_streams: int, period: float) -> float:
    """Mean wait of n homogeneous D streams with uniform random phases.

    Exact for the nD/D/1 queue (Eckberg / ATM literature):
    W = (n - 1) / 2 * (1 - (n - 1) / ... ) simplified conservative form
    (n-1)/2 * 1/period * (period - n + 1 + (n-1)/2) / (period - n + 1)
    is unwieldy; we use the standard tight approximation
    W ~= rho * (n - 1) / (2 n (1 - rho) + rho) scaled by the service
    time, which matches simulation within a few percent for n >= 8.
    """
    if num_streams <= 0:
        raise ValueError(f"num_streams must be positive, got {num_streams}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    rho = num_streams / period
    if rho >= 1.0:
        raise ValueError(f"unstable: utilisation {rho:.3f} >= 1")
    if num_streams == 1:
        return 0.0
    return rho * (num_streams - 1) / (2 * num_streams * (1 - rho) + rho)


def saturation_load_hol_blocking(num_ports: int) -> float:
    """Throughput limit of FIFO head-of-line blocking, uniform traffic.

    Karol/Hluchyj/Morgan: 2 - sqrt(2) ~= 0.586 as N -> infinity; finite-N
    values are a little higher.  The MMR's C=1 candidate configuration
    behaves like a HOL-blocked input-queued switch, so its measured
    saturation point should sit near this value.
    """
    if num_ports <= 0:
        raise ValueError(f"num_ports must be positive, got {num_ports}")
    if num_ports == 1:
        return 1.0
    # Finite-N correction (exact values from the literature for small N).
    known = {2: 0.75, 3: 0.6825, 4: 0.6553, 8: 0.6184}
    if num_ports in known:
        return known[num_ports]
    return 2.0 - math.sqrt(2.0)
