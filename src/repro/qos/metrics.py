"""QoS metric definitions (paper §5).

* **Delay** of a flit: the difference between the time it is ready to be
  transmitted through the switch and the time it actually leaves the
  switch, in flit cycles (convertible to microseconds through the router
  configuration).
* **Jitter** of a connection: the difference in the delays of successive
  flits on that connection, folded in as absolute values and reported in
  flit cycles ("flits emerge from the network at flit cycle boundaries and
  jitter occurs as an integer number of flit cycles").

Reported figures average these per-connection quantities over all
connections, which is how the paper's plots are built ("these jitter
values are averaged over a large range of connection speeds").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from ..core.config import RouterConfig
from ..sim.stats import ConnectionStats, RunningStats


@dataclass(frozen=True)
class QosSummary:
    """Aggregate delay/jitter over a set of connections."""

    mean_delay_cycles: float
    mean_jitter_cycles: float
    max_delay_cycles: float
    max_jitter_cycles: float
    flits_delivered: int
    connections: int

    def mean_delay_us(self, config: RouterConfig) -> float:
        """Mean delay converted to microseconds for the given link speed."""
        return config.cycles_to_us(self.mean_delay_cycles)

    def max_delay_us(self, config: RouterConfig) -> float:
        """Maximum per-connection mean delay in microseconds."""
        return config.cycles_to_us(self.max_delay_cycles)


def summarise(connection_stats: Mapping[int, ConnectionStats]) -> QosSummary:
    """Aggregate per-connection statistics the way the paper reports them.

    Each connection contributes its *mean* delay and *mean* jitter; the
    summary averages those per-connection means over connections that
    delivered at least one flit (two, for jitter), so slow connections are
    not swamped by fast ones.
    """
    delay_means = RunningStats()
    jitter_means = RunningStats()
    flits = 0
    active = 0
    for stats in connection_stats.values():
        if stats.flits == 0:
            continue
        active += 1
        flits += stats.flits
        delay_means.add(stats.delay.mean)
        if stats.jitter.count:
            jitter_means.add(stats.jitter.mean)
    return QosSummary(
        mean_delay_cycles=delay_means.mean,
        mean_jitter_cycles=jitter_means.mean,
        max_delay_cycles=delay_means.maximum if delay_means.count else 0.0,
        max_jitter_cycles=jitter_means.maximum if jitter_means.count else 0.0,
        flits_delivered=flits,
        connections=active,
    )


def summarise_weighted(connection_stats: Mapping[int, ConnectionStats]) -> QosSummary:
    """Flit-weighted alternative aggregation (each flit counts equally).

    Provided for sensitivity analysis: fast connections dominate, which
    emphasises the QoS of high-bandwidth video streams.
    """
    delay = RunningStats()
    jitter = RunningStats()
    flits = 0
    active = 0
    for stats in connection_stats.values():
        if stats.flits == 0:
            continue
        active += 1
        flits += stats.flits
        delay.merge(_copy(stats.delay))
        jitter.merge(_copy(stats.jitter))
    return QosSummary(
        mean_delay_cycles=delay.mean,
        mean_jitter_cycles=jitter.mean,
        max_delay_cycles=delay.maximum if delay.count else 0.0,
        max_jitter_cycles=jitter.maximum if jitter.count else 0.0,
        flits_delivered=flits,
        connections=active,
    )


def _copy(stats: RunningStats) -> RunningStats:
    clone = RunningStats()
    clone.merge(stats)
    return clone


#: Breakdown key for connections absent from ``connection_rates``.
UNCLASSIFIED = "unclassified"


def per_rate_breakdown(
    connection_stats: Mapping[int, ConnectionStats],
    connection_rates: Mapping[int, float],
    strict: bool = False,
) -> Dict[object, QosSummary]:
    """Group QoS by connection rate (paper: "Actual jitter values for
    high-speed connections will be even less and those for low-speed
    connections will be relatively higher").

    Connections missing from ``connection_rates`` are *not* silently
    dropped (that would mask mislabeled sessions): they are grouped under
    the explicit :data:`UNCLASSIFIED` key, or — with ``strict=True`` —
    raise ``ValueError`` naming the offending connection ids.
    """
    by_rate: Dict[float, Dict[int, ConnectionStats]] = {}
    unclassified: Dict[int, ConnectionStats] = {}
    for connection_id, stats in connection_stats.items():
        rate = connection_rates.get(connection_id)
        if rate is None:
            unclassified[connection_id] = stats
            continue
        by_rate.setdefault(rate, {})[connection_id] = stats
    if unclassified and strict:
        missing = ", ".join(str(cid) for cid in sorted(unclassified))
        raise ValueError(
            f"{len(unclassified)} connection(s) missing from "
            f"connection_rates: {missing}"
        )
    breakdown: Dict[object, QosSummary] = {
        rate: summarise(group) for rate, group in sorted(by_rate.items())
    }
    if unclassified:
        breakdown[UNCLASSIFIED] = summarise(unclassified)
    return breakdown
