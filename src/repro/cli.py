"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — one point of the single-router evaluation grid (or several
  loads fanned out over ``--jobs`` worker processes).
* ``sweep`` — a cartesian design-space sweep (``--axis name=v1,v2,...``)
  over spec or router-config parameters, optionally parallel.
* ``figures`` — regenerate Figure 3/4/5 tables (alias for
  ``python -m repro.harness.figures``).
* ``saturation`` — bisect a scheduler variant's saturation load.
* ``obs`` — run a point with the flight recorder on and export the
  telemetry, kernel profile and Perfetto-loadable flit trace.
* ``churn`` — open-loop session-churn workload over the probe protocol,
  with optional ``--slo`` budgets (breach exits 2), health-snapshot
  trails and a ``--report-out`` HTML dashboard.
* ``report`` — render the run-health dashboard (or a sweep rollup page)
  from previously exported health/export artefacts.
* ``ckpt`` — checkpoint tooling (``ckpt inspect <file>`` dumps a
  checkpoint's header and per-component sizes without unpickling it).
* ``info`` — print the paper configuration's derived quantities.

``run`` accepts ``--checkpoint-every N --checkpoint-out PATH`` to write
periodic checkpoints, and ``--resume-from PATH`` to continue a run from
its latest checkpoint — results are bit-identical to a straight run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from .ckpt.codec import CheckpointCodec, CheckpointError
from .core.config import RouterConfig
from .harness.churn import ChurnSpec, run_churn_experiment
from .harness.figures import main as figures_main
from .harness.network_experiment import (
    NetworkExperimentSpec,
    run_network_experiment,
)
from .harness.export import write_trace_json
from .harness.report import format_kernel_profile, format_telemetry
from .harness.saturation import find_saturation_load
from .harness.single_router import (
    PAPER_CONFIG,
    SCHEDULERS,
    ExperimentSpec,
    run_single_router_experiment,
)
from .harness.sweep import Checkpointing, SweepAxis, run_sweep
from .obs.health import merge_health, read_health
from .obs.report import render_report, render_rollup
from .obs.slo import SloBudget

#: Field names an ``--axis`` may target, and where each one lives.
_SPEC_FIELDS = {f.name for f in dataclasses.fields(ExperimentSpec)}
_CONFIG_FIELDS = {f.name for f in dataclasses.fields(RouterConfig)}
_CHURN_FIELDS = {f.name for f in dataclasses.fields(ChurnSpec)}
_NETWORK_FIELDS = {f.name for f in dataclasses.fields(NetworkExperimentSpec)}


def _add_spec_arguments(
    parser: argparse.ArgumentParser, multi_load: bool = False
) -> None:
    if multi_load:
        parser.add_argument(
            "--load", type=float, nargs="+", default=[0.8], metavar="LOAD",
            help="offered load(s); several values fan out over --jobs",
        )
    else:
        parser.add_argument("--load", type=float, default=0.8, help="offered load")
    parser.add_argument(
        "--scheduler", choices=SCHEDULERS, default="greedy",
        help="switch scheduler variant",
    )
    parser.add_argument(
        "--priority", default="biased",
        help="priority scheme: biased, fixed, age, rate, static, frozen",
    )
    parser.add_argument("--candidates", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup", type=int, default=20000, help="warm-up cycles")
    parser.add_argument("--cycles", type=int, default=100000, help="measured cycles")
    parser.add_argument(
        "--columnar", action="store_true",
        help="columnar (NumPy) scheduling state; needs the repro[fast] extra",
    )


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    """Cluster-shape options shared by ``network`` and ``sweep --network``."""
    parser.add_argument(
        "--link-load", type=float, default=0.4,
        help="target mean router-to-router link utilisation",
    )
    parser.add_argument(
        "--nodes", type=int, default=12,
        help="node count (irregular topology only)",
    )
    parser.add_argument(
        "--best-effort", type=float, default=0.0,
        help="best-effort packets per node per 100 cycles",
    )
    parser.add_argument(
        "--topology", default="irregular", metavar="NAME",
        help="irregular (default), mesh<W>x<H> or torus<W>x<H>",
    )
    parser.add_argument(
        "--routing", choices=("adaptive", "dimension_order"),
        default="adaptive",
        help="probe + best-effort routing (dimension_order needs a grid)",
    )
    parser.add_argument(
        "--arena", action="store_true",
        help="network-wide columnar arena: ring-buffered links and "
             "wake-masked router stepping; needs the repro[fast] extra",
    )


def _spec_from_args(
    args: argparse.Namespace,
    telemetry: bool = False,
    load: Optional[float] = None,
) -> ExperimentSpec:
    return ExperimentSpec(
        target_load=args.load if load is None else load,
        scheduler=args.scheduler,
        priority=args.priority,
        candidates=args.candidates,
        seed=args.seed,
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        telemetry=telemetry or getattr(args, "telemetry", False),
        columnar_state=getattr(args, "columnar", False),
    )


def _result_payload(result) -> dict:
    return {
        "offered_load": result.offered_load,
        "connections": result.connections,
        "utilisation": result.utilisation,
        "mean_delay_cycles": result.mean_delay_cycles,
        "mean_delay_us": result.mean_delay_us,
        "mean_jitter_cycles": result.mean_jitter_cycles,
        "per_connection_delay_cycles": result.per_connection.mean_delay_cycles,
        "per_connection_jitter_cycles": result.per_connection.mean_jitter_cycles,
        "max_interface_backlog": result.max_interface_backlog,
    }


def _print_payload(payload: dict, indent: str = "") -> None:
    for key, value in payload.items():
        print(f"{indent}{key:>30}: {value:.4f}" if isinstance(value, float) else
              f"{indent}{key:>30}: {value}")


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment point (or several loads) and print the metrics."""
    loads = list(args.load)
    checkpointed = args.checkpoint_every is not None or args.resume_from is not None
    if checkpointed and len(loads) > 1:
        print("--checkpoint-every/--resume-from are single-point only; "
              "use one --load (or run_sweep's checkpointing)", file=sys.stderr)
        return 2
    if len(loads) > 1:
        # Several loads: one experiment per load, fanned out over --jobs
        # worker processes (telemetry/trace export is single-point only).
        sweep = run_sweep(
            _spec_from_args(args, load=loads[0]),
            [SweepAxis("target_load", tuple(loads))],
            jobs=args.jobs,
        )
        points = [
            {"target_load": load, **_result_payload(sweep.results[(load,)])}
            for load in loads
        ]
        if args.json:
            print(json.dumps({"points": points}, indent=2))
        else:
            for point in points:
                print(f"load {point['target_load']:g}:")
                _print_payload(
                    {k: v for k, v in point.items() if k != "target_load"}
                )
        return 0
    if checkpointed:
        path = args.resume_from or args.checkpoint_out
        if path is None:
            print("--checkpoint-every needs --checkpoint-out PATH (or "
                  "--resume-from an existing checkpoint)", file=sys.stderr)
            return 2
        try:
            result = run_single_router_experiment(
                _spec_from_args(args, load=loads[0]),
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=path,
                resume=args.resume_from is not None,
            )
        except CheckpointError as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return 1
    else:
        result = run_single_router_experiment(_spec_from_args(args, load=loads[0]))
    payload = _result_payload(result)
    if result.checkpoint is not None:
        payload["checkpoint"] = result.checkpoint
    recorder = result.recorder
    if recorder is not None:
        payload["telemetry_channels"] = recorder.telemetry.names()
        payload["trace_events"] = len(recorder.events)
        payload["config_digest"] = recorder.manifest.get("config_digest")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        _print_payload(payload)
        if recorder is not None:
            print()
            print(format_telemetry(recorder.telemetry.snapshot()))
            print()
            print(format_kernel_profile(recorder.kernel_snapshot()))
    if recorder is not None and args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            write_trace_json(recorder, stream)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Run one point with the flight recorder on; export its artefacts."""
    result = run_single_router_experiment(_spec_from_args(args, telemetry=True))
    recorder = result.recorder
    assert recorder is not None
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            write_trace_json(recorder, stream)
    if args.export_out:
        with open(args.export_out, "w", encoding="utf-8") as stream:
            json.dump(recorder.export(), stream, indent=2, sort_keys=True)
            stream.write("\n")
    dropped = recorder.dropped_summary()
    if args.json:
        print(
            json.dumps(
                {
                    "manifest": recorder.manifest,
                    "telemetry": recorder.telemetry.snapshot(),
                    "kernel": recorder.kernel_snapshot(),
                    "trace_events": len(recorder.events),
                    "trace_dropped": recorder.dropped,
                    "dropped": dropped,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        manifest = recorder.manifest
        print(
            f"run manifest: seed={manifest.get('seed')} "
            f"config={manifest.get('config_digest')} "
            f"rev={manifest.get('git_revision')} "
            f"at={manifest.get('created_iso')}"
        )
        print(f"trace: {len(recorder.events)} events "
              f"({recorder.dropped} dropped)")
        if dropped["channels"]:
            per_channel = ", ".join(
                f"{name}={count}" for name, count in dropped["channels"].items()
            )
            print(f"telemetry rings dropped samples: {per_channel}")
        print()
        print(format_telemetry(recorder.telemetry.snapshot()))
        print()
        print(format_kernel_profile(recorder.kernel_snapshot()))
        if args.trace_out:
            print(f"\ntrace written to {args.trace_out}")
        if args.export_out:
            print(f"export written to {args.export_out}")
    return 0


def _parse_axis_value(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_axis(text: str) -> SweepAxis:
    """Parse ``name=v1,v2,...`` into a SweepAxis, inferring the target.

    Axis names are looked up among :class:`ExperimentSpec` fields first
    ('spec' target), then :class:`RouterConfig` fields ('config' target,
    applied via ``config.with_``).
    """
    name, sep, values_text = text.partition("=")
    values = tuple(
        _parse_axis_value(v) for v in values_text.split(",") if v != ""
    )
    if not sep or not values:
        raise argparse.ArgumentTypeError(
            f"axis must look like name=v1,v2,... (got {text!r})"
        )
    if name in _SPEC_FIELDS:
        target = "spec"
    elif name in _CONFIG_FIELDS:
        target = "config"
    else:
        raise argparse.ArgumentTypeError(
            f"unknown axis {name!r}: not an ExperimentSpec or RouterConfig field"
        )
    return SweepAxis(name, values, target)


def _parse_network_axis(text: str) -> SweepAxis:
    """Parse ``name=v1,v2,...`` against :class:`NetworkExperimentSpec`."""
    name, sep, values_text = text.partition("=")
    values = tuple(
        _parse_axis_value(v) for v in values_text.split(",") if v != ""
    )
    if not sep or not values:
        raise argparse.ArgumentTypeError(
            f"axis must look like name=v1,v2,... (got {text!r})"
        )
    if name not in _NETWORK_FIELDS:
        raise argparse.ArgumentTypeError(
            f"unknown axis {name!r}: not a NetworkExperimentSpec field"
        )
    return SweepAxis(name, values, "spec")


def _network_spec_from_args(
    args: argparse.Namespace, **overrides: Any
) -> NetworkExperimentSpec:
    kwargs = dict(
        target_link_load=args.link_load,
        num_nodes=args.nodes,
        best_effort_rate=args.best_effort,
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        columnar_state=getattr(args, "columnar", False),
        network_arena=args.arena,
        topology=args.topology,
        routing=args.routing,
    )
    kwargs.update(overrides)
    return NetworkExperimentSpec(**kwargs)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a design-space sweep and print its metric table.

    ``--network`` sweeps :class:`NetworkExperimentSpec` axes (topology,
    routing, target_link_load, ...) over the multi-router cluster
    instead of the single-router grid; points are checkpoint-resumable
    with ``--checkpoint-dir``.
    """
    parse_axis = _parse_network_axis if args.network else _parse_axis
    try:
        axes = [parse_axis(text) for text in args.axis]
    except argparse.ArgumentTypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.network:
        checkpointing = None
        if args.checkpoint_dir is not None:
            checkpointing = Checkpointing(
                directory=args.checkpoint_dir,
                every=args.checkpoint_every,
                resume=True,
            )
        # A swept field overrides every point, so seed the base spec
        # from the axis's first value — otherwise e.g. a topology sweep
        # under dimension_order routing would fail base-spec validation
        # against the irregular default.
        base_overrides = {
            axis.name: axis.values[0]
            for axis in axes
            if axis.name in ("topology", "routing")
        }
        sweep = run_sweep(
            _network_spec_from_args(args, **base_overrides),
            axes,
            jobs=args.jobs,
            checkpointing=checkpointing,
            _runner=run_network_experiment,
        )
        default_metrics = "mean_delay_cycles,mean_jitter_cycles,acceptance_ratio"
    else:
        sweep = run_sweep(_spec_from_args(args), axes, jobs=args.jobs)
        default_metrics = "mean_delay_us,mean_jitter_cycles,utilisation"
    metrics = (args.metrics or default_metrics).split(",")
    rows = sweep.rows(metrics)
    header = [axis.name for axis in axes] + metrics
    if args.json:
        print(json.dumps({"columns": header, "rows": rows}, indent=2))
        return 0
    cells = [
        [f"{v:.4f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in cells))
        for i in range(len(header))
    ]
    print("  ".join(name.rjust(w) for name, w in zip(header, widths)))
    for row in cells:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return 0


def _fabric_from_args(args: argparse.Namespace):
    from .fabric import Fabric

    return Fabric(
        directory=args.directory,
        lease_ttl=args.ttl,
        heartbeat_every=args.heartbeat_every,
        checkpoint_every=getattr(args, "checkpoint_every", 10000),
        store_dir=getattr(args, "store_dir", None),
    )


def _fabric_grid_from_args(args: argparse.Namespace):
    """Build the (points, runner, axes) triple a fabric submission needs.

    Mirrors :func:`cmd_sweep`'s spec construction so ``repro fabric
    submit`` accepts the same ``--axis`` grammar (and ``--network``) as
    ``repro sweep``.
    """
    from .harness.sweep import sweep_points

    parse_axis = _parse_network_axis if args.network else _parse_axis
    axes = [parse_axis(text) for text in args.axis]
    if args.network:
        base_overrides = {
            axis.name: axis.values[0]
            for axis in axes
            if axis.name in ("topology", "routing")
        }
        base = _network_spec_from_args(args, **base_overrides)
        runner = run_network_experiment
    else:
        base = _spec_from_args(args)
        runner = run_single_router_experiment
    return sweep_points(base, axes), runner, axes


def cmd_fabric_submit(args: argparse.Namespace) -> int:
    """Explode a sweep onto a fabric directory's work queue."""
    from .fabric import submit_sweep

    fabric = _fabric_from_args(args)
    try:
        points, runner, axes = _fabric_grid_from_args(args)
    except argparse.ArgumentTypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifest = submit_sweep(fabric, points, runner, axes=tuple(axes))
    print(
        f"submitted grid {manifest['grid_digest']} "
        f"({manifest['points']} points, kind {manifest['kind']}) "
        f"to {fabric.directory}"
    )
    print("start workers with: repro fabric work", str(fabric.directory))
    return 0


def cmd_fabric_work(args: argparse.Namespace) -> int:
    """Drain a fabric queue as one worker (any host sharing the dir)."""
    from .fabric import FabricWorker

    fabric = _fabric_from_args(args)
    worker = FabricWorker(
        fabric,
        kill_after_checkpoints=args.kill_after_checkpoints,
    )
    if args.until_complete:
        done = worker.drain_until_complete(timeout=args.timeout)
    else:
        done = worker.drain(max_points=args.max_points)
    stats = worker.store.stats()
    print(
        f"worker {worker.worker_id}: {done} points finished "
        f"({worker.points_computed} computed, {worker.points_cached} cached, "
        f"{worker.points_resumed} resumed from checkpoint); "
        f"store hits {stats['hits']}, misses {stats['misses']}"
    )
    return 0


def cmd_fabric_status(args: argparse.Namespace) -> int:
    """Queue depth, lease health and cache accounting for a fabric dir."""
    from .fabric import FabricQueue, ResultStore

    fabric = _fabric_from_args(args)
    queue = FabricQueue(fabric.directory, lease_ttl=fabric.lease_ttl)
    status = queue.status()
    store = ResultStore(fabric.store_root)
    status["store"] = {**store.stats(), "entries": store.entries()}
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"fabric {status['directory']} [grid {status['grid_digest']}]")
    print(
        f"  points: {status['completed']}/{status['points']} complete "
        f"({status['cached']} cached, {status['resumed']} resumed), "
        f"queue depth {status['queue_depth']}"
    )
    print(
        f"  leases: {len(status['leases_live'])} live, "
        f"{len(status['leases_expired'])} expired, "
        f"{status['lease_expiries_logged']} expiries logged"
    )
    print(f"  store: {status['store']['entries']} entries at {status['store']['root']}")
    return 0 if status["complete"] else 1


def cmd_fabric_gc(args: argparse.Namespace) -> int:
    """Clear expired leases, staging files, and stale store entries."""
    from .fabric import FabricQueue, ResultStore
    from .obs.manifest import git_revision

    fabric = _fabric_from_args(args)
    queue = FabricQueue(fabric.directory, lease_ttl=fabric.lease_ttl)
    report = queue.gc()
    store = ResultStore(fabric.store_root)
    keep = git_revision() or "unknown" if args.prune_old_revisions else None
    report["store"] = store.gc(keep_revision=keep)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_saturation(args: argparse.Namespace) -> int:
    """Bisect the saturation load of the selected variant."""
    base = _spec_from_args(args)
    estimate = find_saturation_load(base, tolerance=args.tolerance)
    print(f"variant: scheduler={base.scheduler} priority={base.priority} "
          f"candidates={base.candidates}")
    for load, saturated in estimate.samples:
        print(f"  load {load:.3f}: {'SATURATED' if saturated else 'stable'}")
    print(f"saturation load ~= {estimate.estimate:.3f} "
          f"(stable up to {estimate.stable_load:.3f})")
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    """Run the network-level (multi-router) experiment."""
    spec = _network_spec_from_args(args)
    result = run_network_experiment(spec)
    payload = {
        "streams": result.streams,
        "acceptance_ratio": result.acceptance_ratio,
        "mean_hops": result.mean_hops,
        "mean_delay_cycles": result.delay_cycles.mean,
        "delay_per_hop_cycles": result.delay_per_hop,
        "mean_jitter_cycles": result.jitter_cycles.mean,
        "best_effort_delivered": result.best_effort_delivered,
        "links_searched": result.links_searched,
        "backtracks": result.backtracks,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>25}: {value:.4f}" if isinstance(value, float) else
                  f"{key:>25}: {value}")
    return 0


def _parse_churn_axis(text: str) -> SweepAxis:
    """Parse ``name=v1,v2,...`` against :class:`ChurnSpec` fields."""
    name, sep, values_text = text.partition("=")
    values = tuple(
        _parse_axis_value(v) for v in values_text.split(",") if v != ""
    )
    if not sep or not values:
        raise argparse.ArgumentTypeError(
            f"axis must look like name=v1,v2,... (got {text!r})"
        )
    if name not in _CHURN_FIELDS:
        raise argparse.ArgumentTypeError(
            f"unknown axis {name!r}: not a ChurnSpec field"
        )
    return SweepAxis(name, values, "spec")


def _parse_slo(text: str) -> str:
    """Validate a ``metric=limit`` budget; keep it as text for ChurnSpec."""
    try:
        SloBudget.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _churn_payload(result) -> dict:
    return {
        "arrivals": result.arrivals,
        "established": result.established,
        "blocked": result.blocked,
        "torn_down": result.torn_down,
        "blocking_probability": result.blocking_probability,
        "setup_p50_cycles": result.setup_p50,
        "setup_p99_cycles": result.setup_p99,
        "setup_mean_cycles": result.setup_mean,
        "mean_delay_cycles": result.mean_delay_cycles,
        "mean_jitter_cycles": result.mean_jitter_cycles,
        "flits_delivered": result.flits_delivered,
        "renegotiations_applied": result.renegotiations_applied,
        "renegotiations_refused": result.renegotiations_refused,
        "teardown_retries": result.teardown_retries,
        "links_searched": result.links_searched,
        "backtracks": result.backtracks,
        "unclassified_connections": result.unclassified_connections,
        "drained": result.drained,
        "leak_free": result.leak_free,
        "slo_ok": result.slo_ok,
        "slo_state": result.slo_state,
        "slo_violations": result.slo_violations,
        "violating_sessions": result.violating_sessions,
    }


def cmd_churn(args: argparse.Namespace) -> int:
    """Run the session-churn workload (single point or --axis sweep).

    Exit status: 0 healthy; 1 when the post-drain resource-leak
    invariant fails (at any sweep point); 2 when every invariant holds
    but a declared ``--slo`` budget tripped.  Both are CI gates.
    """
    telemetry = args.telemetry or bool(
        args.trace_out or args.export_out or args.report_out
    )
    spec = ChurnSpec(
        num_sessions=args.sessions,
        mean_interarrival_cycles=args.interarrival,
        mean_holding_cycles=args.holding,
        vbr_fraction=args.vbr_fraction,
        renegotiation_fraction=args.renegotiation_fraction,
        diurnal_amplitude=args.diurnal_amplitude,
        num_nodes=args.nodes,
        seed=args.seed,
        telemetry=telemetry,
        police=not args.no_police,
        slos=tuple(args.slo),
        exact_setup_stats=args.exact_setup_stats,
        columnar_state=args.columnar,
        network_arena=args.arena,
    )
    checkpointing = None
    if args.checkpoint_dir is not None:
        checkpointing = Checkpointing(
            directory=args.checkpoint_dir,
            every=args.checkpoint_every,
            resume=True,
        )
    if args.axis:
        sweep = run_sweep(
            spec,
            args.axis,
            jobs=args.jobs,
            checkpointing=checkpointing,
            _runner=run_churn_experiment,
        )
        header = [axis.name for axis in args.axis] + [
            "blocking_probability", "setup_p50_cycles", "setup_p99_cycles",
            "mean_delay_cycles", "leak_free",
        ]
        rows = sweep.rows(
            ["blocking_probability", "setup_p50", "setup_p99",
             "mean_delay_cycles", "leak_free"]
        )
        leaky = [
            key for key, result in sweep.results.items() if not result.leak_free
        ]
        breached = [
            key for key, result in sweep.results.items() if not result.slo_ok
        ]

        def _point_label(key) -> str:
            return ",".join(
                f"{axis.name}={value}" for axis, value in zip(args.axis, key)
            )

        points = [
            (_point_label(key), result.health)
            for key, result in sorted(sweep.results.items())
            if result.health is not None
        ]
        rollup = merge_health(points) if points else None
        if rollup is not None and args.health_out:
            with open(args.health_out, "w", encoding="utf-8") as stream:
                json.dump(rollup, stream, indent=2, sort_keys=True)
                stream.write("\n")
        if rollup is not None and args.report_out:
            with open(args.report_out, "w", encoding="utf-8") as stream:
                stream.write(render_rollup(rollup, title="churn sweep health"))
        if args.json:
            print(json.dumps(
                {"columns": header, "rows": rows,
                 "leaky_points": [list(k) for k in leaky],
                 "slo_breached_points": [list(k) for k in breached]},
                indent=2,
            ))
        else:
            cells = [
                [f"{v:.4f}" if isinstance(v, float) else str(v) for v in row]
                for row in rows
            ]
            widths = [
                max(len(header[i]), *(len(row[i]) for row in cells))
                for i in range(len(header))
            ]
            print("  ".join(name.rjust(w) for name, w in zip(header, widths)))
            for row in cells:
                print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if leaky:
            print(f"resource-leak invariant FAILED at {len(leaky)} point(s)",
                  file=sys.stderr)
            return 1
        if breached:
            print(f"SLO budgets tripped at {len(breached)} point(s):",
                  file=sys.stderr)
            for key in breached:
                point = sweep.results[key]
                sessions = ", ".join(str(s) for s in point.violating_sessions)
                print(f"  {_point_label(key)}: "
                      f"{len(point.slo_violations)} violation(s)"
                      + (f", sessions {sessions}" if sessions else ""),
                      file=sys.stderr)
            return 2
        return 0
    if checkpointing is not None:
        result = run_churn_experiment(
            spec,
            checkpoint_every=checkpointing.every,
            checkpoint_path=str(checkpointing.point_path(("churn",))),
            resume=True,
            health_path=args.health_out,
            health_every=args.health_every,
        )
    else:
        result = run_churn_experiment(
            spec, health_path=args.health_out, health_every=args.health_every
        )
    payload = _churn_payload(result)
    if result.checkpoint is not None:
        payload["checkpoint"] = result.checkpoint
    recorder = result.recorder
    export = None
    if recorder is not None:
        payload["telemetry_channels"] = recorder.telemetry.names()
        payload["spans"] = len(recorder.spans)
        payload["dropped"] = recorder.dropped_summary()
        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as stream:
                write_trace_json(recorder, stream)
        if args.export_out or args.report_out:
            export = recorder.export()
        if args.export_out:
            with open(args.export_out, "w", encoding="utf-8") as stream:
                json.dump(export, stream, indent=2, sort_keys=True)
                stream.write("\n")
    if args.report_out and result.health is not None:
        # Full heartbeat trail when one was written; else just the final
        # snapshot (sparklines then come from the export, if any).
        trail = (
            read_health(args.health_out) if args.health_out
            else [result.health]
        )
        with open(args.report_out, "w", encoding="utf-8") as stream:
            stream.write(
                render_report(trail, export=export, title="churn run health")
            )
    if args.bench_out:
        with open(args.bench_out, "w", encoding="utf-8") as stream:
            json.dump({"churn": payload}, stream, indent=2, sort_keys=True)
            stream.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        printable = dict(payload)
        slo_state = printable.pop("slo_state")
        printable.pop("slo_violations")
        printable.pop("violating_sessions")
        printable.pop("dropped", None)
        _print_payload(printable)
        for budget in slo_state:
            status = "BREACHED" if budget["breached"] else "ok"
            print(f"{'slo ' + budget['metric']:>30}: {status} "
                  f"(observed {budget['observed']:.4g}, "
                  f"limit {budget['limit']:g}, "
                  f"samples {budget['samples']})")
        if recorder is not None:
            dropped = recorder.dropped_summary()
            if dropped["total"]:
                print(f"WARNING: {dropped['total']} observability samples "
                      f"dropped (trace {dropped['trace']}, "
                      f"spans {dropped['spans']}, telemetry rings "
                      f"{sum(dropped['channels'].values())})",
                      file=sys.stderr)
        if not result.leak_free:
            print("resource-leak invariant FAILED:", file=sys.stderr)
            for line in result.leak_report:
                print(f"  {line}", file=sys.stderr)
    if not result.leak_free:
        return 1
    if not result.slo_ok:
        print("SLO budgets tripped:", file=sys.stderr)
        for violation in result.slo_violations[:20]:
            where = ""
            if violation["session_id"] != -1:
                where = f" (session {violation['session_id']}"
                if violation["span_id"] != -1:
                    where += f", span {violation['span_id']}"
                where += ")"
            print(f"  {violation['metric']}={violation['observed']:.4g} > "
                  f"limit {violation['limit']:g} "
                  f"at cycle {violation['time']}{where}", file=sys.stderr)
        if len(result.slo_violations) > 20:
            print(f"  ... and {len(result.slo_violations) - 20} more",
                  file=sys.stderr)
        sessions = ", ".join(str(s) for s in result.violating_sessions)
        if sessions:
            print(f"  violating sessions: {sessions}", file=sys.stderr)
        return 2
    return 0


def cmd_ckpt_inspect(args: argparse.Namespace) -> int:
    """Describe a checkpoint from its header alone (no unpickling, so
    inspecting a corrupt or foreign file is safe)."""
    try:
        summary = CheckpointCodec.inspect(args.file)
    except (CheckpointError, OSError) as exc:
        print(f"cannot inspect {args.file}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    manifest = summary["manifest"]
    print(f"checkpoint: {summary['path']}")
    print(f"{'schema':>16}: {summary['schema']}")
    print(f"{'kind':>16}: {summary['kind']}")
    print(f"{'cycle':>16}: {summary['cycle']}")
    print(f"{'seed':>16}: {summary['seed']}")
    print(f"{'config digest':>16}: {summary['config_digest']}")
    print(f"{'git revision':>16}: {manifest.get('git_revision')}")
    print(f"{'written':>16}: {manifest.get('created_iso')}")
    print(f"{'file bytes':>16}: {summary['file_bytes']}")
    print(f"{'payload bytes':>16}: {summary['payload_bytes']}")
    print(f"{'payload sha256':>16}: {summary['payload_sha256'][:16]}...")
    if summary["sections"]:
        print("component sizes (standalone-encoded, shared state counted "
              "per component):")
        for name, size in summary["sections"].items():
            print(f"{name:>16}: {size}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a run-health HTML dashboard from exported artefacts.

    One ``--health`` trail renders a single-run dashboard (pair it with
    ``--export`` for full-resolution sparklines); several trails, or a
    pre-built ``--rollup``, render the sweep-level rollup page.
    """
    if args.rollup:
        rollup = json.loads(Path(args.rollup).read_text(encoding="utf-8"))
        html = render_rollup(rollup, title=args.title)
    elif len(args.health) > 1:
        points = []
        for path in args.health:
            snapshots = read_health(path)
            if snapshots:
                points.append((Path(path).stem, snapshots[-1]))
        if not points:
            print("no snapshots in any --health file", file=sys.stderr)
            return 1
        html = render_rollup(merge_health(points), title=args.title)
    elif args.health:
        snapshots = read_health(args.health[0])
        if not snapshots:
            print(f"no snapshots in {args.health[0]}", file=sys.stderr)
            return 1
        export = None
        if args.export:
            export = json.loads(
                Path(args.export).read_text(encoding="utf-8")
            )
        html = render_report(snapshots, export=export, title=args.title)
    else:
        print("report needs --health FILE (repeatable) or --rollup FILE",
              file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(html)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(html)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print the paper configuration's derived quantities."""
    config: RouterConfig = PAPER_CONFIG
    rows = [
        ("ports", config.num_ports),
        ("virtual channels / port", config.vcs_per_port),
        ("link rate (Gbps)", config.link_rate_bps / 1e9),
        ("flit size (bits)", config.flit_size_bits),
        ("flit cycle (ns)", round(config.flit_cycle_ns, 1)),
        ("phits / flit", config.phits_per_flit),
        ("round length (flit cycles)", config.round_length),
        ("aggregate bandwidth (Gbps)", config.aggregate_bandwidth_bps / 1e9),
    ]
    for name, value in rows:
        print(f"{name:>28}: {value}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MMR (HPCA 1999) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one experiment point")
    _add_spec_arguments(run_parser, multi_load=True)
    run_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes when several --load values are given",
    )
    run_parser.add_argument("--json", action="store_true", help="JSON output")
    run_parser.add_argument(
        "--telemetry", action="store_true",
        help="attach the flight recorder (telemetry + kernel profile)",
    )
    run_parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="with --telemetry: write the Perfetto trace JSON here",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="write a checkpoint to --checkpoint-out every CYCLES cycles",
    )
    run_parser.add_argument(
        "--checkpoint-out", default=None, metavar="PATH",
        help="checkpoint file path (atomically replaced; latest wins)",
    )
    run_parser.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="resume from an existing checkpoint instead of cycle 0 "
             "(bit-identical to a straight run)",
    )
    run_parser.set_defaults(func=cmd_run)

    obs_parser = sub.add_parser(
        "obs", help="flight-recorder run: telemetry, profile, trace export"
    )
    _add_spec_arguments(obs_parser)
    obs_parser.add_argument("--json", action="store_true", help="JSON output")
    obs_parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the Chrome/Perfetto trace-event JSON here",
    )
    obs_parser.add_argument(
        "--export-out", default=None, metavar="PATH",
        help="write the full recorder export (manifest+telemetry+trace) here",
    )
    obs_parser.set_defaults(func=cmd_obs)

    sweep_parser = sub.add_parser(
        "sweep", help="cartesian design-space sweep over spec/config axes"
    )
    _add_spec_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--axis", action="append", required=True,
        metavar="NAME=V1,V2,...",
        help="swept parameter (repeatable); ExperimentSpec or RouterConfig "
             "field name followed by comma-separated values "
             "(NetworkExperimentSpec fields with --network)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for sweep points"
    )
    sweep_parser.add_argument(
        "--metrics", default=None,
        help="comma-separated result attributes to tabulate (default: "
             "mean_delay_us,mean_jitter_cycles,utilisation; with --network: "
             "mean_delay_cycles,mean_jitter_cycles,acceptance_ratio)",
    )
    sweep_parser.add_argument(
        "--network", action="store_true",
        help="sweep the multi-router cluster (NetworkExperimentSpec axes: "
             "topology=mesh8x8,torus16x16,..., routing, target_link_load, ...)",
    )
    _add_network_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="with --network: periodic per-point checkpoints under DIR; "
             "rerunning the sweep resumes from them",
    )
    sweep_parser.add_argument(
        "--checkpoint-every", type=int, default=10000, metavar="CYCLES",
    )
    sweep_parser.add_argument("--json", action="store_true", help="JSON output")
    sweep_parser.set_defaults(func=cmd_sweep)

    figures_parser = sub.add_parser("figures", help="regenerate figure tables")
    figures_parser.add_argument("which", nargs="?", default="all",
                                choices=("fig3", "fig4", "fig5", "all"))
    figures_parser.add_argument("--full", action="store_true")
    figures_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the figure grid points",
    )
    figures_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent content-addressed figure cache: reruns with the "
             "same specs on the same commit recompute nothing",
    )
    figures_parser.set_defaults(
        func=lambda args: figures_main(
            [args.which]
            + (["--full"] if args.full else [])
            + ([f"--jobs={args.jobs}"] if args.jobs != 1 else [])
            + ([f"--cache-dir={args.cache_dir}"] if args.cache_dir else [])
        )
    )

    fabric_parser = sub.add_parser(
        "fabric",
        help="distributed sweep fabric: shared-directory work queue with "
             "leases, crash requeue and a content-addressed result cache",
    )
    fabric_sub = fabric_parser.add_subparsers(dest="fabric_command", required=True)

    def _add_fabric_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "directory",
            help="fabric coordination directory (shared filesystem for "
                 "multi-host operation)",
        )
        parser.add_argument(
            "--ttl", type=float, default=60.0, metavar="SECONDS",
            help="lease time-to-live: a worker silent this long is presumed "
                 "dead and its point is requeued (default 60)",
        )
        parser.add_argument(
            "--heartbeat-every", type=float, default=5.0, metavar="SECONDS",
            help="worker heartbeat period (default 5)",
        )
        parser.add_argument(
            "--store-dir", default=None, metavar="DIR",
            help="result store root (default: DIRECTORY/store); point "
                 "several fabrics at one store to share their cache",
        )

    submit_parser = fabric_sub.add_parser(
        "submit", help="explode a sweep grid onto the fabric work queue"
    )
    _add_fabric_arguments(submit_parser)
    _add_spec_arguments(submit_parser)
    submit_parser.add_argument(
        "--axis", action="append", required=True, metavar="NAME=V1,V2,...",
        help="swept parameter (repeatable), same grammar as `repro sweep`",
    )
    submit_parser.add_argument(
        "--network", action="store_true",
        help="sweep NetworkExperimentSpec axes over the multi-router cluster",
    )
    _add_network_arguments(submit_parser)
    submit_parser.add_argument(
        "--checkpoint-every", type=int, default=10000, metavar="CYCLES",
        help="per-point checkpoint period workers use (default 10000)",
    )
    submit_parser.set_defaults(func=cmd_fabric_submit)

    work_parser = fabric_sub.add_parser(
        "work", help="drain the queue as one worker (run on any sharing host)"
    )
    _add_fabric_arguments(work_parser)
    work_parser.add_argument(
        "--until-complete", action="store_true",
        help="keep polling until every point has a result (waits out other "
             "workers' live leases; requeues expired ones)",
    )
    work_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="with --until-complete: give up after this long",
    )
    work_parser.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="stop after finishing N points",
    )
    work_parser.add_argument(
        "--kill-after-checkpoints", type=int, default=None,
        help=argparse.SUPPRESS,  # crash drill: SIGKILL self after N checkpoints
    )
    work_parser.set_defaults(func=cmd_fabric_work)

    status_parser = fabric_sub.add_parser(
        "status", help="queue depth, lease health, cache accounting "
                       "(exit 0 when complete, 1 otherwise)"
    )
    _add_fabric_arguments(status_parser)
    status_parser.add_argument("--json", action="store_true")
    status_parser.set_defaults(func=cmd_fabric_status)

    gc_parser = fabric_sub.add_parser(
        "gc", help="clear expired leases, staging files and stale cache entries"
    )
    _add_fabric_arguments(gc_parser)
    gc_parser.add_argument(
        "--prune-old-revisions", action="store_true",
        help="also delete store entries from other code revisions (they "
             "can never hit again)",
    )
    gc_parser.set_defaults(func=cmd_fabric_gc)

    saturation_parser = sub.add_parser(
        "saturation", help="bisect a variant's saturation load"
    )
    _add_spec_arguments(saturation_parser)
    saturation_parser.add_argument("--tolerance", type=float, default=0.02)
    saturation_parser.set_defaults(func=cmd_saturation)

    network_parser = sub.add_parser(
        "network", help="multi-router cluster experiment"
    )
    _add_network_arguments(network_parser)
    network_parser.add_argument("--warmup", type=int, default=5000)
    network_parser.add_argument("--cycles", type=int, default=20000)
    network_parser.add_argument("--seed", type=int, default=1)
    network_parser.add_argument(
        "--columnar", action="store_true",
        help="columnar (NumPy) scheduling state; needs the repro[fast] extra",
    )
    network_parser.add_argument("--json", action="store_true")
    network_parser.set_defaults(func=cmd_network)

    churn_parser = sub.add_parser(
        "churn", help="open-loop session-churn workload over the probe protocol"
    )
    churn_parser.add_argument("--sessions", type=int, default=10000,
                              help="total session arrivals")
    churn_parser.add_argument("--interarrival", type=float, default=400.0,
                              help="mean Poisson inter-arrival gap (cycles)")
    churn_parser.add_argument("--holding", type=float, default=20000.0,
                              help="mean session lifetime (cycles)")
    churn_parser.add_argument("--vbr-fraction", type=float, default=0.3)
    churn_parser.add_argument("--renegotiation-fraction", type=float, default=0.25,
                              help="fraction of VBR sessions renegotiating mid-life")
    churn_parser.add_argument("--diurnal-amplitude", type=float, default=0.0,
                              help="sinusoidal arrival-rate modulation depth [0,1)")
    churn_parser.add_argument("--nodes", type=int, default=12)
    churn_parser.add_argument("--seed", type=int, default=1)
    churn_parser.add_argument("--no-police", action="store_true",
                              help="disable per-session token-bucket policing")
    churn_parser.add_argument("--telemetry", action="store_true",
                              help="attach the flight recorder (churn.* channels)")
    churn_parser.add_argument(
        "--axis", action="append", default=[], type=_parse_churn_axis,
        metavar="NAME=V1,V2,...",
        help="sweep a ChurnSpec field (repeatable); enables sweep mode",
    )
    churn_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for sweep points")
    churn_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="periodic checkpoints under DIR; rerunning resumes from them",
    )
    churn_parser.add_argument("--checkpoint-every", type=int, default=100000,
                              metavar="CYCLES")
    churn_parser.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write the churn metrics as a BENCH JSON artifact",
    )
    churn_parser.add_argument(
        "--slo", action="append", default=[], type=_parse_slo,
        metavar="METRIC=LIMIT",
        help="declare an SLO budget (repeatable): setup_p99=N, "
             "blocking_probability=F, jitter_mean=F, "
             "policer_refusal_rate=F; any trip exits 2",
    )
    churn_parser.add_argument(
        "--exact-setup-stats", action="store_true",
        help="keep the full setup-latency list (exact quantiles) instead "
             "of the default constant-space streaming estimators",
    )
    churn_parser.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="append periodic health snapshots as JSON Lines (single "
             "point) or write the sweep health rollup JSON (--axis mode)",
    )
    churn_parser.add_argument(
        "--health-every", type=int, default=5000, metavar="CYCLES",
        help="health-snapshot heartbeat period (with --health-out)",
    )
    churn_parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the Perfetto trace (flit events + control-plane "
             "spans); implies --telemetry",
    )
    churn_parser.add_argument(
        "--export-out", default=None, metavar="PATH",
        help="write the full recorder export JSON; implies --telemetry",
    )
    churn_parser.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the run-health HTML dashboard (rollup page in "
             "--axis mode); implies --telemetry",
    )
    churn_parser.add_argument(
        "--columnar", action="store_true",
        help="columnar (NumPy) scheduling state; needs the repro[fast] extra",
    )
    churn_parser.add_argument(
        "--arena", action="store_true",
        help="network-wide columnar arena: ring-buffered links and "
             "wake-masked router stepping; needs the repro[fast] extra",
    )
    churn_parser.add_argument("--json", action="store_true", help="JSON output")
    churn_parser.set_defaults(func=cmd_churn)

    ckpt_parser = sub.add_parser("ckpt", help="checkpoint tooling")
    ckpt_sub = ckpt_parser.add_subparsers(dest="ckpt_command", required=True)
    inspect_parser = ckpt_sub.add_parser(
        "inspect", help="dump a checkpoint's header and component sizes"
    )
    inspect_parser.add_argument("file", help="checkpoint file path")
    inspect_parser.add_argument("--json", action="store_true", help="JSON output")
    inspect_parser.set_defaults(func=cmd_ckpt_inspect)

    report_parser = sub.add_parser(
        "report", help="render a run-health HTML dashboard from artefacts"
    )
    report_parser.add_argument(
        "--health", action="append", default=[], metavar="FILE",
        help="health JSONL trail (repeatable; several files roll up)",
    )
    report_parser.add_argument(
        "--export", default=None, metavar="FILE",
        help="recorder export JSON for full-resolution sparklines",
    )
    report_parser.add_argument(
        "--rollup", default=None, metavar="FILE",
        help="pre-built health-rollup JSON (from churn --axis --health-out)",
    )
    report_parser.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="output HTML path (default: stdout)",
    )
    report_parser.add_argument("--title", default="run health")
    report_parser.set_defaults(func=cmd_report)

    info_parser = sub.add_parser("info", help="paper configuration summary")
    info_parser.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
