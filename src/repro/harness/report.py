"""Tabular reporting for experiment sweeps.

Prints the same rows/series the paper's figures plot, as aligned text
tables — the benchmark harness pipes these to stdout so a reproduction run
leaves a readable record next to the timing numbers.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render rows as an aligned text table.

    Floats are fixed to ``precision`` decimals; everything else is
    ``str()``-ed.  Columns are right-aligned (numeric convention).
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.{precision}f}")
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(line[col]) for line in rendered)
        for col in range(len(rendered[0]))
    ]
    lines = []
    for i, cells in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(cells, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    precision: int = 3,
) -> str:
    """Render one figure's data: an x column plus one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return f"{title}\n{format_table(headers, rows, precision)}"


def format_telemetry(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a :meth:`TelemetryHub.snapshot` as an aligned channel table.

    One row per channel: whole-run sample count, mean/min/max, and how
    many samples fell off the ring (``dropped``).
    """
    if not snapshot:
        return "(no telemetry channels)"
    rows = []
    for name in sorted(snapshot):
        channel = snapshot[name]
        rows.append(
            [
                name,
                channel.get("count", 0),
                channel.get("mean", 0.0),
                channel.get("min") if channel.get("min") is not None else "-",
                channel.get("max") if channel.get("max") is not None else "-",
                channel.get("dropped", 0),
            ]
        )
    return format_table(
        ["channel", "samples", "mean", "min", "max", "dropped"], rows
    )


def format_kernel_profile(snapshot: Mapping[str, object]) -> str:
    """Render a :meth:`KernelProfiler.snapshot` as a per-ticker table."""
    lines = [
        "kernel: "
        f"stepped={snapshot.get('stepped_cycles', 0)} "
        f"fast_forwarded={snapshot.get('fast_forwarded_cycles', 0)} "
        f"(ratio {float(snapshot.get('fast_forward_ratio', 0.0)):.3f}, "
        f"{snapshot.get('fast_forward_spans', 0)} spans) "
        f"events={snapshot.get('events_fired', 0)}"
    ]
    tickers = snapshot.get("tickers") or []
    if tickers:
        rows = [
            [
                t.get("name", ""),
                t.get("ticks", 0),
                t.get("skipped_cycles", 0),
                t.get("skip_spans", 0),
                float(t.get("seconds", 0.0)) * 1e3,
            ]
            for t in tickers
        ]
        lines.append(
            format_table(
                ["ticker", "ticks", "skipped", "skip_spans", "wall_ms"], rows
            )
        )
    return "\n".join(lines)


def ascii_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
) -> str:
    """A rough ASCII rendering of curves, for terminal inspection.

    Not a substitute for the tables — a sanity-check visual of curve
    ordering and knees.
    """
    import math

    points = []
    for values in series.values():
        points.extend(v for v in values if v is not None)
    if not points:
        return "(no data)"
    transform = (lambda v: math.log10(max(v, 1e-9))) if logy else (lambda v: v)
    lo = min(transform(v) for v in points)
    hi = max(transform(v) for v in points)
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for idx, (name, values) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        legend.append(f"{mark}={name}")
        for x, v in zip(xs, values):
            if v is None:
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((transform(v) - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x_lo:g}, {x_hi:g}]  y: [{lo:g}, {hi:g}]{' (log10)' if logy else ''}")
    lines.append("  ".join(legend))
    return "\n".join(lines)
