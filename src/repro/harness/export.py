"""Result export: JSON and CSV records of experiments and figures.

A reproduction is only useful if its numbers leave the process: this
module serialises experiment results and figure series so EXPERIMENTS.md
(and downstream analysis) can be regenerated mechanically.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Dict, Mapping, TextIO

from ..obs import FlightRecorder, build_manifest, validate_chrome_trace
from .figures import FigureData
from .single_router import ExperimentResult, ExperimentSpec


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """A JSON-safe record of an experiment spec (config flattened)."""
    record = dataclasses.asdict(spec)
    record["config"] = dataclasses.asdict(spec.config)
    return record


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-safe record of one experiment outcome.

    Every record carries a run manifest: the recorder's when telemetry was
    on (captured at run time), otherwise one built at export time from the
    spec's seed and configuration.
    """
    if result.recorder is not None:
        manifest = result.recorder.manifest
    else:
        manifest = build_manifest(
            seed=result.spec.seed,
            config=result.spec.config,
            command="result_to_dict",
        )
    record: Dict[str, Any] = {
        "manifest": manifest,
        "spec": spec_to_dict(result.spec),
        "offered_load": result.offered_load,
        "connections": result.connections,
        "utilisation": result.utilisation,
        "max_interface_backlog": result.max_interface_backlog,
        "flit_weighted": {
            "mean_delay_cycles": result.summary.mean_delay_cycles,
            "mean_delay_us": result.mean_delay_us,
            "mean_jitter_cycles": result.summary.mean_jitter_cycles,
            "flits_delivered": result.summary.flits_delivered,
        },
        "per_connection": {
            "mean_delay_cycles": result.per_connection.mean_delay_cycles,
            "mean_jitter_cycles": result.per_connection.mean_jitter_cycles,
            "connections": result.per_connection.connections,
        },
        "per_rate": {
            str(rate): {
                "connections": summary.connections,
                "mean_delay_cycles": summary.mean_delay_cycles,
                "mean_jitter_cycles": summary.mean_jitter_cycles,
                "flits": summary.flits_delivered,
            }
            for rate, summary in sorted(result.per_rate.items())
        },
    }
    if result.recorder is not None:
        record["telemetry"] = result.recorder.telemetry.snapshot()
        record["kernel_profile"] = result.recorder.kernel_snapshot()
        record["trace_events"] = len(result.recorder.events)
        record["trace_dropped"] = result.recorder.dropped
    return record


def write_result_json(result: ExperimentResult, stream: TextIO) -> None:
    """Serialise one experiment result as pretty-printed JSON."""
    json.dump(result_to_dict(result), stream, indent=2, sort_keys=True)
    stream.write("\n")


def write_trace_json(recorder: FlightRecorder, stream: TextIO) -> None:
    """Serialise a recorder's flit trace as Chrome trace-event JSON.

    The payload is schema-checked before writing, so a file this function
    produced is known to load in Perfetto / ``chrome://tracing``.
    """
    payload = recorder.chrome_trace()
    validate_chrome_trace(payload)
    json.dump(payload, stream)
    stream.write("\n")


def figure_to_dict(figure: FigureData) -> Dict[str, Any]:
    """A JSON-safe record of one figure's series."""
    return {
        "title": figure.title,
        "x_label": figure.x_label,
        "xs": list(figure.xs),
        "series": {name: list(values) for name, values in figure.series.items()},
    }


def write_figure_json(figure: FigureData, stream: TextIO) -> None:
    """Serialise one figure as JSON."""
    json.dump(figure_to_dict(figure), stream, indent=2, sort_keys=True)
    stream.write("\n")


def write_figure_csv(figure: FigureData, stream: TextIO) -> None:
    """Serialise one figure as CSV (x column + one column per curve)."""
    writer = csv.writer(stream)
    names = list(figure.series)
    writer.writerow([figure.x_label] + names)
    for i, x in enumerate(figure.xs):
        writer.writerow([x] + [figure.series[name][i] for name in names])


def figure_from_dict(payload: Mapping[str, Any]) -> FigureData:
    """Rebuild a :class:`FigureData` from :func:`figure_to_dict` output."""
    return FigureData(
        title=str(payload["title"]),
        x_label=str(payload["x_label"]),
        xs=[float(x) for x in payload["xs"]],
        series={
            str(name): [float(v) for v in values]
            for name, values in dict(payload["series"]).items()
        },
    )


def round_trip_figure(figure: FigureData) -> FigureData:
    """JSON round trip (used by tests to prove losslessness)."""
    buffer = io.StringIO()
    write_figure_json(figure, buffer)
    return figure_from_dict(json.loads(buffer.getvalue()))
