"""Open-loop session-churn workload over the probe protocol (§3.4-4.3).

The paper's evaluation establishes a connection population once and
measures steady-state QoS.  A multimedia router in service sees the
opposite regime: sessions arrive continuously (a Poisson process, with an
optional diurnal modulation), live for a while, sometimes renegotiate
their bandwidth mid-life (§4.3), and tear down — all through the real
probe/backtrack/ack control plane, while earlier sessions are still
streaming.  This harness drives that regime and measures what the
control plane does under churn:

* **setup latency** distribution (p50/p99 of probe+ack round trips),
* **blocking probability** (establishment attempts NACKed back out),
* **teardown/arrival balance** (does the network drain?),
* **in-flight QoS** (delay/jitter of flits delivered while the
  control plane churns around them), and
* a **resource-leak invariant**: after the last teardown, every router's
  admission registers, VC free lists and RAU mapping stores must match
  their pre-churn snapshot exactly.  Session setup and teardown walk the
  same per-hop allocate/release code in opposite directions; any
  asymmetry (a failure branch that forgets one side) shows up here as a
  drift that grows with churn.

Everything in the workload is picklable (bound-method events, no
closures), so long churn runs checkpoint and resume through the
``ckpt/1`` codec exactly like the other experiment classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..ckpt.codec import (
    CheckpointCodec,
    CheckpointFormatError,
    CheckpointHeader,
    CheckpointMismatchError,
)
from ..core.bandwidth import BandwidthRequest
from ..core.config import RouterConfig
from ..core.priority import make_priority_scheme
from ..core.virtual_channel import ServiceClass
from ..network.network import Network
from ..network.policing import TokenBucket
from ..network.probe_protocol import ProbeProtocol, ProbeSession
from ..network.topology import Topology, irregular
from ..obs import (
    DROPPED,
    FlightRecorder,
    HealthWriter,
    SloEngine,
    StreamingQuantiles,
    build_health_snapshot,
    build_manifest,
    parse_budgets,
)
from ..qos.metrics import UNCLASSIFIED, QosSummary, per_rate_breakdown, summarise
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from ..sim.stats import ConnectionStats
from ..traffic.cbr import CbrSource
from ..traffic.vbr import MpegProfile, VbrSource
from .single_router import SimulatedWorkerCrash

#: Cycles between teardown-guard retries while a session's in-flight
#: flits drain toward the destination.
TEARDOWN_RETRY_CYCLES = 64


@dataclass(frozen=True)
class ChurnSpec:
    """One churn-workload point (sweepable: every field is an axis)."""

    #: Total sessions the arrival process offers before stopping.
    num_sessions: int = 1000
    #: Mean Poisson inter-arrival gap between session requests (cycles).
    mean_interarrival_cycles: float = 400.0
    #: Mean exponential session lifetime (cycles).
    mean_holding_cycles: float = 20000.0
    #: Fraction of sessions that are VBR (MPEG) rather than CBR.
    vbr_fraction: float = 0.3
    #: Fraction of VBR sessions that renegotiate bandwidth mid-life.
    renegotiation_fraction: float = 0.25
    #: Sinusoidal arrival-rate modulation depth (0 disables; < 1).
    diurnal_amplitude: float = 0.0
    #: Period of the diurnal modulation (cycles).
    diurnal_period_cycles: float = 200_000.0
    num_nodes: int = 12
    mean_degree: float = 3.0
    priority: str = "biased"
    vcs_per_port: int = 64
    round_factor: int = 8
    #: Session rates drawn uniformly (paper's 5/20/55 Mbps mix).
    rates_bps: Tuple[float, ...] = (5e6, 20e6, 55e6)
    #: Synthetic MPEG frame rate.  The real 30 Hz puts ~323k cycles
    #: between frames at 1.24 Gbps — useless at churn holding times —
    #: so the default compresses the GOP clock while keeping per-frame
    #: burstiness (same trick the VBR unit tests use).
    vbr_frame_rate_hz: float = 3000.0
    #: Extra horizon after the expected last teardown for stragglers.
    drain_cycles: int = 100_000
    seed: int = 1
    allow_fast_forward: bool = True
    scheduler_fast_path: bool = True
    #: Columnar state engine knob (see ExperimentSpec.columnar_state).
    columnar_state: bool = False
    #: Network-wide arena knob (DESIGN.md §7f).  Requires NumPy.
    network_arena: bool = False
    telemetry: bool = False
    #: Telemetry sampling period (cycles), when ``telemetry`` is on.
    telemetry_every: int = 1000
    #: Police every session's injection with a per-session token bucket.
    police: bool = True
    #: Declarative SLO budgets (``metric=limit`` strings — e.g.
    #: ``setup_p99=400``, ``blocking_probability=0.05``; see
    #: :mod:`repro.obs.slo`).  Evaluated online during the run.
    slos: Tuple[str, ...] = ()
    #: Keep the exact per-session setup-latency list (O(sessions) memory)
    #: instead of the streaming quantile estimators.  For tests that need
    #: nearest-rank-exact percentiles; production churn stays bounded.
    exact_setup_stats: bool = False

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ValueError(f"need at least 1 session, got {self.num_sessions}")
        if self.mean_interarrival_cycles <= 0:
            raise ValueError("mean_interarrival_cycles must be positive")
        if self.mean_holding_cycles <= 0:
            raise ValueError("mean_holding_cycles must be positive")
        if not 0.0 <= self.vbr_fraction <= 1.0:
            raise ValueError(f"vbr_fraction must be in [0,1], got {self.vbr_fraction}")
        if not 0.0 <= self.renegotiation_fraction <= 1.0:
            raise ValueError("renegotiation_fraction must be in [0,1]")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0,1), got {self.diurnal_amplitude}"
            )
        if self.diurnal_period_cycles <= 0:
            raise ValueError("diurnal_period_cycles must be positive")
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.num_nodes}")
        if not self.rates_bps:
            raise ValueError("rates_bps must not be empty")
        if self.telemetry_every <= 0:
            raise ValueError("telemetry_every must be positive")
        parse_budgets(self.slos)  # malformed budgets fail at spec build

    @property
    def max_cycles(self) -> int:
        """Deterministic horizon covering arrivals, lifetimes and drain.

        Exponential draws are unbounded, so this is a generous bound (the
        run exits as soon as it drains); a run that is *not* drained by
        this horizon is stuck and reported as such.
        """
        arrivals = 3.0 * self.num_sessions * self.mean_interarrival_cycles
        # max of n exponential lifetimes ~ mean * ln(n); 20x is generous.
        lifetimes = 20.0 * self.mean_holding_cycles
        return int(arrivals + lifetimes + self.drain_cycles)


@dataclass
class _PendingSession:
    """Metadata drawn at arrival time, consumed at establishment."""

    rate_bps: float
    is_vbr: bool
    holding_cycles: int
    renegotiate: bool


@dataclass
class _ActiveSession:
    """One established session: its probe state and traffic machinery."""

    session: ProbeSession
    rate_bps: float
    is_vbr: bool
    holding_cycles: int
    source: Any  # CbrSource or VbrSource
    policer: Optional[TokenBucket]
    established_at: int
    #: Teardown-guard retries while this session's flits drained.
    drain_retries: int = 0


@dataclass
class ChurnResult:
    """Measured outcome of one churn run (picklable; sweep-friendly)."""

    spec: ChurnSpec
    arrivals: int
    established: int
    blocked: int
    torn_down: int
    teardown_retries: int
    renegotiations_applied: int
    renegotiations_refused: int
    setup_p50: float
    setup_p99: float
    setup_mean: float
    blocking_probability: float
    qos: QosSummary
    per_rate: Dict[object, QosSummary]
    unclassified_connections: int
    flits_delivered: int
    links_searched: int
    backtracks: int
    drained: bool
    #: Empty list = the resource-leak invariant holds.
    leak_report: List[str] = field(default_factory=list)
    recorder: Optional[FlightRecorder] = None
    checkpoint: Optional[Dict[str, Any]] = None
    #: Live budget state at run end (:meth:`SloEngine.state` shape).
    slo_state: List[Dict[str, Any]] = field(default_factory=list)
    #: Typed violation records (:meth:`SloViolation.to_dict` shape).
    slo_violations: List[Dict[str, Any]] = field(default_factory=list)
    #: Sticky: True once any declared budget ever crossed its limit.
    slo_breached: bool = False
    #: Distinct session ids named by violations, in breach order.
    violating_sessions: List[int] = field(default_factory=list)
    #: Final ``health/1`` snapshot (plain dict — survives the sweep
    #: worker's recorder strip, so rollups need no side-channel files).
    health: Optional[Dict[str, Any]] = None
    #: Per-session setup latencies, populated only under
    #: ``spec.exact_setup_stats`` (streaming runs keep memory bounded).
    setup_latencies: List[int] = field(default_factory=list)

    @property
    def leak_free(self) -> bool:
        """True when the post-drain resource audit found no drift."""
        return not self.leak_report

    @property
    def slo_ok(self) -> bool:
        """True when no declared budget ever tripped (vacuously true
        with no budgets declared)."""
        return not self.slo_breached

    @property
    def mean_delay_cycles(self) -> float:
        return self.qos.mean_delay_cycles

    @property
    def mean_jitter_cycles(self) -> float:
        return self.qos.mean_jitter_cycles


def _span_ref(span_id: int) -> int:
    """Span reference for an SLO violation: -1 when no span was recorded
    (telemetry off, or the tracer dropped it)."""
    return span_id if span_id != DROPPED else -1


def _percentile(sorted_values: List[int], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return float(sorted_values[rank - 1])


class ChurnWorkload:
    """A resumable churn run: arrivals, lifetimes, renegotiation, drain."""

    #: Checkpoint producer tag (header ``kind``).
    KIND = "churn"

    def __init__(self, spec: ChurnSpec, topology: Optional[Topology] = None) -> None:
        rng = SeededRng(spec.seed, "churn")
        if topology is None:
            topology = irregular(
                spec.num_nodes, rng.spawn("topology"), mean_degree=spec.mean_degree
            )
        config = RouterConfig(
            num_ports=topology.num_ports,
            vcs_per_port=spec.vcs_per_port,
            round_factor=spec.round_factor,
            enforce_round_budgets=False,
        )
        sim = Simulator(allow_fast_forward=spec.allow_fast_forward)
        recorder = None
        if spec.telemetry:
            recorder = FlightRecorder(
                manifest=build_manifest(
                    seed=spec.seed,
                    config=config,
                    command="run_churn_experiment",
                    extra={
                        "num_sessions": spec.num_sessions,
                        "mean_interarrival_cycles": spec.mean_interarrival_cycles,
                        "mean_holding_cycles": spec.mean_holding_cycles,
                        "num_nodes": spec.num_nodes,
                    },
                )
            )
        network = Network(
            topology,
            config,
            make_priority_scheme(spec.priority),
            sim,
            rng.spawn("network"),
            recorder=recorder,
            scheduler_fast_path=spec.scheduler_fast_path,
            columnar_state=spec.columnar_state,
            network_arena=spec.network_arena,
        )
        self.spec = spec
        self.topology = topology
        self.config = config
        self.sim = sim
        self.recorder = recorder
        self.network = network
        self.protocol = ProbeProtocol(network)
        self._arrival_rng = rng.spawn("arrivals")
        self._session_rng = rng.spawn("sessions")

        # Churn accounting.
        self.arrivals_launched = 0
        self.blocked = 0
        self.established_total = 0
        self.torn_down = 0
        self.teardown_retries = 0
        self.links_searched = 0
        self.backtracks = 0
        #: Streaming setup-latency estimators (always fed — O(1) memory).
        self.setup_stats = StreamingQuantiles((0.5, 0.99))
        self._last_setup_cycles = 0.0
        #: Exact per-session list, only kept when spec.exact_setup_stats.
        self.setup_latencies: List[int] = []
        budgets = parse_budgets(spec.slos)
        #: Online SLO evaluation (None when no budgets are declared).
        self.slo: Optional[SloEngine] = SloEngine(budgets) if budgets else None
        #: Cumulative policer verdicts from torn-down sessions.
        self.policer_conforming = 0
        self.policer_violations = 0
        #: Periodic health-snapshot trail (see set_health_output).
        self.health_writer: Optional[HealthWriter] = None
        self.health_every = 0
        self._pending_meta: Dict[int, _PendingSession] = {}
        self.active: Dict[int, _ActiveSession] = {}
        #: End-to-end stats and delivered-flit counts per connection id.
        self.end_to_end: Dict[int, ConnectionStats] = {}
        self.delivered: Dict[int, int] = {}
        #: Admitted rate per connection id — feeds the per-rate QoS
        #: breakdown; an ``unclassified`` entry there means a session
        #: delivered flits this table never saw (a bookkeeping bug).
        self.connection_rates: Dict[int, float] = {}

        for node in range(topology.num_nodes):
            network.set_host_delivery(
                node, topology.host_port(node), self._on_delivery
            )
        #: Pre-churn resource audit baseline (allocators, VCs, RAU).
        self._baseline = self.resource_snapshot()
        sim.schedule(1, self._arrival)
        if recorder is not None:
            sim.schedule(spec.telemetry_every, self._sample_telemetry)

    # ----- arrival process -----------------------------------------------------

    def _arrival_gap(self) -> int:
        """Next Poisson gap, diurnally modulated when configured."""
        spec = self.spec
        gap = self._arrival_rng.expovariate(1.0 / spec.mean_interarrival_cycles)
        if spec.diurnal_amplitude > 0.0:
            factor = 1.0 + spec.diurnal_amplitude * math.sin(
                2.0 * math.pi * self.sim.now / spec.diurnal_period_cycles
            )
            gap /= factor
        return max(1, round(gap))

    def _arrival(self) -> None:
        """One session request arrives (open loop: the next arrival is
        scheduled regardless of this one's fate)."""
        spec = self.spec
        self.arrivals_launched += 1
        if self.arrivals_launched < spec.num_sessions:
            self.sim.schedule(self._arrival_gap(), self._arrival)
        rng = self._session_rng
        num_nodes = self.topology.num_nodes
        source = rng.randint(0, num_nodes - 1)
        destination = rng.randint(0, num_nodes - 2)
        if destination >= source:
            destination += 1
        rate = rng.choice(spec.rates_bps)
        is_vbr = rng.random() < spec.vbr_fraction
        holding = max(1, round(rng.expovariate(1.0 / spec.mean_holding_cycles)))
        renegotiate = is_vbr and rng.random() < spec.renegotiation_fraction
        config = self.config
        interarrival = config.rate_to_interarrival_cycles(rate)
        if is_vbr:
            profile = self._profile(rate)
            permanent = config.rate_to_cycles_per_round(rate)
            peak = config.rate_to_cycles_per_round(profile.peak_rate_bps(2.0))
            request = BandwidthRequest(permanent, max(peak, permanent))
            service_class = ServiceClass.VBR
        else:
            request = BandwidthRequest(config.rate_to_cycles_per_round(rate))
            service_class = ServiceClass.CBR
        session = self.protocol.establish(
            source,
            destination,
            request,
            self._on_establish,
            service_class=service_class,
            interarrival_cycles=interarrival,
        )
        self._pending_meta[session.session_id] = _PendingSession(
            rate_bps=rate,
            is_vbr=is_vbr,
            holding_cycles=holding,
            renegotiate=renegotiate,
        )

    def _profile(self, rate_bps: float) -> MpegProfile:
        return MpegProfile(
            mean_rate_bps=rate_bps, frame_rate_hz=self.spec.vbr_frame_rate_hz
        )

    # ----- establishment completion --------------------------------------------

    def _on_establish(self, session: ProbeSession, established: bool) -> None:
        meta = self._pending_meta.pop(session.session_id)
        self.links_searched += session.links_searched
        self.backtracks += session.backtracks
        now = self.sim.now
        slo = self.slo
        if not established:
            self.blocked += 1
            if slo is not None:
                slo.observe_ratio(
                    "blocking_probability",
                    self.blocked,
                    self._attempts_completed,
                    now,
                    session_id=session.session_id,
                    span_id=_span_ref(session.span_id),
                )
            self.protocol.forget(session)
            return
        self.established_total += 1
        setup = session.setup_cycles
        self._last_setup_cycles = float(setup)
        self.setup_stats.add(float(setup))
        if self.spec.exact_setup_stats:
            self.setup_latencies.append(setup)
        if slo is not None:
            slo.observe(
                "setup",
                float(setup),
                now,
                session_id=session.session_id,
                span_id=_span_ref(session.setup_span),
            )
            slo.observe_ratio(
                "blocking_probability",
                self.blocked,
                self._attempts_completed,
                now,
                session_id=session.session_id,
                span_id=_span_ref(session.span_id),
            )
        connection_id = -session.session_id
        self.connection_rates[connection_id] = meta.rate_bps
        config = self.config
        router = self.network.routers[session.source]
        entry_port = session.entry_ports[0]
        vc_index = session.vcs[0]
        interarrival = config.rate_to_interarrival_cycles(meta.rate_bps)
        stop_time = self.sim.now + meta.holding_cycles
        policer = None
        if meta.is_vbr:
            profile = self._profile(meta.rate_bps)
            if self.spec.police:
                # VBR polices at the contracted peak with a frame of burst
                # headroom, or frame bursts would be shaped flat.
                peak_bps = profile.peak_rate_bps(2.0)
                burst = max(2.0, peak_bps / profile.frame_rate_hz / config.flit_size_bits)
                policer = TokenBucket(
                    1.0 / config.rate_to_interarrival_cycles(peak_bps), burst=burst
                )
            source = VbrSource(
                self.sim,
                router,
                connection_id,
                entry_port,
                vc_index,
                profile,
                config,
                self._session_rng.spawn(f"vbr{session.session_id}"),
                phase=self._session_rng.uniform(1.0, max(2.0, interarrival)),
                stop_time=stop_time,
                policer=policer,
            )
        else:
            if self.spec.police:
                policer = TokenBucket(1.0 / interarrival, burst=2.0)
            source = CbrSource(
                self.sim,
                router,
                connection_id,
                entry_port,
                vc_index,
                meta.rate_bps,
                config,
                phase=self._session_rng.uniform(1.0, max(2.0, interarrival)),
                stop_time=stop_time,
                policer=policer,
            )
        source.start()
        self.active[session.session_id] = _ActiveSession(
            session=session,
            rate_bps=meta.rate_bps,
            is_vbr=meta.is_vbr,
            holding_cycles=meta.holding_cycles,
            source=source,
            policer=policer,
            established_at=self.sim.now,
        )
        if meta.renegotiate:
            self.sim.schedule(
                max(1, meta.holding_cycles // 2),
                self._renegotiate_event,
                session.session_id,
            )
        self.sim.schedule(
            max(1, meta.holding_cycles), self._teardown_event, session.session_id
        )

    # ----- mid-life renegotiation (§4.3) -----------------------------------------

    def _renegotiate_event(self, session_id: int) -> None:
        """Halfway through its life, a marked VBR session renegotiates —
        down to half or up to 1.5x its permanent contract (up may be
        NACKed by any hop; the protocol rolls back)."""
        entry = self.active.get(session_id)
        if entry is None:
            return  # already torn down (short lifetime)
        config = self.config
        factor = 0.5 if self._session_rng.random() < 0.5 else 1.5
        new_rate = entry.rate_bps * factor
        permanent = max(1, config.rate_to_cycles_per_round(new_rate))
        old_request = entry.session.request
        new_request = BandwidthRequest(
            permanent, max(old_request.effective_peak, permanent)
        )
        ok = self.protocol.renegotiate(
            entry.session,
            new_request,
            interarrival_cycles=config.rate_to_interarrival_cycles(new_rate),
        )
        if ok and entry.policer is not None:
            # Reprice the injection policer at the renegotiation instant
            # (tokens accrued so far are settled at the old rate first).
            entry.policer.set_rate(entry.policer.rate * factor, now=self.sim.now)

    # ----- teardown --------------------------------------------------------------

    def _teardown_event(self, session_id: int) -> None:
        """The session's lifetime expired; tear down once it has drained.

        A VC with buffered flits must not be released (the router raises),
        so teardown waits until the source interface queue is empty and
        every injected flit was delivered, retrying on a short timer.
        """
        entry = self.active.get(session_id)
        if entry is None:
            return
        connection_id = -session_id
        source = entry.source
        recorder = self.recorder
        if source.backlog > 0 or self.delivered.get(connection_id, 0) < source.flits_injected:
            self.teardown_retries += 1
            entry.drain_retries += 1
            if recorder is not None and recorder.enabled:
                # The drain window is a span of its own: it is wall time
                # the session spends past its lifetime, invisible in the
                # per-hop teardown spans.
                if not entry.session.drain_span:
                    entry.session.drain_span = recorder.spans.begin(
                        "drain",
                        "teardown",
                        self.sim.now,
                        parent=entry.session.span_id,
                        session=session_id,
                    )
            self.sim.schedule(
                TEARDOWN_RETRY_CYCLES, self._teardown_event, session_id
            )
            return
        if entry.session.drain_span and recorder is not None:
            recorder.spans.end(
                entry.session.drain_span,
                self.sim.now,
                retries=entry.drain_retries,
            )
        self.protocol.teardown(entry.session, self._on_teardown)

    def _on_teardown(self, session: ProbeSession, _established: bool) -> None:
        entry = self.active.pop(session.session_id, None)
        self.torn_down += 1
        if entry is not None and entry.policer is not None:
            self.policer_conforming += entry.policer.conforming
            self.policer_violations += entry.policer.violations
        slo = self.slo
        if slo is not None:
            now = self.sim.now
            stats = self.end_to_end.get(-session.session_id)
            if stats is not None and stats.jitter.count:
                slo.observe(
                    "jitter",
                    stats.jitter.mean,
                    now,
                    session_id=session.session_id,
                    span_id=_span_ref(session.span_id),
                )
            refusals = self.policer_violations
            verdicts = self.policer_conforming + refusals
            slo.observe_ratio(
                "policer_refusal_rate",
                refusals,
                verdicts,
                now,
                session_id=session.session_id,
                span_id=_span_ref(session.span_id),
            )
        self.protocol.forget(session)

    # ----- delivery and telemetry --------------------------------------------------

    def _on_delivery(self, node: int, port: int, flit) -> None:
        latency = self.sim.now - flit.created
        stats = self.end_to_end.setdefault(flit.connection_id, ConnectionStats())
        stats.record_flit(latency)
        self.delivered[flit.connection_id] = (
            self.delivered.get(flit.connection_id, 0) + 1
        )

    @property
    def _attempts_completed(self) -> int:
        return self.established_total + self.blocked

    def _sample_telemetry(self) -> None:
        recorder = self.recorder
        if recorder is None:
            return
        now = self.sim.now
        recorder.sample("churn.active_sessions", now, float(len(self.active)))
        attempts = self._attempts_completed
        recorder.sample(
            "churn.blocking_rate",
            now,
            self.blocked / attempts if attempts else 0.0,
        )
        if self.setup_stats.count:
            recorder.sample(
                "churn.setup_latency_last", now, self._last_setup_cycles
            )
            recorder.sample(
                "churn.setup_latency_p99", now, self.setup_quantile(0.99)
            )
        if not self.drained:
            self.sim.schedule(self.spec.telemetry_every, self._sample_telemetry)

    # ----- run health -------------------------------------------------------------

    def set_health_output(self, path, every: int = 5000) -> None:
        """Append a ``health/1`` snapshot to ``path`` every ``every`` cycles.

        Safe to call on a resumed workload: the writer is swapped (e.g.
        for a new path) without double-scheduling the heartbeat event,
        which already rides in the checkpointed event queue.
        """
        if every <= 0:
            raise ValueError(f"health interval must be positive, got {every}")
        schedule = self.health_writer is None
        self.health_writer = HealthWriter(path)
        self.health_every = every
        if schedule:
            self.sim.schedule(every, self._health_event)

    def _health_event(self) -> None:
        writer = self.health_writer
        if writer is None:
            return
        writer.write(self.health_snapshot())
        if not self.drained:
            self.sim.schedule(self.health_every, self._health_event)

    def health_snapshot(self) -> Dict[str, Any]:
        """One ``health/1`` record of the run's current observable state."""
        attempts = self._attempts_completed
        return build_health_snapshot(
            self.sim.now,
            recorder=self.recorder,
            slo=self.slo,
            extra={
                "active_sessions": len(self.active),
                "arrivals": self.arrivals_launched,
                "established": self.established_total,
                "blocked": self.blocked,
                "torn_down": self.torn_down,
                "blocking_probability": (
                    self.blocked / attempts if attempts else 0.0
                ),
                "setup_p50": self.setup_quantile(0.50),
                "setup_p99": self.setup_quantile(0.99),
            },
        )

    def setup_quantile(self, q: float) -> float:
        """Setup-latency quantile: nearest-rank exact when the spec keeps
        the full list, streaming (P²) estimate otherwise."""
        if self.spec.exact_setup_stats:
            return _percentile(sorted(self.setup_latencies), q)
        return self.setup_stats.quantile(q)

    # ----- resource-leak invariant ---------------------------------------------------

    def resource_snapshot(self) -> Dict[str, Tuple]:
        """Every per-router register churn must return to baseline:
        admission allocators (both directions), VC free lists, RAU
        mapping stores."""
        snapshot: Dict[str, Tuple] = {}
        for node in range(self.topology.num_nodes):
            router = self.network.routers[node]
            for port in range(self.config.num_ports):
                inp = router.admission.inputs[port]
                out = router.admission.outputs[port]
                snapshot[f"router{node}.port{port}.admission"] = (
                    inp.allocated_cycles,
                    inp.peak_cycles,
                    inp.active_connections,
                    out.allocated_cycles,
                    out.peak_cycles,
                    out.active_connections,
                )
                snapshot[f"router{node}.port{port}.free_vcs"] = (
                    router.input_ports[port].free_vc_count(),
                )
            snapshot[f"router{node}.rau_mappings"] = (len(router.rau.mappings),)
        return snapshot

    def verify_drained(self) -> List[str]:
        """Audit the drained network against the pre-churn baseline.

        Returns human-readable drift descriptions (empty = invariant
        holds).  Only meaningful once :attr:`drained` is True.
        """
        problems: List[str] = []
        current = self.resource_snapshot()
        for key, expected in self._baseline.items():
            got = current.get(key)
            if got != expected:
                problems.append(f"{key}: baseline {expected} != post-churn {got}")
        if self.active:
            problems.append(f"{len(self.active)} session(s) still active")
        if self._pending_meta:
            problems.append(
                f"{len(self._pending_meta)} establishment(s) still pending"
            )
        if self.protocol.sessions:
            problems.append(
                f"{len(self.protocol.sessions)} session(s) not forgotten"
            )
        return problems

    # ----- progress --------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.now

    @property
    def total_cycles(self) -> int:
        """Deterministic upper-bound horizon (see ChurnSpec.max_cycles)."""
        return self.spec.max_cycles

    @property
    def drained(self) -> bool:
        """All arrivals offered, no establishment in flight, no session
        alive (established sessions are removed at teardown completion)."""
        return (
            self.arrivals_launched >= self.spec.num_sessions
            and not self._pending_meta
            and not self.active
        )

    def run_to(self, cycle: int) -> None:
        """Advance to absolute ``cycle`` (clamped to the horizon)."""
        target = min(int(cycle), self.total_cycles)
        if target < self.sim.now:
            raise ValueError(
                f"cannot run backwards to {target}, now is {self.sim.now}"
            )
        if target > self.sim.now:
            self.sim.run(target - self.sim.now)

    def run_until_drained(self, stride: int = 50_000) -> None:
        """Advance in strides until drained (or the horizon is hit)."""
        while not self.drained and self.sim.now < self.total_cycles:
            self.run_to(min(self.sim.now + stride, self.total_cycles))

    def result(self) -> ChurnResult:
        """Summarise the run; drives it to drain first if needed."""
        if not self.drained and self.sim.now < self.total_cycles:
            self.run_until_drained()
        # Sleeping routers accrue idle cycles lazily under the arena;
        # replay the outstanding spans before reading any counters.
        self.network.flush_arena_accounting()
        attempts = self._attempts_completed
        per_rate = per_rate_breakdown(self.end_to_end, self.connection_rates)
        unclassified = per_rate.get(UNCLASSIFIED)
        drained = self.drained
        slo = self.slo
        health = self.health_snapshot()
        if self.health_writer is not None:
            # The trail always ends with the run's final state.
            self.health_writer.write(health)
        return ChurnResult(
            spec=self.spec,
            arrivals=self.arrivals_launched,
            established=self.established_total,
            blocked=self.blocked,
            torn_down=self.torn_down,
            teardown_retries=self.teardown_retries,
            renegotiations_applied=self.protocol.renegotiations_applied,
            renegotiations_refused=self.protocol.renegotiations_refused,
            setup_p50=self.setup_quantile(0.50),
            setup_p99=self.setup_quantile(0.99),
            setup_mean=self.setup_stats.mean,
            blocking_probability=self.blocked / attempts if attempts else 0.0,
            qos=summarise(self.end_to_end),
            per_rate=per_rate,
            unclassified_connections=(
                unclassified.connections if unclassified is not None else 0
            ),
            flits_delivered=sum(self.delivered.values()),
            links_searched=self.links_searched,
            backtracks=self.backtracks,
            drained=drained,
            leak_report=(
                self.verify_drained()
                if drained
                else [f"not drained by cycle {self.sim.now}"]
            ),
            recorder=self.recorder,
            slo_state=slo.state() if slo is not None else [],
            slo_violations=slo.violation_dicts() if slo is not None else [],
            slo_breached=bool(slo.breached) if slo is not None else False,
            violating_sessions=(
                slo.violating_sessions() if slo is not None else []
            ),
            health=health,
            setup_latencies=list(self.setup_latencies),
        )

    # ----- checkpoint / resume ------------------------------------------------------

    def checkpoint(self, path) -> CheckpointHeader:
        """Write the complete workload state to ``path`` (``ckpt/1``)."""
        return CheckpointCodec.save(
            path,
            {"experiment": self},
            kind=self.KIND,
            cycle=self.sim.now,
            seed=self.spec.seed,
            config=self.config,
            extra={
                "num_sessions": self.spec.num_sessions,
                "arrivals_launched": self.arrivals_launched,
                "established": self.established_total,
                "torn_down": self.torn_down,
                "active": len(self.active),
            },
        )

    @classmethod
    def resume(cls, path, expect_spec: Optional[ChurnSpec] = None) -> "ChurnWorkload":
        """Reload a checkpointed churn run, verifying provenance."""
        _, components = CheckpointCodec.load(path, expect_kind=cls.KIND)
        experiment = components.get("experiment")
        if not isinstance(experiment, cls):
            raise CheckpointFormatError(
                f"{path}: checkpoint does not contain a {cls.__name__}"
            )
        if expect_spec is not None and experiment.spec != expect_spec:
            raise CheckpointMismatchError("spec", experiment.spec, expect_spec)
        return experiment


def run_churn_experiment(
    spec: ChurnSpec,
    topology: Optional[Topology] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path=None,
    resume: bool = False,
    health_path=None,
    health_every: int = 5000,
    _crash_at_cycle: Optional[int] = None,
) -> ChurnResult:
    """Run one churn point, optionally checkpointed.

    The keyword protocol matches :func:`run_single_router_experiment`, so
    churn sweeps go through :func:`repro.harness.sweep.run_sweep` with
    ``_runner=run_churn_experiment`` — including ``--jobs`` fan-out and
    checkpoint-resumable points with bit-identical rows either way.
    ``health_path`` turns on the periodic health-snapshot trail.
    """
    if checkpoint_every is not None and checkpoint_every <= 0:
        raise ValueError(f"checkpoint_every must be positive, got {checkpoint_every}")
    if checkpoint_every is None and not resume and _crash_at_cycle is None:
        experiment = ChurnWorkload(spec, topology)
        if health_path is not None:
            experiment.set_health_output(health_path, health_every)
        return experiment.result()
    if checkpoint_path is None:
        raise ValueError("checkpointing requires a checkpoint_path")
    path = Path(checkpoint_path)
    lineage: Dict[str, Any] = {
        "schema": CheckpointCodec.schema,
        "path": str(path),
        "resumed_from_cycle": None,
        "checkpoints_written": 0,
    }
    if resume and path.exists():
        experiment = ChurnWorkload.resume(path, expect_spec=spec)
        lineage["resumed_from_cycle"] = experiment.now
    else:
        experiment = ChurnWorkload(spec, topology)
    if health_path is not None:
        experiment.set_health_output(health_path, health_every)
    total = experiment.total_cycles
    stride = checkpoint_every if checkpoint_every is not None else total
    while not experiment.drained and experiment.now < total:
        experiment.run_to(min(experiment.now + stride, total))
        if checkpoint_every is not None and not experiment.drained:
            header = experiment.checkpoint(path)
            lineage["checkpoints_written"] += 1
            lineage["last_checkpoint_cycle"] = header.cycle
        if (
            _crash_at_cycle is not None
            and lineage["resumed_from_cycle"] is None
            and _crash_at_cycle <= experiment.now
            and not experiment.drained
        ):
            raise SimulatedWorkerCrash(
                f"worker killed at cycle {experiment.now} (test hook)"
            )
    result = experiment.result()
    result.checkpoint = lineage
    return result
