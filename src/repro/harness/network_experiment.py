"""Network-level QoS experiments (paper §6 — the MMR project's next step).

The paper evaluates a single router and closes by turning "to supported
VBR traffic and best-effort traffic" in networks.  This harness runs the
natural extension study: CBR connections established by EPB across a
multi-router cluster, measuring end-to-end delay and jitter as functions
of network load and hop count, optionally with best-effort background
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ckpt.codec import (
    CheckpointCodec,
    CheckpointFormatError,
    CheckpointHeader,
    CheckpointMismatchError,
)
from ..core.config import RouterConfig
from ..core.priority import make_priority_scheme
from ..network.connection import ConnectionManager
from ..network.interface import NetworkInterface, OpenStream
from ..network.network import Network
from ..network.topology import Topology, irregular
from ..obs import FlightRecorder, build_manifest
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from ..sim.stats import RunningStats


@dataclass(frozen=True)
class NetworkExperimentSpec:
    """One network-level experiment point."""

    #: Target mean utilisation of router-to-router links (0..1).
    target_link_load: float
    num_nodes: int = 12
    mean_degree: float = 3.0
    priority: str = "biased"
    #: Best-effort packets per node per 100 cycles (0 disables).
    best_effort_rate: float = 0.0
    vcs_per_port: int = 64
    round_factor: int = 8
    warmup_cycles: int = 5000
    measure_cycles: int = 20000
    seed: int = 1
    # Kernel mode knob (see ExperimentSpec.allow_fast_forward).
    allow_fast_forward: bool = True
    # Link-scheduler mode knob (see ExperimentSpec.scheduler_fast_path).
    scheduler_fast_path: bool = True
    # Columnar state engine knob (see ExperimentSpec.columnar_state).
    columnar_state: bool = False
    # Attach a shared flight recorder across all routers (see
    # ExperimentSpec.telemetry).
    telemetry: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.target_link_load <= 1.0:
            raise ValueError(
                f"target_link_load must be in (0, 1], got {self.target_link_load}"
            )
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.num_nodes}")
        if self.best_effort_rate < 0:
            raise ValueError(
                f"best_effort_rate must be >= 0, got {self.best_effort_rate}"
            )


@dataclass
class NetworkExperimentResult:
    """Measured outcome of one network experiment."""

    spec: NetworkExperimentSpec
    streams: int
    attempts: int
    mean_hops: float
    #: End-to-end per-flit statistics across all delivered stream flits.
    delay_cycles: RunningStats
    jitter_cycles: RunningStats
    #: Grouped by path length.
    by_hops: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    best_effort_delivered: int = 0
    links_searched: int = 0
    backtracks: int = 0
    #: The shared flight recorder, when ``spec.telemetry`` asked for one.
    recorder: Optional[FlightRecorder] = None

    @property
    def acceptance_ratio(self) -> float:
        """Established streams over establishment attempts."""
        return self.streams / self.attempts if self.attempts else 0.0

    @property
    def delay_per_hop(self) -> float:
        """Mean end-to-end delay normalised by mean path length."""
        return self.delay_cycles.mean / self.mean_hops if self.mean_hops else 0.0


class NetworkExperiment:
    """A network-level evaluation point as a resumable object.

    Construction builds and loads the cluster (stream admission is
    synchronous); :meth:`run_to` advances it with the warm-up boundary
    handled exactly once; :meth:`checkpoint` / :meth:`resume` round-trip
    the whole cluster — all routers, links in flight, interfaces and the
    best-effort chatter events — through the checkpoint codec.
    """

    #: Checkpoint producer tag (header ``kind``).
    KIND = "network"

    def __init__(
        self,
        spec: NetworkExperimentSpec,
        topology: Optional[Topology] = None,
    ) -> None:
        rng = SeededRng(spec.seed, "network-experiment")
        if topology is None:
            topology = irregular(
                spec.num_nodes, rng.spawn("topology"), mean_degree=spec.mean_degree
            )
        config = RouterConfig(
            num_ports=topology.num_ports,
            vcs_per_port=spec.vcs_per_port,
            round_factor=spec.round_factor,
            enforce_round_budgets=False,
        )
        sim = Simulator(allow_fast_forward=spec.allow_fast_forward)
        recorder = None
        if spec.telemetry:
            recorder = FlightRecorder(
                manifest=build_manifest(
                    seed=spec.seed,
                    config=config,
                    command="run_network_experiment",
                    extra={
                        "num_nodes": spec.num_nodes,
                        "target_link_load": spec.target_link_load,
                        "warmup_cycles": spec.warmup_cycles,
                        "measure_cycles": spec.measure_cycles,
                    },
                )
            )
        network = Network(
            topology,
            config,
            make_priority_scheme(spec.priority),
            sim,
            rng.spawn("network"),
            recorder=recorder,
            scheduler_fast_path=spec.scheduler_fast_path,
            columnar_state=spec.columnar_state,
        )
        manager = ConnectionManager(network)
        interfaces = [
            NetworkInterface(network, manager, node, rng=rng.spawn(f"ni{node}"))
            for node in range(topology.num_nodes)
        ]

        # Admit streams until the mean router-to-router link utilisation
        # reaches the target (or admissions stop succeeding).
        demand_rng = rng.spawn("demand")
        streams: List[Tuple[int, OpenStream]] = []
        attempts = 0
        consecutive_failures = 0
        while consecutive_failures < 25:
            if _mean_link_utilisation(network, topology) >= spec.target_link_load:
                break
            src = demand_rng.randint(0, topology.num_nodes - 1)
            dst = demand_rng.randint(0, topology.num_nodes - 1)
            if src == dst:
                continue
            attempts += 1
            rate = demand_rng.choice((5e6, 20e6, 55e6, 120e6))
            stream = interfaces[src].open_cbr(dst, rate)
            if stream is None:
                consecutive_failures += 1
                continue
            consecutive_failures = 0
            streams.append((dst, stream))

        self.spec = spec
        self.topology = topology
        self.config = config
        self.sim = sim
        self.recorder = recorder
        self.network = network
        self.manager = manager
        self.interfaces = interfaces
        self.streams = streams
        self.attempts = attempts
        self._be_rng = None
        self._be_interval = 0.0
        self._measurement_started = False

        if spec.best_effort_rate > 0:
            self._be_rng = rng.spawn("be")
            self._be_interval = 100.0 / spec.best_effort_rate
            for node in range(topology.num_nodes):
                sim.schedule(1 + node, self._chatter)

    def _chatter(self) -> None:
        """Self-rescheduling best-effort background traffic (a bound
        method, not a closure, so pending chatter events checkpoint)."""
        be_rng = self._be_rng
        num_nodes = self.topology.num_nodes
        src = be_rng.randint(0, num_nodes - 1)
        dst = be_rng.randint(0, num_nodes - 1)
        if src != dst:
            self.interfaces[src].send_best_effort(dst)
        self.sim.schedule(
            max(1, round(be_rng.expovariate(1.0 / self._be_interval))),
            self._chatter,
        )

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.now

    @property
    def total_cycles(self) -> int:
        """Warm-up plus measurement horizon."""
        return self.spec.warmup_cycles + self.spec.measure_cycles

    def run_to(self, cycle: int) -> None:
        """Advance to absolute ``cycle`` (clamped to the experiment end),
        resetting measurement state once at the warm-up boundary."""
        target = min(int(cycle), self.total_cycles)
        if target < self.sim.now:
            raise ValueError(
                f"cannot run backwards to {target}, now is {self.sim.now}"
            )
        warmup = self.spec.warmup_cycles
        if self.sim.now < warmup:
            self.sim.run(min(target, warmup) - self.sim.now)
        if self.sim.now >= warmup and not self._measurement_started:
            self._measurement_started = True
            for ni in self.interfaces:
                ni.end_to_end.clear()
                ni.flits_received = 0
                ni.packets_received = 0
            if self.recorder is not None:
                self.recorder.clear()
        if target > self.sim.now:
            self.sim.run(target - self.sim.now)

    def result(self) -> NetworkExperimentResult:
        """Summarise the (completed) run; runs any remaining cycles."""
        if self.sim.now < self.total_cycles:
            self.run_to(self.total_cycles)
        interfaces = self.interfaces
        delay = RunningStats()
        jitter = RunningStats()
        hop_groups: Dict[int, Tuple[RunningStats, RunningStats]] = {}
        hops_total = 0.0
        for dst, stream in self.streams:
            stats = interfaces[dst].end_to_end.get(stream.connection.connection_id)
            hops_total += stream.connection.hops
            if stats is None or stats.flits == 0:
                continue
            delay.merge(_clone(stats.delay))
            jitter.merge(_clone(stats.jitter))
            hops = stream.connection.hops
            if hops not in hop_groups:
                hop_groups[hops] = (RunningStats(), RunningStats())
            hop_groups[hops][0].merge(_clone(stats.delay))
            hop_groups[hops][1].merge(_clone(stats.jitter))
        return NetworkExperimentResult(
            spec=self.spec,
            streams=len(self.streams),
            attempts=self.attempts,
            mean_hops=hops_total / len(self.streams) if self.streams else 0.0,
            delay_cycles=delay,
            jitter_cycles=jitter,
            by_hops={
                hops: (d.mean, j.mean) for hops, (d, j) in sorted(hop_groups.items())
            },
            best_effort_delivered=sum(ni.packets_received for ni in interfaces),
            links_searched=self.manager.stats.links_searched,
            backtracks=self.manager.stats.backtracks,
            recorder=self.recorder,
        )

    # ----- checkpoint / resume ----------------------------------------------

    def checkpoint(self, path) -> CheckpointHeader:
        """Write the complete cluster state to ``path`` (``ckpt/1``)."""
        return CheckpointCodec.save(
            path,
            {"experiment": self},
            kind=self.KIND,
            cycle=self.sim.now,
            seed=self.spec.seed,
            config=self.config,
            extra={
                "num_nodes": self.spec.num_nodes,
                "target_link_load": self.spec.target_link_load,
                "warmup_cycles": self.spec.warmup_cycles,
                "measure_cycles": self.spec.measure_cycles,
                "measurement_started": self._measurement_started,
            },
        )

    @classmethod
    def resume(
        cls, path, expect_spec: Optional[NetworkExperimentSpec] = None
    ) -> "NetworkExperiment":
        """Reload a checkpointed network experiment, verifying provenance."""
        _, components = CheckpointCodec.load(path, expect_kind=cls.KIND)
        experiment = components.get("experiment")
        if not isinstance(experiment, cls):
            raise CheckpointFormatError(
                f"{path}: checkpoint does not contain a {cls.__name__}"
            )
        if expect_spec is not None and experiment.spec != expect_spec:
            raise CheckpointMismatchError("spec", experiment.spec, expect_spec)
        return experiment


def run_network_experiment(
    spec: NetworkExperimentSpec,
    topology: Optional[Topology] = None,
) -> NetworkExperimentResult:
    """Build the cluster, load it with CBR streams to the target link
    utilisation, run, and summarise end-to-end QoS."""
    experiment = NetworkExperiment(spec, topology)
    return experiment.result()


def _mean_link_utilisation(network: Network, topology: Topology) -> float:
    """Mean committed utilisation over router-to-router output links."""
    total = 0.0
    count = 0
    for node in range(topology.num_nodes):
        router = network.routers[node]
        for port in range(topology.num_ports):
            if topology.neighbor_on_port(node, port) is None:
                continue
            total += router.admission.outputs[port].utilisation
            count += 1
    return total / count if count else 0.0


def _clone(stats: RunningStats) -> RunningStats:
    clone = RunningStats()
    clone.merge(stats)
    return clone
