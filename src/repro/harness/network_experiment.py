"""Network-level QoS experiments (paper §6 — the MMR project's next step).

The paper evaluates a single router and closes by turning "to supported
VBR traffic and best-effort traffic" in networks.  This harness runs the
natural extension study: CBR connections established by EPB across a
multi-router cluster, measuring end-to-end delay and jitter as functions
of network load and hop count, optionally with best-effort background
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.config import RouterConfig
from ..core.priority import make_priority_scheme
from ..network.connection import ConnectionManager
from ..network.interface import NetworkInterface, OpenStream
from ..network.network import Network
from ..network.topology import Topology, irregular
from ..obs import FlightRecorder, build_manifest
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from ..sim.stats import RunningStats


@dataclass(frozen=True)
class NetworkExperimentSpec:
    """One network-level experiment point."""

    #: Target mean utilisation of router-to-router links (0..1).
    target_link_load: float
    num_nodes: int = 12
    mean_degree: float = 3.0
    priority: str = "biased"
    #: Best-effort packets per node per 100 cycles (0 disables).
    best_effort_rate: float = 0.0
    vcs_per_port: int = 64
    round_factor: int = 8
    warmup_cycles: int = 5000
    measure_cycles: int = 20000
    seed: int = 1
    # Kernel mode knob (see ExperimentSpec.allow_fast_forward).
    allow_fast_forward: bool = True
    # Link-scheduler mode knob (see ExperimentSpec.scheduler_fast_path).
    scheduler_fast_path: bool = True
    # Attach a shared flight recorder across all routers (see
    # ExperimentSpec.telemetry).
    telemetry: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.target_link_load <= 1.0:
            raise ValueError(
                f"target_link_load must be in (0, 1], got {self.target_link_load}"
            )
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.num_nodes}")
        if self.best_effort_rate < 0:
            raise ValueError(
                f"best_effort_rate must be >= 0, got {self.best_effort_rate}"
            )


@dataclass
class NetworkExperimentResult:
    """Measured outcome of one network experiment."""

    spec: NetworkExperimentSpec
    streams: int
    attempts: int
    mean_hops: float
    #: End-to-end per-flit statistics across all delivered stream flits.
    delay_cycles: RunningStats
    jitter_cycles: RunningStats
    #: Grouped by path length.
    by_hops: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    best_effort_delivered: int = 0
    links_searched: int = 0
    backtracks: int = 0
    #: The shared flight recorder, when ``spec.telemetry`` asked for one.
    recorder: Optional[FlightRecorder] = None

    @property
    def acceptance_ratio(self) -> float:
        """Established streams over establishment attempts."""
        return self.streams / self.attempts if self.attempts else 0.0

    @property
    def delay_per_hop(self) -> float:
        """Mean end-to-end delay normalised by mean path length."""
        return self.delay_cycles.mean / self.mean_hops if self.mean_hops else 0.0


def run_network_experiment(
    spec: NetworkExperimentSpec,
    topology: Optional[Topology] = None,
) -> NetworkExperimentResult:
    """Build the cluster, load it with CBR streams to the target link
    utilisation, run, and summarise end-to-end QoS."""
    rng = SeededRng(spec.seed, "network-experiment")
    if topology is None:
        topology = irregular(
            spec.num_nodes, rng.spawn("topology"), mean_degree=spec.mean_degree
        )
    config = RouterConfig(
        num_ports=topology.num_ports,
        vcs_per_port=spec.vcs_per_port,
        round_factor=spec.round_factor,
        enforce_round_budgets=False,
    )
    sim = Simulator(allow_fast_forward=spec.allow_fast_forward)
    recorder = None
    if spec.telemetry:
        recorder = FlightRecorder(
            manifest=build_manifest(
                seed=spec.seed,
                config=config,
                command="run_network_experiment",
                extra={
                    "num_nodes": spec.num_nodes,
                    "target_link_load": spec.target_link_load,
                    "warmup_cycles": spec.warmup_cycles,
                    "measure_cycles": spec.measure_cycles,
                },
            )
        )
    network = Network(
        topology,
        config,
        make_priority_scheme(spec.priority),
        sim,
        rng.spawn("network"),
        recorder=recorder,
        scheduler_fast_path=spec.scheduler_fast_path,
    )
    manager = ConnectionManager(network)
    interfaces = [
        NetworkInterface(network, manager, node, rng=rng.spawn(f"ni{node}"))
        for node in range(topology.num_nodes)
    ]

    # Admit streams until the mean router-to-router link utilisation
    # reaches the target (or admissions stop succeeding).
    demand_rng = rng.spawn("demand")
    streams: List[Tuple[int, OpenStream]] = []
    attempts = 0
    consecutive_failures = 0
    while consecutive_failures < 25:
        if _mean_link_utilisation(network, topology) >= spec.target_link_load:
            break
        src = demand_rng.randint(0, topology.num_nodes - 1)
        dst = demand_rng.randint(0, topology.num_nodes - 1)
        if src == dst:
            continue
        attempts += 1
        rate = demand_rng.choice((5e6, 20e6, 55e6, 120e6))
        stream = interfaces[src].open_cbr(dst, rate)
        if stream is None:
            consecutive_failures += 1
            continue
        consecutive_failures = 0
        streams.append((dst, stream))

    if spec.best_effort_rate > 0:
        be_rng = rng.spawn("be")
        interval = 100.0 / spec.best_effort_rate

        def chatter():
            src = be_rng.randint(0, topology.num_nodes - 1)
            dst = be_rng.randint(0, topology.num_nodes - 1)
            if src != dst:
                interfaces[src].send_best_effort(dst)
            sim.schedule(max(1, round(be_rng.expovariate(1.0 / interval))), chatter)

        for node in range(topology.num_nodes):
            sim.schedule(1 + node, chatter)

    sim.run(spec.warmup_cycles)
    for ni in interfaces:
        ni.end_to_end.clear()
        ni.flits_received = 0
        ni.packets_received = 0
    if recorder is not None:
        recorder.clear()
    sim.run(spec.measure_cycles)

    delay = RunningStats()
    jitter = RunningStats()
    hop_groups: Dict[int, Tuple[RunningStats, RunningStats]] = {}
    hops_total = 0.0
    for dst, stream in streams:
        stats = interfaces[dst].end_to_end.get(stream.connection.connection_id)
        hops_total += stream.connection.hops
        if stats is None or stats.flits == 0:
            continue
        delay.merge(_clone(stats.delay))
        jitter.merge(_clone(stats.jitter))
        hops = stream.connection.hops
        if hops not in hop_groups:
            hop_groups[hops] = (RunningStats(), RunningStats())
        hop_groups[hops][0].merge(_clone(stats.delay))
        hop_groups[hops][1].merge(_clone(stats.jitter))
    return NetworkExperimentResult(
        spec=spec,
        streams=len(streams),
        attempts=attempts,
        mean_hops=hops_total / len(streams) if streams else 0.0,
        delay_cycles=delay,
        jitter_cycles=jitter,
        by_hops={
            hops: (d.mean, j.mean) for hops, (d, j) in sorted(hop_groups.items())
        },
        best_effort_delivered=sum(ni.packets_received for ni in interfaces),
        links_searched=manager.stats.links_searched,
        backtracks=manager.stats.backtracks,
        recorder=recorder,
    )


def _mean_link_utilisation(network: Network, topology: Topology) -> float:
    """Mean committed utilisation over router-to-router output links."""
    total = 0.0
    count = 0
    for node in range(topology.num_nodes):
        router = network.routers[node]
        for port in range(topology.num_ports):
            if topology.neighbor_on_port(node, port) is None:
                continue
            total += router.admission.outputs[port].utilisation
            count += 1
    return total / count if count else 0.0


def _clone(stats: RunningStats) -> RunningStats:
    clone = RunningStats()
    clone.merge(stats)
    return clone
