"""Network-level QoS experiments (paper §6 — the MMR project's next step).

The paper evaluates a single router and closes by turning "to supported
VBR traffic and best-effort traffic" in networks.  This harness runs the
natural extension study: CBR connections established by EPB across a
multi-router cluster, measuring end-to-end delay and jitter as functions
of network load and hop count, optionally with best-effort background
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..ckpt.codec import (
    CheckpointCodec,
    CheckpointFormatError,
    CheckpointHeader,
    CheckpointMismatchError,
)
from ..core.config import RouterConfig
from ..core.priority import make_priority_scheme
from ..network.connection import ConnectionManager
from ..network.interface import NetworkInterface, OpenStream
from ..network.network import Network
from ..network.topology import Topology, irregular, mesh, torus
from ..obs import FlightRecorder, build_manifest
from ..routing.dimension_order import dimension_order_search
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from ..sim.stats import RunningStats
from .single_router import SimulatedWorkerCrash

#: Grid topology constructors selectable by spec string.
_GRID_TOPOLOGIES = {"mesh": mesh, "torus": torus}


def parse_topology(name: str) -> Tuple[str, Optional[Tuple[int, int]]]:
    """Parse a spec topology string into ``(kind, dims)``.

    ``"irregular"`` -> ``("irregular", None)``; ``"mesh8x8"`` ->
    ``("mesh", (8, 8))``; ``"torus16x16"`` -> ``("torus", (16, 16))``.
    """
    if name == "irregular":
        return "irregular", None
    for kind in _GRID_TOPOLOGIES:
        if name.startswith(kind):
            parts = name[len(kind):].split("x")
            if len(parts) == 2 and all(p.isdigit() for p in parts):
                return kind, (int(parts[0]), int(parts[1]))
    raise ValueError(
        f"unknown topology {name!r}: expected 'irregular', "
        "'mesh<W>x<H>' or 'torus<W>x<H>'"
    )


def build_spec_topology(spec: "NetworkExperimentSpec", rng: SeededRng) -> Topology:
    """Construct the topology a spec names.

    Grid topologies define their own node count; ``num_nodes`` and
    ``mean_degree`` only shape the irregular default.
    """
    kind, dims = parse_topology(spec.topology)
    if kind == "irregular":
        return irregular(spec.num_nodes, rng, mean_degree=spec.mean_degree)
    return _GRID_TOPOLOGIES[kind](*dims)


@dataclass(frozen=True)
class NetworkExperimentSpec:
    """One network-level experiment point."""

    #: Target mean utilisation of router-to-router links (0..1).
    target_link_load: float
    num_nodes: int = 12
    mean_degree: float = 3.0
    priority: str = "biased"
    #: Best-effort packets per node per 100 cycles (0 disables).
    best_effort_rate: float = 0.0
    vcs_per_port: int = 64
    round_factor: int = 8
    warmup_cycles: int = 5000
    measure_cycles: int = 20000
    seed: int = 1
    # Kernel mode knob (see ExperimentSpec.allow_fast_forward).
    allow_fast_forward: bool = True
    # Link-scheduler mode knob (see ExperimentSpec.scheduler_fast_path).
    scheduler_fast_path: bool = True
    # Columnar state engine knob (see ExperimentSpec.columnar_state).
    columnar_state: bool = False
    # Attach a shared flight recorder across all routers (see
    # ExperimentSpec.telemetry).
    telemetry: bool = False
    # Network-wide arena knob (DESIGN.md §7f): ring-buffered links and
    # wake-masked router stepping.  Requires NumPy.
    network_arena: bool = False
    #: ``"irregular"`` (default), ``"mesh<W>x<H>"`` or ``"torus<W>x<H>"``.
    #: Grid topologies fix their own node count; ``num_nodes`` and
    #: ``mean_degree`` apply to the irregular default only.
    topology: str = "irregular"
    #: ``"adaptive"`` (EPB probe + minimal-adaptive best-effort) or
    #: ``"dimension_order"`` (deterministic XY; grid topologies only).
    routing: str = "adaptive"

    def __post_init__(self) -> None:
        if not 0.0 < self.target_link_load <= 1.0:
            raise ValueError(
                f"target_link_load must be in (0, 1], got {self.target_link_load}"
            )
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.num_nodes}")
        if self.best_effort_rate < 0:
            raise ValueError(
                f"best_effort_rate must be >= 0, got {self.best_effort_rate}"
            )
        if self.routing not in ("adaptive", "dimension_order"):
            raise ValueError(
                f"routing must be 'adaptive' or 'dimension_order', got {self.routing!r}"
            )
        kind, _ = parse_topology(self.topology)
        if self.routing == "dimension_order" and kind == "irregular":
            raise ValueError(
                "dimension_order routing needs a mesh/torus grid topology"
            )


@dataclass
class NetworkExperimentResult:
    """Measured outcome of one network experiment."""

    spec: NetworkExperimentSpec
    streams: int
    attempts: int
    mean_hops: float
    #: End-to-end per-flit statistics across all delivered stream flits.
    delay_cycles: RunningStats
    jitter_cycles: RunningStats
    #: Grouped by path length.
    by_hops: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    best_effort_delivered: int = 0
    links_searched: int = 0
    backtracks: int = 0
    #: The shared flight recorder, when ``spec.telemetry`` asked for one.
    recorder: Optional[FlightRecorder] = None
    #: Checkpoint lineage, when the run was checkpointed or resumed:
    #: path, resumed_from_cycle (None for a straight run), and how many
    #: checkpoints were written.  Merged into sweep manifests.
    checkpoint: Optional[Dict[str, Any]] = None

    @property
    def acceptance_ratio(self) -> float:
        """Established streams over establishment attempts."""
        return self.streams / self.attempts if self.attempts else 0.0

    @property
    def mean_delay_cycles(self) -> float:
        """Flit-weighted mean end-to-end delay, in cycles."""
        return self.delay_cycles.mean

    @property
    def mean_jitter_cycles(self) -> float:
        """Flit-weighted mean end-to-end jitter, in cycles."""
        return self.jitter_cycles.mean

    @property
    def delay_per_hop(self) -> float:
        """Mean end-to-end delay normalised by mean path length."""
        return self.delay_cycles.mean / self.mean_hops if self.mean_hops else 0.0


class NetworkExperiment:
    """A network-level evaluation point as a resumable object.

    Construction builds and loads the cluster (stream admission is
    synchronous); :meth:`run_to` advances it with the warm-up boundary
    handled exactly once; :meth:`checkpoint` / :meth:`resume` round-trip
    the whole cluster — all routers, links in flight, interfaces and the
    best-effort chatter events — through the checkpoint codec.
    """

    #: Checkpoint producer tag (header ``kind``).
    KIND = "network"

    def __init__(
        self,
        spec: NetworkExperimentSpec,
        topology: Optional[Topology] = None,
    ) -> None:
        rng = SeededRng(spec.seed, "network-experiment")
        if topology is None:
            topology = build_spec_topology(spec, rng.spawn("topology"))
        config = RouterConfig(
            num_ports=topology.num_ports,
            vcs_per_port=spec.vcs_per_port,
            round_factor=spec.round_factor,
            enforce_round_budgets=False,
        )
        sim = Simulator(allow_fast_forward=spec.allow_fast_forward)
        recorder = None
        if spec.telemetry:
            recorder = FlightRecorder(
                manifest=build_manifest(
                    seed=spec.seed,
                    config=config,
                    command="run_network_experiment",
                    extra={
                        "num_nodes": spec.num_nodes,
                        "target_link_load": spec.target_link_load,
                        "warmup_cycles": spec.warmup_cycles,
                        "measure_cycles": spec.measure_cycles,
                    },
                )
            )
        network = Network(
            topology,
            config,
            make_priority_scheme(spec.priority),
            sim,
            rng.spawn("network"),
            recorder=recorder,
            scheduler_fast_path=spec.scheduler_fast_path,
            columnar_state=spec.columnar_state,
            network_arena=spec.network_arena,
            routing=spec.routing,
        )
        manager = ConnectionManager(
            network,
            path_search=(
                dimension_order_search
                if spec.routing == "dimension_order"
                else None
            ),
        )
        interfaces = [
            NetworkInterface(network, manager, node, rng=rng.spawn(f"ni{node}"))
            for node in range(topology.num_nodes)
        ]

        # Admit streams until the mean router-to-router link utilisation
        # reaches the target (or admissions stop succeeding).
        demand_rng = rng.spawn("demand")
        streams: List[Tuple[int, OpenStream]] = []
        attempts = 0
        consecutive_failures = 0
        while consecutive_failures < 25:
            if _mean_link_utilisation(network, topology) >= spec.target_link_load:
                break
            src = demand_rng.randint(0, topology.num_nodes - 1)
            dst = demand_rng.randint(0, topology.num_nodes - 1)
            if src == dst:
                continue
            attempts += 1
            rate = demand_rng.choice((5e6, 20e6, 55e6, 120e6))
            stream = interfaces[src].open_cbr(dst, rate)
            if stream is None:
                consecutive_failures += 1
                continue
            consecutive_failures = 0
            streams.append((dst, stream))

        self.spec = spec
        self.topology = topology
        self.config = config
        self.sim = sim
        self.recorder = recorder
        self.network = network
        self.manager = manager
        self.interfaces = interfaces
        self.streams = streams
        self.attempts = attempts
        self._be_rng = None
        self._be_interval = 0.0
        self._measurement_started = False

        if spec.best_effort_rate > 0:
            self._be_rng = rng.spawn("be")
            self._be_interval = 100.0 / spec.best_effort_rate
            for node in range(topology.num_nodes):
                sim.schedule(1 + node, self._chatter)

    def _chatter(self) -> None:
        """Self-rescheduling best-effort background traffic (a bound
        method, not a closure, so pending chatter events checkpoint)."""
        be_rng = self._be_rng
        num_nodes = self.topology.num_nodes
        src = be_rng.randint(0, num_nodes - 1)
        dst = be_rng.randint(0, num_nodes - 1)
        if src != dst:
            self.interfaces[src].send_best_effort(dst)
        self.sim.schedule(
            max(1, round(be_rng.expovariate(1.0 / self._be_interval))),
            self._chatter,
        )

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.now

    @property
    def total_cycles(self) -> int:
        """Warm-up plus measurement horizon."""
        return self.spec.warmup_cycles + self.spec.measure_cycles

    def run_to(self, cycle: int) -> None:
        """Advance to absolute ``cycle`` (clamped to the experiment end),
        resetting measurement state once at the warm-up boundary."""
        target = min(int(cycle), self.total_cycles)
        if target < self.sim.now:
            raise ValueError(
                f"cannot run backwards to {target}, now is {self.sim.now}"
            )
        warmup = self.spec.warmup_cycles
        if self.sim.now < warmup:
            self.sim.run(min(target, warmup) - self.sim.now)
        if self.sim.now >= warmup and not self._measurement_started:
            self._measurement_started = True
            for ni in self.interfaces:
                ni.end_to_end.clear()
                ni.flits_received = 0
                ni.packets_received = 0
            if self.recorder is not None:
                self.recorder.clear()
        if target > self.sim.now:
            self.sim.run(target - self.sim.now)

    def result(self) -> NetworkExperimentResult:
        """Summarise the (completed) run; runs any remaining cycles."""
        if self.sim.now < self.total_cycles:
            self.run_to(self.total_cycles)
        # Sleeping routers accrue idle cycles lazily under the arena;
        # replay the outstanding spans before reading any counters.
        self.network.flush_arena_accounting()
        interfaces = self.interfaces
        delay = RunningStats()
        jitter = RunningStats()
        hop_groups: Dict[int, Tuple[RunningStats, RunningStats]] = {}
        hops_total = 0.0
        for dst, stream in self.streams:
            stats = interfaces[dst].end_to_end.get(stream.connection.connection_id)
            hops_total += stream.connection.hops
            if stats is None or stats.flits == 0:
                continue
            delay.merge(_clone(stats.delay))
            jitter.merge(_clone(stats.jitter))
            hops = stream.connection.hops
            if hops not in hop_groups:
                hop_groups[hops] = (RunningStats(), RunningStats())
            hop_groups[hops][0].merge(_clone(stats.delay))
            hop_groups[hops][1].merge(_clone(stats.jitter))
        return NetworkExperimentResult(
            spec=self.spec,
            streams=len(self.streams),
            attempts=self.attempts,
            mean_hops=hops_total / len(self.streams) if self.streams else 0.0,
            delay_cycles=delay,
            jitter_cycles=jitter,
            by_hops={
                hops: (d.mean, j.mean) for hops, (d, j) in sorted(hop_groups.items())
            },
            best_effort_delivered=sum(ni.packets_received for ni in interfaces),
            links_searched=self.manager.stats.links_searched,
            backtracks=self.manager.stats.backtracks,
            recorder=self.recorder,
        )

    # ----- checkpoint / resume ----------------------------------------------

    def checkpoint(self, path) -> CheckpointHeader:
        """Write the complete cluster state to ``path`` (``ckpt/1``)."""
        return CheckpointCodec.save(
            path,
            {"experiment": self},
            kind=self.KIND,
            cycle=self.sim.now,
            seed=self.spec.seed,
            config=self.config,
            extra={
                "num_nodes": self.spec.num_nodes,
                "target_link_load": self.spec.target_link_load,
                "warmup_cycles": self.spec.warmup_cycles,
                "measure_cycles": self.spec.measure_cycles,
                "measurement_started": self._measurement_started,
            },
        )

    @classmethod
    def resume(
        cls, path, expect_spec: Optional[NetworkExperimentSpec] = None
    ) -> "NetworkExperiment":
        """Reload a checkpointed network experiment, verifying provenance."""
        _, components = CheckpointCodec.load(path, expect_kind=cls.KIND)
        experiment = components.get("experiment")
        if not isinstance(experiment, cls):
            raise CheckpointFormatError(
                f"{path}: checkpoint does not contain a {cls.__name__}"
            )
        if expect_spec is not None and experiment.spec != expect_spec:
            raise CheckpointMismatchError("spec", experiment.spec, expect_spec)
        return experiment


def run_network_experiment(
    spec: NetworkExperimentSpec,
    topology: Optional[Topology] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path=None,
    resume: bool = False,
    _crash_at_cycle: Optional[int] = None,
) -> NetworkExperimentResult:
    """Build the cluster, load it with CBR streams to the target link
    utilisation, run, and summarise end-to-end QoS.

    ``checkpoint_every=N`` writes a checkpoint to ``checkpoint_path``
    every N cycles (atomically, latest wins); ``resume=True`` continues
    from an existing checkpoint at that path instead of rebuilding from
    cycle 0 — bit-identical results either way.  ``_crash_at_cycle`` is
    a test hook that raises :class:`SimulatedWorkerCrash` once the
    (first, non-resumed) run passes that cycle.
    """
    if checkpoint_every is not None and checkpoint_every <= 0:
        raise ValueError(f"checkpoint_every must be positive, got {checkpoint_every}")
    if checkpoint_every is None and not resume and _crash_at_cycle is None:
        experiment = NetworkExperiment(spec, topology)
        return experiment.result()
    if checkpoint_path is None:
        raise ValueError("checkpointing requires a checkpoint_path")
    path = Path(checkpoint_path)
    lineage: Dict[str, Any] = {
        "schema": CheckpointCodec.schema,
        "path": str(path),
        "resumed_from_cycle": None,
        "checkpoints_written": 0,
    }
    if resume and path.exists():
        experiment = NetworkExperiment.resume(path, expect_spec=spec)
        lineage["resumed_from_cycle"] = experiment.now
    else:
        experiment = NetworkExperiment(spec, topology)
    total = experiment.total_cycles
    stride = checkpoint_every if checkpoint_every is not None else total
    while experiment.now < total:
        experiment.run_to(min(experiment.now + stride, total))
        if checkpoint_every is not None and experiment.now < total:
            header = experiment.checkpoint(path)
            lineage["checkpoints_written"] += 1
            lineage["last_checkpoint_cycle"] = header.cycle
        if (
            _crash_at_cycle is not None
            and lineage["resumed_from_cycle"] is None
            and _crash_at_cycle <= experiment.now < total
        ):
            raise SimulatedWorkerCrash(
                f"worker killed at cycle {experiment.now} (test hook)"
            )
    result = experiment.result()
    result.checkpoint = lineage
    return result


class _LoggedDelivery:
    """Host-delivery wrapper that fingerprints flits into a shared list
    (a bound class, not a closure, so wrapped handlers checkpoint)."""

    __slots__ = ("sim", "log", "inner")

    def __init__(self, sim: Simulator, log: List[tuple], inner) -> None:
        self.sim = sim
        self.log = log
        self.inner = inner

    def __call__(self, node: int, port: int, flit) -> None:
        self.log.append(
            (self.sim.now, node, port, flit.connection_id, flit.sequence,
             flit.created)
        )
        self.inner(node, port, flit)


def attach_delivery_log(experiment: NetworkExperiment) -> List[tuple]:
    """Record every host-delivered flit, in delivery order.

    Returns a live list of ``(cycle, node, port, connection_id,
    sequence, created)`` tuples — the delivered-flit stream the arena
    identity gates compare bit-for-bit against the event-driven
    baseline.  (Flit ids are process-global and differ between runs, so
    the fingerprint uses per-connection sequence numbers instead.)
    """
    log: List[tuple] = []
    network = experiment.network
    for key, handler in list(network._host_delivery.items()):
        network._host_delivery[key] = _LoggedDelivery(network.sim, log, handler)
    return log


def _mean_link_utilisation(network: Network, topology: Topology) -> float:
    """Mean committed utilisation over router-to-router output links."""
    total = 0.0
    count = 0
    for node in range(topology.num_nodes):
        router = network.routers[node]
        for port in range(topology.num_ports):
            if topology.neighbor_on_port(node, port) is None:
                continue
            total += router.admission.outputs[port].utilisation
            count += 1
    return total / count if count else 0.0


def _clone(stats: RunningStats) -> RunningStats:
    clone = RunningStats()
    clone.merge(stats)
    return clone
