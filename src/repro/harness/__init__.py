"""Experiment harnesses: the paper's evaluation and design-space sweeps."""

from .figures import (
    DEFAULT_LOADS,
    FigureData,
    clear_cache,
    figure3,
    figure4,
    figure5,
    run_point,
)
from .churn import (
    ChurnResult,
    ChurnSpec,
    ChurnWorkload,
    run_churn_experiment,
)
from .report import ascii_plot, format_series, format_table
from .single_router import (
    PAPER_CONFIG,
    ExperimentResult,
    ExperimentSpec,
    SimulatedWorkerCrash,
    SingleRouterExperiment,
    run_single_router_experiment,
)
from .export import (
    figure_to_dict,
    result_to_dict,
    write_figure_csv,
    write_figure_json,
    write_result_json,
)
from .saturation import SaturationEstimate, find_saturation_load, is_saturated
from .sweep import (
    Checkpointing,
    SweepAxis,
    SweepPointError,
    SweepResult,
    build_spec,
    run_sweep,
)

__all__ = [
    "ChurnResult",
    "ChurnSpec",
    "ChurnWorkload",
    "run_churn_experiment",
    "DEFAULT_LOADS",
    "FigureData",
    "clear_cache",
    "figure3",
    "figure4",
    "figure5",
    "run_point",
    "ascii_plot",
    "format_series",
    "format_table",
    "PAPER_CONFIG",
    "ExperimentResult",
    "ExperimentSpec",
    "SimulatedWorkerCrash",
    "SingleRouterExperiment",
    "run_single_router_experiment",
    "Checkpointing",
    "SweepAxis",
    "SweepPointError",
    "SweepResult",
    "build_spec",
    "run_sweep",
    "figure_to_dict",
    "result_to_dict",
    "write_figure_csv",
    "write_figure_json",
    "write_result_json",
    "SaturationEstimate",
    "find_saturation_load",
    "is_saturated",
]
