"""Regeneration of the paper's Figures 3-5 (paper §5.2).

* Figure 3 — jitter vs offered load, fixed vs biased priorities, at 1/2
  candidates and 4/8 candidates.
* Figure 4 — delay (microseconds) vs offered load, same grid.
* Figure 5 — delay and jitter vs offered load for biased, fixed, DEC
  (Autonet) and the perfect switch, all at 8 candidates.

Figures 3 and 4 are two views of one experiment grid, so results are
cached per spec and shared.  Every run prints the series as a table (the
same rows the paper plots); the benchmark suite wraps these functions
with pytest-benchmark timing.

Run standalone::

    python -m repro.harness.figures fig3 [--full] [--jobs=N]
    python -m repro.harness.figures all  --full --jobs=4   # paper-scale cycles
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .report import format_series
from .single_router import ExperimentResult, ExperimentSpec, run_single_router_experiment

#: Offered-load axis (the paper sweeps roughly 10%..95%).
DEFAULT_LOADS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95)

#: Quick profile: enough cycles for stable sub-saturation statistics.
QUICK_CYCLES = {"warmup_cycles": 5000, "measure_cycles": 20000}
#: Full profile: the paper's ~100k-cycle measurement window.
FULL_CYCLES = {"warmup_cycles": 20000, "measure_cycles": 100000}

_cache: Dict[ExperimentSpec, ExperimentResult] = {}

#: Optional persistent layer behind the memo: a content-addressed
#: :class:`repro.fabric.store.ResultStore`.  Off by default — figure
#: results only persist across invocations when the caller opts in via
#: :func:`enable_figure_cache` (CLI: ``--cache-dir=PATH``).
_store = None

#: Store point-key namespace for figure points (the spec's config digest
#: carries every parameter, so one constant key suffices).
_STORE_POINT_KEY = "figures"


def enable_figure_cache(directory, revision: Optional[str] = None):
    """Back the figure memo with a persistent content-addressed store.

    Results are keyed on ``(config digest, code revision)`` — rerunning
    ``repro figures`` with the same specs on the same commit is warm
    across invocations, while any spec or code change misses (the fabric
    store makes stale hits structurally impossible).  Returns the store
    so callers can read ``store.stats()``.
    """
    global _store
    from ..fabric.store import ResultStore

    _store = ResultStore(directory, revision=revision)
    return _store


def disable_figure_cache() -> None:
    """Detach the persistent layer (memo keeps working)."""
    global _store
    _store = None


def _store_fetch(spec: ExperimentSpec) -> Optional[ExperimentResult]:
    if _store is None:
        return None
    entry = _store.get(_store.key_for(spec, _STORE_POINT_KEY))
    return entry[0] if entry is not None else None


def _store_put(spec: ExperimentSpec, result: ExperimentResult) -> None:
    # Telemetry-enabled results hold a live recorder (closures over the
    # simulator) that must not be pickled; those stay memo-only.
    if _store is not None and result.recorder is None:
        _store.put(_store.key_for(spec, _STORE_POINT_KEY), result)


def run_point(spec: ExperimentSpec) -> ExperimentResult:
    """Run one experiment point, memoised on the full spec.

    With :func:`enable_figure_cache` active, the persistent store sits
    behind the memo: store hits skip the simulation entirely and fresh
    results are written through for the next invocation.
    """
    result = _cache.get(spec)
    if result is None:
        result = _store_fetch(spec)
        if result is None:
            result = run_single_router_experiment(spec)
            _store_put(spec, result)
        _cache[spec] = result
    return result


def clear_cache() -> None:
    """Drop memoised results (tests use this for isolation)."""
    _cache.clear()


def prime_cache(specs: Iterable[ExperimentSpec], jobs: int = 1) -> None:
    """Run not-yet-memoised specs, optionally over worker processes.

    Figure points are independent simulations, so ``jobs=N`` fans them
    out with :class:`ProcessPoolExecutor`; results land in the same memo
    cache :func:`run_point` reads, making the benchmark figures embarrass-
    ingly parallel without touching the figure-assembly code.  When the
    persistent figure cache is enabled, store hits are resolved first
    and only the remainder is computed (then written through).
    """
    pending = [spec for spec in dict.fromkeys(specs) if spec not in _cache]
    if _store is not None:
        remaining = []
        for spec in pending:
            result = _store_fetch(spec)
            if result is not None:
                _cache[spec] = result
            else:
                remaining.append(spec)
        pending = remaining
    if not pending:
        return
    if jobs <= 1 or len(pending) == 1:
        for spec in pending:
            result = run_single_router_experiment(spec)
            _store_put(spec, result)
            _cache[spec] = result
        return
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        for spec, result in zip(
            pending, pool.map(run_single_router_experiment, pending)
        ):
            _store_put(spec, result)
            _cache[spec] = result


@dataclass
class FigureData:
    """One figure's series, ready for tabulation or plotting."""

    title: str
    x_label: str
    xs: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def table(self, precision: int = 3) -> str:
        """The figure as an aligned text table."""
        return format_series(self.title, self.x_label, self.xs, self.series, precision)


def _cycles(full: bool) -> dict:
    return FULL_CYCLES if full else QUICK_CYCLES


def _grid_specs(
    loads: Sequence[float],
    combos: Iterable[Tuple[str, str, int]],
    full: bool,
    seed: int,
) -> Dict[Tuple[str, str, int, float], ExperimentSpec]:
    cycles = _cycles(full)
    specs = {}
    for scheduler, priority, candidates in combos:
        for load in loads:
            specs[(scheduler, priority, candidates, load)] = ExperimentSpec(
                target_load=load,
                scheduler=scheduler,
                priority=priority,
                candidates=candidates,
                seed=seed,
                **cycles,
            )
    return specs


def _series_label(priority: str, candidates: int) -> str:
    return f"{candidates}C {priority}"


def _fig34_grid(
    loads: Sequence[float],
    candidates: Sequence[int],
    full: bool,
    seed: int,
    jobs: int = 1,
) -> Dict[Tuple[str, str, int, float], ExperimentResult]:
    combos = [
        ("greedy", priority, c) for priority in ("biased", "fixed") for c in candidates
    ]
    specs = _grid_specs(loads, combos, full, seed)
    prime_cache(specs.values(), jobs)
    return {key: run_point(spec) for key, spec in specs.items()}


def figure3(
    loads: Sequence[float] = DEFAULT_LOADS,
    candidates: Sequence[int] = (1, 2, 4, 8),
    full: bool = False,
    seed: int = 1,
    jobs: int = 1,
) -> FigureData:
    """Jitter vs offered load for fixed and biased priorities."""
    results = _fig34_grid(loads, candidates, full, seed, jobs)
    data = FigureData(
        title="Figure 3: Jitter vs Offered Load (flit cycles), 1.24 Gb links",
        x_label="load",
        xs=list(loads),
    )
    for c in candidates:
        for priority in ("biased", "fixed"):
            data.series[_series_label(priority, c)] = [
                results[("greedy", priority, c, load)].mean_jitter_cycles
                for load in loads
            ]
    return data


def figure4(
    loads: Sequence[float] = DEFAULT_LOADS,
    candidates: Sequence[int] = (1, 2, 4, 8),
    full: bool = False,
    seed: int = 1,
    jobs: int = 1,
) -> FigureData:
    """Delay (microseconds) vs offered load for fixed and biased."""
    results = _fig34_grid(loads, candidates, full, seed, jobs)
    data = FigureData(
        title="Figure 4: Delay vs Offered Load (microseconds), 1.24 Gb links",
        x_label="load",
        xs=list(loads),
    )
    for c in candidates:
        for priority in ("biased", "fixed"):
            data.series[_series_label(priority, c)] = [
                results[("greedy", priority, c, load)].mean_delay_us
                for load in loads
            ]
    return data


#: The four algorithms Figure 5 compares, all with 8 candidates.
FIGURE5_VARIANTS: Tuple[Tuple[str, str, str], ...] = (
    ("biased", "greedy", "biased"),
    ("fixed", "greedy", "fixed"),
    ("DEC", "dec", "fixed"),
    ("perfect", "perfect", "biased"),
)


def figure5(
    loads: Sequence[float] = DEFAULT_LOADS,
    full: bool = False,
    seed: int = 1,
    candidates: int = 8,
    jobs: int = 1,
) -> Tuple[FigureData, FigureData]:
    """Delay and jitter vs load: biased, fixed, DEC, perfect (8 candidates)."""
    cycles = _cycles(full)
    prime_cache(
        (
            ExperimentSpec(
                target_load=load,
                scheduler=scheduler,
                priority=priority,
                candidates=candidates,
                seed=seed,
                **cycles,
            )
            for _, scheduler, priority in FIGURE5_VARIANTS
            for load in loads
        ),
        jobs,
    )
    delay = FigureData(
        title="Figure 5a: Delay vs Offered Load (microseconds), 8 candidates",
        x_label="load",
        xs=list(loads),
    )
    jitter = FigureData(
        title="Figure 5b: Jitter vs Offered Load (flit cycles), 8 candidates",
        x_label="load",
        xs=list(loads),
    )
    for label, scheduler, priority in FIGURE5_VARIANTS:
        delays, jitters = [], []
        for load in loads:
            spec = ExperimentSpec(
                target_load=load,
                scheduler=scheduler,
                priority=priority,
                candidates=candidates,
                seed=seed,
                **cycles,
            )
            result = run_point(spec)
            delays.append(result.mean_delay_us)
            jitters.append(result.mean_jitter_cycles)
        delay.series[label] = delays
        jitter.series[label] = jitters
    return delay, jitter


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: regenerate one figure (or all) and print its table(s)."""
    args = list(sys.argv[1:] if argv is None else argv)
    full = "--full" in args
    jobs = 1
    cache_dir = None
    for arg in args:
        if arg.startswith("--jobs="):
            jobs = int(arg.split("=", 1)[1])
        elif arg.startswith("--cache-dir="):
            cache_dir = arg.split("=", 1)[1]
    args = [a for a in args if not a.startswith("--")]
    which = args[0] if args else "all"
    if which not in ("fig3", "fig4", "fig5", "all"):
        print(
            f"unknown figure {which!r}; use fig3|fig4|fig5|all "
            "[--full] [--jobs=N] [--cache-dir=PATH]"
        )
        return 2
    store = enable_figure_cache(cache_dir) if cache_dir else None
    if which in ("fig3", "all"):
        print(figure3(full=full, jobs=jobs).table())
        print()
    if which in ("fig4", "all"):
        print(figure4(full=full, jobs=jobs).table())
        print()
    if which in ("fig5", "all"):
        delay, jitter = figure5(full=full, jobs=jobs)
        print(delay.table())
        print()
        print(jitter.table())
    if store is not None:
        stats = store.stats()
        print(
            f"figure cache [{stats['root']}]: {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['writes']} written "
            f"(hit ratio {stats['hit_ratio']:.2f})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
