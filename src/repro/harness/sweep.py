"""Generic parameter sweeps over the single-router experiment.

The figure harness covers the paper's evaluation grid; this module covers
the *design-space* sweeps DESIGN.md's ablation index calls for — candidate
counts, round factors, VC counts, flit sizes — by generating spec grids
from a base spec plus per-axis overrides.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.config import RouterConfig
from .single_router import ExperimentResult, ExperimentSpec, run_single_router_experiment


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: its name and values.

    ``target`` says where the parameter lives: 'spec' for
    :class:`ExperimentSpec` fields, 'config' for :class:`RouterConfig`
    fields (applied with ``config.with_``).
    """

    name: str
    values: Tuple[Any, ...]
    target: str = "spec"

    def __post_init__(self) -> None:
        if self.target not in ("spec", "config"):
            raise ValueError(f"unknown axis target {self.target!r}")
        if not self.values:
            raise ValueError(f"axis {self.name} has no values")


@dataclass
class SweepResult:
    """All results of one sweep, keyed by the axis-value tuples."""

    axes: Tuple[SweepAxis, ...]
    results: Dict[Tuple[Any, ...], ExperimentResult] = field(default_factory=dict)

    def column(self, metric: str) -> Dict[Tuple[Any, ...], float]:
        """Extract one metric across the grid.

        ``metric`` is an attribute of :class:`ExperimentResult`
        (``mean_delay_us``, ``mean_jitter_cycles``, ``utilisation``, ...).
        """
        return {key: getattr(result, metric) for key, result in self.results.items()}

    def rows(self, metrics: Sequence[str]) -> List[List[Any]]:
        """Table rows: axis values followed by the requested metrics."""
        out = []
        for key in sorted(self.results, key=str):
            result = self.results[key]
            out.append(list(key) + [getattr(result, m) for m in metrics])
        return out


def build_spec(base: ExperimentSpec, assignment: Mapping[str, Tuple[str, Any]]) -> ExperimentSpec:
    """Apply one grid point's axis assignment to the base spec."""
    spec_overrides = {
        name: value for name, (target, value) in assignment.items() if target == "spec"
    }
    config_overrides = {
        name: value for name, (target, value) in assignment.items() if target == "config"
    }
    spec = replace(base, **spec_overrides) if spec_overrides else base
    if config_overrides:
        spec = replace(spec, config=spec.config.with_(**config_overrides))
    return spec


def run_sweep(base: ExperimentSpec, axes: Sequence[SweepAxis]) -> SweepResult:
    """Run the full cartesian product of the axes over the base spec."""
    sweep = SweepResult(tuple(axes))
    for values in itertools.product(*(axis.values for axis in axes)):
        assignment = {
            axis.name: (axis.target, value) for axis, value in zip(axes, values)
        }
        spec = build_spec(base, assignment)
        sweep.results[values] = run_single_router_experiment(spec)
    return sweep
