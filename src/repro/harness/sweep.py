"""Generic parameter sweeps over the single-router experiment.

The figure harness covers the paper's evaluation grid; this module covers
the *design-space* sweeps DESIGN.md's ablation index calls for — candidate
counts, round factors, VC counts, flit sizes — by generating spec grids
from a base spec plus per-axis overrides.

Sweep points are independent simulations, so :func:`run_sweep` can fan
them out over worker processes (``jobs=N``).  Each worker receives one
fully-built, seeded :class:`ExperimentSpec` and returns the picklable
part of the result; rows are identical to a serial run because nothing
about a point depends on execution order.
"""

from __future__ import annotations

import hashlib
import itertools
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.config import RouterConfig
from .single_router import ExperimentResult, ExperimentSpec, run_single_router_experiment


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: its name and values.

    ``target`` says where the parameter lives: 'spec' for
    :class:`ExperimentSpec` fields, 'config' for :class:`RouterConfig`
    fields (applied with ``config.with_``).
    """

    name: str
    values: Tuple[Any, ...]
    target: str = "spec"

    def __post_init__(self) -> None:
        if self.target not in ("spec", "config"):
            raise ValueError(f"unknown axis target {self.target!r}")
        if not self.values:
            raise ValueError(f"axis {self.name} has no values")


class SweepPointError(RuntimeError):
    """One sweep point's experiment raised; names the failing point.

    Fully picklable across the process boundary: the axis assignment and
    the cause travel as plain strings rather than as the live exception
    chain (a worker-side traceback can reference unpicklable frames and
    would poison the future's result channel).

    ``completed`` carries the :class:`SweepResult` holding every point
    that finished before the failure (possibly empty) — hours of
    finished grid rows survive the crash instead of being discarded with
    the exception.  It is a plain attribute, deliberately outside
    ``__reduce__``: live results need not be picklable, and the error's
    cross-process contract stays ``(point, cause_repr)``.
    """

    def __init__(self, point: str, cause) -> None:
        cause_repr = cause if isinstance(cause, str) else repr(cause)
        super().__init__(f"sweep point [{point}] failed: {cause_repr}")
        self.point = point
        self.cause_repr = cause_repr
        self.completed: Optional["SweepResult"] = None

    def __reduce__(self):
        return (SweepPointError, (self.point, self.cause_repr))


@dataclass(frozen=True)
class Checkpointing:
    """Sweep checkpoint policy: where, how often, and whether to resume.

    Each sweep point checkpoints to its own file under ``directory``
    (named from the axis assignment plus a digest, so renamed values
    cannot collide).  With ``resume=True`` (the default) a rerun of the
    same sweep picks every point up from its latest checkpoint instead
    of recomputing from cycle 0 — this is how a crashed or preempted
    ``run_sweep`` is continued: just run it again.
    """

    directory: "Path | str"
    every: int
    resume: bool = True
    #: Test hook, forwarded to the runner: the first (non-resumed)
    #: attempt of every point raises once it passes this cycle.
    crash_at_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.every <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {self.every}")

    def point_path(self, key: Tuple[Any, ...]) -> Path:
        """The checkpoint file for one grid point (stable across runs)."""
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:12]
        human = re.sub(r"[^A-Za-z0-9.=_-]+", "_", "_".join(str(v) for v in key))
        return Path(self.directory) / f"point-{human[:60]}-{digest}.ckpt"


@dataclass
class SweepResult:
    """All results of one sweep, keyed by the axis-value tuples."""

    axes: Tuple[SweepAxis, ...]
    results: Dict[Tuple[Any, ...], ExperimentResult] = field(default_factory=dict)
    #: Run manifests of telemetry-enabled points, merged across workers
    #: (parallel workers cannot ship the recorder itself — see
    #: :func:`_run_point`).
    manifests: Dict[Tuple[Any, ...], Dict[str, Any]] = field(default_factory=dict)

    def column(self, metric: str) -> Dict[Tuple[Any, ...], float]:
        """Extract one metric across the grid.

        ``metric`` is an attribute of :class:`ExperimentResult`
        (``mean_delay_us``, ``mean_jitter_cycles``, ``utilisation``, ...).
        """
        return {key: getattr(result, metric) for key, result in self.results.items()}

    def rows(self, metrics: Sequence[str]) -> List[List[Any]]:
        """Table rows: axis values followed by the requested metrics.

        Rows are ordered by the axis-value tuples themselves, not their
        string forms: numeric axes sort numerically (``(9,)`` before
        ``(10,)``), non-numeric values sort by string within their own
        group, and mixed-type axes never raise.
        """
        out = []
        for key in sorted(self.results, key=_point_sort_key):
            result = self.results[key]
            out.append(list(key) + [getattr(result, m) for m in metrics])
        return out


def _point_sort_key(key: Tuple[Any, ...]) -> Tuple[Tuple[int, float, str], ...]:
    """Type-stable comparator for grid keys.

    Each element maps to ``(type rank, numeric value, string value)`` so
    numbers compare numerically, everything else compares as text, and
    heterogeneous grids order deterministically without TypeError.
    """
    parts = []
    for value in key:
        if isinstance(value, bool):
            # bool is an int subclass but is a flag, not a magnitude.
            parts.append((1, float(value), ""))
        elif isinstance(value, (int, float)):
            parts.append((0, float(value), ""))
        else:
            parts.append((2, 0.0, str(value)))
    return tuple(parts)


def build_spec(base: ExperimentSpec, assignment: Mapping[str, Tuple[str, Any]]) -> ExperimentSpec:
    """Apply one grid point's axis assignment to the base spec."""
    spec_overrides = {
        name: value for name, (target, value) in assignment.items() if target == "spec"
    }
    config_overrides = {
        name: value for name, (target, value) in assignment.items() if target == "config"
    }
    spec = replace(base, **spec_overrides) if spec_overrides else base
    if config_overrides:
        spec = replace(spec, config=spec.config.with_(**config_overrides))
    return spec


def sweep_points(
    base: ExperimentSpec, axes: Sequence[SweepAxis]
) -> List[Tuple[Tuple[Any, ...], ExperimentSpec]]:
    """The sweep's full cartesian grid as ``(key, spec)`` pairs.

    Specs are built up-front (each carrying its own seed from the base
    spec) so parallel workers receive self-contained, picklable work
    items and the grid is identical for any ``jobs`` value.
    """
    points = []
    for values in itertools.product(*(axis.values for axis in axes)):
        assignment = {
            axis.name: (axis.target, value) for axis, value in zip(axes, values)
        }
        points.append((values, build_spec(base, assignment)))
    return points


def _describe_point(axes: Sequence[SweepAxis], key: Tuple[Any, ...]) -> str:
    return ", ".join(f"{axis.name}={value}" for axis, value in zip(axes, key))


def _run_point(
    spec: ExperimentSpec,
    runner: Callable[..., ExperimentResult],
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: bool = False,
    crash_at_cycle: Optional[int] = None,
) -> Tuple[ExperimentResult, Optional[Dict[str, Any]]]:
    """Worker body: run one point, split off the non-picklable recorder.

    The flight recorder holds simulator closures and trace rings, so it
    never crosses the process boundary; its JSON-safe manifest does, and
    the parent merges manifests into :attr:`SweepResult.manifests`.
    """
    if checkpoint_path is None:
        result = runner(spec)
    else:
        result = runner(
            spec,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            resume=resume,
            _crash_at_cycle=crash_at_cycle,
        )
    manifest = None
    if result.recorder is not None:
        manifest = dict(result.recorder.manifest)
        result.recorder = None
    return result, manifest


def run_sweep(
    base: ExperimentSpec,
    axes: Sequence[SweepAxis],
    jobs: int = 1,
    checkpointing: Optional[Checkpointing] = None,
    fabric=None,
    _runner: Callable[..., ExperimentResult] = run_single_router_experiment,
) -> SweepResult:
    """Run the full cartesian product of the axes over the base spec.

    ``jobs`` > 1 distributes points over that many worker processes.
    Rows are identical to a serial run (each point is an independent,
    self-seeded simulation); only wall-clock time changes.  A crashing
    point raises :class:`SweepPointError` naming its axis assignment,
    with every already-finished row attached as ``error.completed``.

    ``checkpointing`` makes every point write periodic checkpoints and —
    with ``resume=True`` — continue from its latest checkpoint when the
    sweep is rerun after a crash or preemption, instead of recomputing
    from cycle 0.  Each point's checkpoint lineage (path, resume cycle,
    checkpoints written) lands in :attr:`SweepResult.manifests` under
    ``"checkpoint"``.  Results are bit-identical with or without
    checkpointing (the checkpoint identity gate proves this).

    ``fabric`` — a :class:`repro.fabric.Fabric` — runs the sweep on the
    distributed fabric instead: points are submitted to the fabric
    directory's work queue, a local worker drains it alongside any other
    workers sharing the directory (other terminals, other hosts), and
    every result lands in the content-addressed store so an unchanged
    rerun recomputes zero points.  Mutually exclusive with ``jobs`` and
    ``checkpointing`` (the fabric checkpoints per point on its own).

    ``_runner`` is the per-point experiment function — overridable for
    tests (it must be a module-level callable so workers can unpickle it;
    with ``checkpointing`` it must accept the checkpoint keyword
    arguments of :func:`run_single_router_experiment`).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if fabric is not None:
        if jobs != 1 or checkpointing is not None:
            raise ValueError(
                "fabric= is mutually exclusive with jobs>1 and checkpointing "
                "(the fabric manages its own fan-out and per-point checkpoints)"
            )
        from ..fabric.worker import run_sweep_on_fabric

        return run_sweep_on_fabric(base, axes, fabric, _runner)
    points = sweep_points(base, axes)
    sweep = SweepResult(tuple(axes))
    if checkpointing is not None:
        Path(checkpointing.directory).mkdir(parents=True, exist_ok=True)

    def point_kwargs(key: Tuple[Any, ...]) -> Dict[str, Any]:
        if checkpointing is None:
            return {}
        return {
            "checkpoint_path": str(checkpointing.point_path(key)),
            "checkpoint_every": checkpointing.every,
            "resume": checkpointing.resume,
            "crash_at_cycle": checkpointing.crash_at_cycle,
        }

    def record(key: Tuple[Any, ...], outcome) -> None:
        result, manifest = outcome
        sweep.results[key] = result
        if manifest is not None:
            sweep.manifests[key] = manifest
        lineage = getattr(result, "checkpoint", None)
        if lineage is not None:
            sweep.manifests.setdefault(key, {})["checkpoint"] = lineage

    if jobs == 1 or len(points) <= 1:
        for key, spec in points:
            try:
                record(key, _run_point(spec, _runner, **point_kwargs(key)))
            except Exception as exc:
                error = SweepPointError(_describe_point(axes, key), exc)
                error.completed = sweep
                raise error from exc
        return sweep

    failed_key: Optional[Tuple[Any, ...]] = None
    cause: Optional[BaseException] = None
    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        futures = {
            key: pool.submit(_run_point, spec, _runner, **point_kwargs(key))
            for key, spec in points
        }
        for key, future in futures.items():
            try:
                record(key, future.result())
            except Exception as exc:
                # First failure: stop burning CPU on points that cannot
                # matter any more.  Queued futures cancel; already-running
                # stragglers finish when the pool exits and are harvested
                # below so their rows are not discarded.
                failed_key, cause = key, exc
                for pending in futures.values():
                    pending.cancel()
                break
    if failed_key is None:
        return sweep
    for key, future in futures.items():
        if key in sweep.results or future.cancelled():
            continue
        if future.done() and future.exception() is None:
            record(key, future.result())
    error = SweepPointError(_describe_point(axes, failed_key), cause)
    error.completed = sweep
    raise error from cause
