"""Generic parameter sweeps over the single-router experiment.

The figure harness covers the paper's evaluation grid; this module covers
the *design-space* sweeps DESIGN.md's ablation index calls for — candidate
counts, round factors, VC counts, flit sizes — by generating spec grids
from a base spec plus per-axis overrides.

Sweep points are independent simulations, so :func:`run_sweep` can fan
them out over worker processes (``jobs=N``).  Each worker receives one
fully-built, seeded :class:`ExperimentSpec` and returns the picklable
part of the result; rows are identical to a serial run because nothing
about a point depends on execution order.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.config import RouterConfig
from .single_router import ExperimentResult, ExperimentSpec, run_single_router_experiment


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: its name and values.

    ``target`` says where the parameter lives: 'spec' for
    :class:`ExperimentSpec` fields, 'config' for :class:`RouterConfig`
    fields (applied with ``config.with_``).
    """

    name: str
    values: Tuple[Any, ...]
    target: str = "spec"

    def __post_init__(self) -> None:
        if self.target not in ("spec", "config"):
            raise ValueError(f"unknown axis target {self.target!r}")
        if not self.values:
            raise ValueError(f"axis {self.name} has no values")


class SweepPointError(RuntimeError):
    """One sweep point's experiment raised; names the failing point."""

    def __init__(self, point: str, cause: BaseException) -> None:
        super().__init__(f"sweep point [{point}] failed: {cause!r}")
        self.point = point
        self.cause = cause


@dataclass
class SweepResult:
    """All results of one sweep, keyed by the axis-value tuples."""

    axes: Tuple[SweepAxis, ...]
    results: Dict[Tuple[Any, ...], ExperimentResult] = field(default_factory=dict)
    #: Run manifests of telemetry-enabled points, merged across workers
    #: (parallel workers cannot ship the recorder itself — see
    #: :func:`_run_point`).
    manifests: Dict[Tuple[Any, ...], Dict[str, Any]] = field(default_factory=dict)

    def column(self, metric: str) -> Dict[Tuple[Any, ...], float]:
        """Extract one metric across the grid.

        ``metric`` is an attribute of :class:`ExperimentResult`
        (``mean_delay_us``, ``mean_jitter_cycles``, ``utilisation``, ...).
        """
        return {key: getattr(result, metric) for key, result in self.results.items()}

    def rows(self, metrics: Sequence[str]) -> List[List[Any]]:
        """Table rows: axis values followed by the requested metrics."""
        out = []
        for key in sorted(self.results, key=str):
            result = self.results[key]
            out.append(list(key) + [getattr(result, m) for m in metrics])
        return out


def build_spec(base: ExperimentSpec, assignment: Mapping[str, Tuple[str, Any]]) -> ExperimentSpec:
    """Apply one grid point's axis assignment to the base spec."""
    spec_overrides = {
        name: value for name, (target, value) in assignment.items() if target == "spec"
    }
    config_overrides = {
        name: value for name, (target, value) in assignment.items() if target == "config"
    }
    spec = replace(base, **spec_overrides) if spec_overrides else base
    if config_overrides:
        spec = replace(spec, config=spec.config.with_(**config_overrides))
    return spec


def sweep_points(
    base: ExperimentSpec, axes: Sequence[SweepAxis]
) -> List[Tuple[Tuple[Any, ...], ExperimentSpec]]:
    """The sweep's full cartesian grid as ``(key, spec)`` pairs.

    Specs are built up-front (each carrying its own seed from the base
    spec) so parallel workers receive self-contained, picklable work
    items and the grid is identical for any ``jobs`` value.
    """
    points = []
    for values in itertools.product(*(axis.values for axis in axes)):
        assignment = {
            axis.name: (axis.target, value) for axis, value in zip(axes, values)
        }
        points.append((values, build_spec(base, assignment)))
    return points


def _describe_point(axes: Sequence[SweepAxis], key: Tuple[Any, ...]) -> str:
    return ", ".join(f"{axis.name}={value}" for axis, value in zip(axes, key))


def _run_point(
    spec: ExperimentSpec,
    runner: Callable[[ExperimentSpec], ExperimentResult],
) -> Tuple[ExperimentResult, Optional[Dict[str, Any]]]:
    """Worker body: run one point, split off the non-picklable recorder.

    The flight recorder holds simulator closures and trace rings, so it
    never crosses the process boundary; its JSON-safe manifest does, and
    the parent merges manifests into :attr:`SweepResult.manifests`.
    """
    result = runner(spec)
    manifest = None
    if result.recorder is not None:
        manifest = dict(result.recorder.manifest)
        result.recorder = None
    return result, manifest


def run_sweep(
    base: ExperimentSpec,
    axes: Sequence[SweepAxis],
    jobs: int = 1,
    _runner: Callable[[ExperimentSpec], ExperimentResult] = run_single_router_experiment,
) -> SweepResult:
    """Run the full cartesian product of the axes over the base spec.

    ``jobs`` > 1 distributes points over that many worker processes.
    Rows are identical to a serial run (each point is an independent,
    self-seeded simulation); only wall-clock time changes.  A crashing
    point raises :class:`SweepPointError` naming its axis assignment.

    ``_runner`` is the per-point experiment function — overridable for
    tests (it must be a module-level callable so workers can unpickle it).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    points = sweep_points(base, axes)
    sweep = SweepResult(tuple(axes))

    def record(key: Tuple[Any, ...], outcome) -> None:
        result, manifest = outcome
        sweep.results[key] = result
        if manifest is not None:
            sweep.manifests[key] = manifest

    if jobs == 1 or len(points) <= 1:
        for key, spec in points:
            try:
                record(key, _run_point(spec, _runner))
            except Exception as exc:
                raise SweepPointError(_describe_point(axes, key), exc) from exc
        return sweep

    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        futures = {
            key: pool.submit(_run_point, spec, _runner) for key, spec in points
        }
        for key, future in futures.items():
            try:
                record(key, future.result())
            except Exception as exc:
                raise SweepPointError(_describe_point(axes, key), exc) from exc
    return sweep
