"""Saturation-point estimation (paper §5.2).

"Saturation does not appear to occur before 95% load."  A scheduler is
saturated at a given offered load when it cannot deliver that load: the
measured switch utilisation falls short of the offered traffic and queues
grow without bound.  This module estimates each variant's saturation load
by bisection on the offered-load axis, using two symptoms:

* delivered utilisation below offered load (throughput loss), and
* interface backlog growing past a threshold (unbounded queues).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from .single_router import ExperimentResult, ExperimentSpec, run_single_router_experiment


@dataclass(frozen=True)
class SaturationCriteria:
    """What counts as saturated."""

    #: Delivered utilisation may lag offered load by at most this much.
    utilisation_slack: float = 0.03
    #: Interface backlog (flits held upstream by flow control) beyond this
    #: indicates unbounded queue growth over the window.
    backlog_limit: int = 64


def is_saturated(
    result: ExperimentResult, criteria: SaturationCriteria = SaturationCriteria()
) -> bool:
    """Judge one experiment outcome against the criteria."""
    throughput_loss = result.offered_load - result.utilisation
    if throughput_loss > criteria.utilisation_slack:
        return True
    return result.max_interface_backlog > criteria.backlog_limit


@dataclass
class SaturationEstimate:
    """Outcome of a bisection run."""

    #: Highest load measured unsaturated.
    stable_load: float
    #: Lowest load measured saturated (1.0 when never observed).
    saturated_load: float
    #: Every point evaluated, as (offered load, saturated?).
    samples: List[Tuple[float, bool]]

    @property
    def estimate(self) -> float:
        """Midpoint of the bracketing interval."""
        return (self.stable_load + self.saturated_load) / 2.0


def find_saturation_load(
    base: ExperimentSpec,
    low: float = 0.4,
    high: float = 0.98,
    tolerance: float = 0.02,
    criteria: SaturationCriteria = SaturationCriteria(),
) -> SaturationEstimate:
    """Bisect the offered-load axis for ``base``'s scheduler variant.

    ``base.target_load`` is ignored; all other spec fields (scheduler,
    priority, candidates, config, cycle counts, seed) are preserved.
    Monotonicity of saturation in load is assumed — true for this system,
    where higher admitted load only adds connections.
    """
    if not 0.0 < low < high <= 1.0:
        raise ValueError(f"need 0 < low < high <= 1, got [{low}, {high}]")
    samples: List[Tuple[float, bool]] = []

    def probe(load: float) -> bool:
        result = run_single_router_experiment(replace(base, target_load=load))
        saturated = is_saturated(result, criteria)
        samples.append((load, saturated))
        return saturated

    if probe(low):
        # Saturated even at the bottom of the bracket.
        return SaturationEstimate(0.0, low, samples)
    if not probe(high):
        return SaturationEstimate(high, 1.0, samples)
    stable, saturated = low, high
    while saturated - stable > tolerance:
        mid = (stable + saturated) / 2.0
        if probe(mid):
            saturated = mid
        else:
            stable = mid
    return SaturationEstimate(stable, saturated, samples)
