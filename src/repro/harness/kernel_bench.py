"""Before/after instrumentation for the simulation kernel.

The activity-driven kernel (``Simulator(allow_fast_forward=True)``) must
be cycle-for-cycle identical to the legacy seed kernel
(``allow_fast_forward=False``) on seeded runs, and it must be *faster* at
the light loads the paper's QoS experiments live at.  This module builds
the deterministic CBR scenarios used to check both claims — by
``scripts/perf_gate.py`` (which writes ``BENCH_kernel.json``) and by
``benchmarks/bench_kernel.py`` (pytest-benchmark trend lines).

The scenarios pin every source to phase 0, so arrivals from all
connections cluster on the same cycle and the router genuinely idles
between clusters: at 124 Mbps per stream (10% of the 1.24 Gbps link) the
inter-arrival is exactly 10 flit cycles and 8 of every 10 cycles carry no
work.  That is the activity kernel's best case *and* a real operating
point — a router serving a handful of constant-rate multimedia streams.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Callable, List, Optional, Tuple

from ..core.bandwidth import BandwidthRequest
from ..core.config import RouterConfig
from ..core.priority import BiasedPriority
from ..core.router import Router
from ..core.switch_scheduler import GreedyPriorityScheduler
from ..core.virtual_channel import ServiceClass
from ..obs import (
    FlightRecorder,
    build_manifest,
    lifecycle_by_flit,
    validate_chrome_trace,
)
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from ..traffic.cbr import CbrSource
from ..traffic.load import LoadPlanner
from ..traffic.rates import MBPS

#: 10% of the paper's 1.24 Gbps link: inter-arrival of exactly 10 cycles.
TEN_PCT_RATE_BPS = 124e6

#: One delivered flit, as compared across kernels: (connection, sequence,
#: created cycle, depart cycle).
DeliveryRecord = Tuple[int, int, int, int]


class DeliveryLog:
    """Output handler that appends one :data:`DeliveryRecord` per flit.

    A class (not a closure) so scenarios carrying one remain picklable —
    the checkpoint identity gates snapshot mid-run with the log attached
    and the records list full of history.
    """

    __slots__ = ("records",)

    def __init__(self, records: Optional[List[DeliveryRecord]] = None) -> None:
        self.records = records if records is not None else []

    def __call__(self, flit, output_vc) -> None:
        self.records.append(
            (flit.connection_id, flit.sequence, flit.created, flit.depart_time)
        )


def build_cbr_scenario(
    allow_fast_forward: bool,
    connections: int,
    rate_bps: float = TEN_PCT_RATE_BPS,
    delivered: Optional[List[DeliveryRecord]] = None,
    recorder: Optional[FlightRecorder] = None,
) -> Tuple[Simulator, Router]:
    """An 8x8 router with ``connections`` phase-aligned CBR streams.

    Connection ``i`` enters input port ``i`` and leaves output
    ``(3 i + 1) mod 8`` (a fixed conflict-free permutation), so every
    stream can move one flit per cycle and the measurement isolates
    kernel overhead rather than contention.  Pass ``delivered`` to record
    per-flit delivery timestamps for cross-kernel identity checks; leave
    it None for throughput timing (the recording callback is not part of
    the simulator's own cost).
    """
    if not 1 <= connections <= 8:
        raise ValueError(f"connections must be in [1, 8], got {connections}")
    config = RouterConfig(enforce_round_budgets=False)
    sim = Simulator(allow_fast_forward=allow_fast_forward)
    router = Router(
        config, BiasedPriority(), GreedyPriorityScheduler(), sim, recorder=recorder
    )
    if recorder is not None:
        recorder.attach(sim)
    if delivered is not None:
        handler = DeliveryLog(delivered)
        for port in range(config.num_ports):
            router.set_output_handler(port, handler)
    for i in range(connections):
        vc_index = router.open_connection(
            i + 1,
            i,
            (i * 3 + 1) % config.num_ports,
            BandwidthRequest(config.rate_to_cycles_per_round(rate_bps)),
            interarrival_cycles=config.rate_to_interarrival_cycles(rate_bps),
        )
        CbrSource(
            sim, router, i + 1, i, vc_index, rate_bps, config, phase=0
        ).start()
    return sim, router


def run_identity_check(connections: int, cycles: int) -> dict:
    """Run the scenario under both kernels and compare everything.

    Returns a dict with ``identical`` plus the individual comparisons;
    ``fast_forwarded_fraction`` reports how much of the run the activity
    kernel skipped (the legacy kernel must skip nothing).
    """
    results = {}
    for mode in (False, True):
        delivered: List[DeliveryRecord] = []
        sim, router = build_cbr_scenario(mode, connections, delivered=delivered)
        sim.run(cycles)
        router.check_invariants()
        results[mode] = (delivered, dict(router.stats.scalars), sim)
    legacy, activity = results[False], results[True]
    flits_identical = legacy[0] == activity[0]
    stats_identical = legacy[1] == activity[1]
    return {
        "identical": flits_identical and stats_identical,
        "flits_identical": flits_identical,
        "stats_identical": stats_identical,
        "flits_delivered": len(legacy[0]),
        "legacy_fast_forwarded": legacy[2].fast_forwarded_cycles,
        "fast_forwarded_fraction": activity[2].fast_forwarded_cycles / cycles,
    }


def measure_cycles_per_second(
    allow_fast_forward: bool,
    connections: int,
    cycles: int,
    repeats: int = 5,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Best-of-``repeats`` simulated-cycles-per-wall-second.

    Each repeat builds a fresh scenario, so the timed region is purely
    ``Simulator.run``.  The best repeat is reported — on a shared machine
    the minimum time is the least contaminated by scheduling noise.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = None
    ff_fraction = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            sim, router = build_cbr_scenario(allow_fast_forward, connections)
            start = clock()
            sim.run(cycles)
            elapsed = clock() - start
            if best is None or elapsed < best:
                best = elapsed
                ff_fraction = sim.fast_forwarded_cycles / cycles
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "cycles": cycles,
        "repeats": repeats,
        "seconds": best,
        "cycles_per_sec": cycles / best,
        "fast_forwarded_fraction": ff_fraction,
    }


def measure_obs_overhead(
    connections: int,
    cycles: int,
    repeats: int = 5,
    clock: Callable[[], float] = time.process_time,
) -> dict:
    """Wall cost of carrying a *disabled* flight recorder.

    Times the activity-kernel scenario twice per repeat — once with the
    shared ``NULL_RECORDER`` default (the PR-1 hot path plus inert branch
    checks) and once with a constructed-but-disabled
    :class:`~repro.obs.FlightRecorder` attached (``enabled=False``,
    profiler detached).  The two instruction streams differ only in the
    object behind ``router.recorder``, so the delta is the true cost of
    shipping instrumentation disabled.

    The measurement interleaves *slices* of long-lived scenarios: several
    independent scenario pairs (baseline + disabled) are built and warmed
    up, then their simulators are advanced in alternating timed slices,
    rotating across the builds, until ``cycles`` cycles are covered per
    variant.  Three effects are cancelled by construction: machine drift
    (slices of a pair are adjacent in time), interference periodic at the
    pair cadence (ABBA ordering within pairs), and build-to-build layout
    luck — a single scenario pair can carry a persistent ~2% asymmetry
    from allocation placement alone, so ratios are pooled across builds
    where any one build contributes only a minority.  The default clock
    is CPU time (``time.process_time``), so preemption on a loaded
    machine does not contaminate the comparison.  The gated statistic
    (``overhead_pct``) is the median of the pooled per-pair time ratios;
    totals are also reported for cycles/sec context.  ``repeats`` scales
    the number of slice pairs (``8 * repeats``).
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")

    builds = 3

    def build_pair() -> dict:
        disabled_recorder = FlightRecorder(manifest={})
        disabled_recorder.set_enabled(False)
        return {
            "baseline": build_cbr_scenario(True, connections, recorder=None)[0],
            "disabled": build_cbr_scenario(
                True, connections, recorder=disabled_recorder
            )[0],
        }

    pair_sets = [build_pair() for _ in range(builds)]
    pairs = 8 * repeats
    slice_cycles = max(1, cycles // pairs)
    totals = {"baseline": 0.0, "disabled": 0.0}
    ratios: List[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Warm-up slice per simulator (interpreter caches, steady state).
        for sims in pair_sets:
            for sim in sims.values():
                sim.run(slice_cycles)
        for pair in range(pairs):
            sims = pair_sets[pair % builds]
            # ABBA ordering: alternate which variant runs first so
            # interference periodic at the pair cadence cancels instead
            # of consistently taxing the same variant.
            order = ("baseline", "disabled") if pair % 2 == 0 else (
                "disabled", "baseline"
            )
            pair_times = {}
            for key in order:
                start = clock()
                sims[key].run(slice_cycles)
                pair_times[key] = clock() - start
                totals[key] += pair_times[key]
            ratios.append(pair_times["disabled"] / pair_times["baseline"])
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios.sort()
    mid = len(ratios) // 2
    median_ratio = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    timed_cycles = slice_cycles * pairs
    return {
        "connections": connections,
        "cycles": timed_cycles,
        "repeats": repeats,
        "builds": builds,
        "slice_pairs": pairs,
        "slice_cycles": slice_cycles,
        "baseline_seconds": totals["baseline"],
        "disabled_seconds": totals["disabled"],
        "baseline_cycles_per_sec": timed_cycles / totals["baseline"],
        "disabled_cycles_per_sec": timed_cycles / totals["disabled"],
        "overhead_pct": (median_ratio - 1.0) * 100.0,
        "total_overhead_pct": (totals["disabled"] - totals["baseline"])
        / totals["baseline"]
        * 100.0,
    }


#: The scheduler-stress rate mix: the middle of the paper's rate set.
#: At 90% load these rates pack ~90 connections per input port (the
#: 5 Mbps stream's inter-arrival is 248 cycles), so with phase-aligned
#: sources a port's arrivals cluster into bursts that keep tens to
#: hundreds of VCs simultaneously eligible — the regime where the
#: candidate scan dominates and bit-parallel eligibility pays (the Tiny
#: Tera bet, PAPERS.md).  Higher-rate mixes admit so few connections the
#: per-flit pipeline dominates instead; lower-rate mixes need more
#: connections than there are VCs to reach 90% load.
SCHED_BENCH_RATE_SET = (5 * MBPS, 10 * MBPS, 20 * MBPS)

#: The columnar-engine stress mix: 2.5 Mbps streams only.  At 90% load
#: with :data:`HIGH_VC_COUNT` VCs per port the planner packs ~446
#: connections per input port — past the 256 VCs the paper's baseline MMR
#: provisions per link — and the phase-aligned bursts keep hundreds of
#: VCs simultaneously eligible.  This is the regime the columnar gates
#: time: per-scan work is large enough that a handful of whole-column
#: vector ops beat hundreds of per-object priority evaluations.
HIGH_VC_RATE_SET = (2.5 * MBPS,)

#: VCs per input port for the high-VC columnar gate scenario ("256+ VCs
#: per link"): double the paper's per-link provisioning, the design point
#: §6 sizes the wide status banks for.
HIGH_VC_COUNT = 512


def build_saturated_scenario(
    scheduler_fast_path: bool,
    target_load: float = 0.9,
    seed: int = 7,
    delivered: Optional[List[DeliveryRecord]] = None,
    rate_set: Tuple[float, ...] = SCHED_BENCH_RATE_SET,
    columnar_state: bool = False,
    vcs_per_port: Optional[int] = None,
) -> Tuple[Simulator, Router]:
    """An 8x8 router loaded to ``target_load`` with many small CBR streams.

    This is the link scheduler's worst case and the fast path's target
    operating point: LoadPlanner packs hundreds of randomly-placed
    connections from ``rate_set`` (default
    :data:`SCHED_BENCH_RATE_SET`), all phase-aligned (like
    :func:`build_cbr_scenario`), so every busy cycle scans a large
    eligible set and ``candidates()`` dominates the run.  The connection
    plan and static priorities derive from ``seed``, so two builds
    differing only in ``scheduler_fast_path`` / ``columnar_state``
    execute the same workload and must deliver bit-identical flit
    streams.  Pass :data:`HIGH_VC_RATE_SET` with ``vcs_per_port=512`` to
    pack ~446 connections per port, the columnar engine's target regime.
    """
    if vcs_per_port is None:
        config = RouterConfig(enforce_round_budgets=False)
    else:
        config = RouterConfig(
            enforce_round_budgets=False, vcs_per_port=vcs_per_port
        )
    rng = SeededRng(seed, "sched-bench")
    sim = Simulator(allow_fast_forward=True)
    router = Router(
        config,
        BiasedPriority(),
        GreedyPriorityScheduler(),
        sim,
        selection="per_output",
        rng=rng.spawn("router"),
        scheduler_fast_path=scheduler_fast_path,
        columnar_state=columnar_state,
    )
    if delivered is not None:
        handler = DeliveryLog(delivered)
        for port in range(config.num_ports):
            router.set_output_handler(port, handler)
    plan = LoadPlanner(
        config, rng.spawn("plan"), rate_set=rate_set
    ).plan(target_load)
    priority_rng = rng.spawn("static-priority")
    for item in plan.specs:
        interarrival = config.rate_to_interarrival_cycles(item.rate_bps)
        vc_index = router.open_connection(
            item.connection_id,
            item.input_port,
            item.output_port,
            BandwidthRequest(config.rate_to_cycles_per_round(item.rate_bps)),
            service_class=ServiceClass.CBR,
            interarrival_cycles=interarrival,
            static_priority=priority_rng.random(),
        )
        if vc_index is None:
            continue  # flit-cycle rounding refusal; mirrors the harness
        CbrSource(
            sim,
            router,
            item.connection_id,
            item.input_port,
            vc_index,
            item.rate_bps,
            config,
            phase=0,
        ).start()
    return sim, router


def run_sched_identity_check(
    cycles: int, target_load: float = 0.9, seed: int = 7
) -> dict:
    """Run the saturated scenario with both scheduler paths and compare.

    The fused bit-vector path must reproduce the reference per-VC walk's
    flit stream and statistics exactly; ``check_invariants`` additionally
    audits every status vector against its brute-force predicate at the
    end of each run.
    """
    results = {}
    for fast_path in (False, True):
        delivered: List[DeliveryRecord] = []
        sim, router = build_saturated_scenario(
            fast_path, target_load, seed, delivered=delivered
        )
        sim.run(cycles)
        router.check_invariants()
        results[fast_path] = (delivered, dict(router.stats.scalars))
    reference, fused = results[False], results[True]
    flits_identical = reference[0] == fused[0]
    stats_identical = reference[1] == fused[1]
    return {
        "identical": flits_identical and stats_identical,
        "flits_identical": flits_identical,
        "stats_identical": stats_identical,
        "flits_delivered": len(reference[0]),
        "target_load": target_load,
    }


def measure_sched_cycles_per_second(
    scheduler_fast_path: bool,
    cycles: int,
    repeats: int = 5,
    target_load: float = 0.9,
    seed: int = 7,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Best-of-``repeats`` throughput of the saturated-load scenario.

    Same protocol as :func:`measure_cycles_per_second` (fresh scenario
    per repeat, GC off, best time reported) on the scheduler-bound
    workload, with the link-scheduler path selected by
    ``scheduler_fast_path``.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            sim, router = build_saturated_scenario(
                scheduler_fast_path, target_load, seed
            )
            start = clock()
            sim.run(cycles)
            elapsed = clock() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "cycles": cycles,
        "repeats": repeats,
        "target_load": target_load,
        "seconds": best,
        "cycles_per_sec": cycles / best,
    }


def run_columnar_identity_check(
    cycles: int,
    target_load: float = 0.9,
    seed: int = 7,
    rate_set: Tuple[float, ...] = SCHED_BENCH_RATE_SET,
    vcs_per_port: Optional[int] = None,
) -> dict:
    """Run the saturated scenario under all three engines and compare.

    The columnar (NumPy array) engine must reproduce the reference per-VC
    walk *and* the fused bit-vector fast path exactly: delivered flit
    streams, scalar statistics, and the end-of-run invariant audit.  The
    three-way comparison localises any divergence — columnar-vs-fast
    isolates the array kernels, fast-vs-reference the bit vectors.
    """
    engines = {
        "reference": dict(scheduler_fast_path=False),
        "fast": dict(scheduler_fast_path=True),
        "columnar": dict(scheduler_fast_path=True, columnar_state=True),
    }
    results = {}
    for name, kwargs in engines.items():
        delivered: List[DeliveryRecord] = []
        sim, router = build_saturated_scenario(
            target_load=target_load,
            seed=seed,
            delivered=delivered,
            rate_set=rate_set,
            vcs_per_port=vcs_per_port,
            **kwargs,
        )
        sim.run(cycles)
        router.check_invariants()
        results[name] = (delivered, dict(router.stats.scalars))
    reference = results["reference"]
    comparisons = {
        f"{name}_{what}_identical": results[name][i] == reference[i]
        for name in ("fast", "columnar")
        for i, what in enumerate(("flits", "stats"))
    }
    return {
        "identical": all(comparisons.values()),
        **comparisons,
        "flits_delivered": len(reference[0]),
        "target_load": target_load,
        "rates_mbps": [rate / MBPS for rate in rate_set],
    }


def measure_columnar_cycles_per_second(
    columnar_state: bool,
    cycles: int,
    repeats: int = 5,
    target_load: float = 0.9,
    seed: int = 7,
    rate_set: Tuple[float, ...] = HIGH_VC_RATE_SET,
    vcs_per_port: int = HIGH_VC_COUNT,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Best-of-``repeats`` throughput of the high-VC scenario.

    Same protocol as :func:`measure_sched_cycles_per_second` but on the
    ~446-connections-per-port, 512-VC workload (:data:`HIGH_VC_RATE_SET`
    at :data:`HIGH_VC_COUNT`) and with the scheduler fast path always on
    — the speedup gated in ``BENCH_columnar.json`` is columnar over the
    *current best* scalar path, not over the reference walk.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            sim, router = build_saturated_scenario(
                True,
                target_load,
                seed,
                rate_set=rate_set,
                columnar_state=columnar_state,
                vcs_per_port=vcs_per_port,
            )
            start = clock()
            sim.run(cycles)
            elapsed = clock() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "cycles": cycles,
        "repeats": repeats,
        "target_load": target_load,
        "rates_mbps": [rate / MBPS for rate in rate_set],
        "seconds": best,
        "cycles_per_sec": cycles / best,
    }


def measure_sweep_speedup(
    jobs: int,
    points: int = 4,
    warmup_cycles: int = 2000,
    measure_cycles: int = 10000,
    target_load: float = 0.6,
    seed: int = 3,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Wall-clock of a seed sweep run serially vs with ``jobs`` workers.

    Also cross-checks that the parallel run produced the same metric rows
    as the serial one — the speedup is only meaningful if the work was
    actually equivalent.  ``cpu_count`` is reported so callers can decide
    whether the machine could possibly exhibit the speedup (a 1-core
    runner cannot, and should record rather than gate).
    """
    from .single_router import ExperimentSpec
    from .sweep import SweepAxis, run_sweep

    if jobs < 2:
        raise ValueError(f"speedup needs jobs >= 2, got {jobs}")
    base = ExperimentSpec(
        target_load=target_load,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
    )
    axes = (SweepAxis("seed", tuple(range(seed, seed + points))),)
    metrics = ("mean_delay_cycles", "mean_jitter_cycles", "utilisation")
    start = clock()
    serial = run_sweep(base, axes, jobs=1)
    serial_seconds = clock() - start
    start = clock()
    parallel = run_sweep(base, axes, jobs=jobs)
    parallel_seconds = clock() - start
    return {
        "jobs": jobs,
        "points": points,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "rows_identical": serial.rows(metrics) == parallel.rows(metrics),
    }


def run_trace_validation(connections: int, cycles: int) -> dict:
    """Record a seeded scenario with the recorder ON and audit the trace.

    Checks that (1) the exported payload survives a JSON round trip and
    validates against the Chrome trace-event schema, and (2) every flit
    the router actually delivered (per the output handlers) appears in the
    trace with the complete ``inject -> grant -> deliver`` lifecycle.
    The returned dict carries the payload under ``"payload"`` so callers
    can write the artefact they just validated.
    """
    recorder = FlightRecorder(
        manifest=build_manifest(
            command="run_trace_validation",
            extra={"connections": connections, "cycles": cycles},
        )
    )
    delivered: List[DeliveryRecord] = []
    sim, router = build_cbr_scenario(
        True, connections, delivered=delivered, recorder=recorder
    )
    sim.run(cycles)
    payload = recorder.chrome_trace()
    serialised = json.dumps(payload)
    phase_counts = validate_chrome_trace(json.loads(serialised))
    lifecycles = lifecycle_by_flit(recorder.events)
    delivered_ids = [
        flit_id for flit_id, kinds in lifecycles.items() if "deliver" in kinds
    ]
    complete = all(
        lifecycles[flit_id] == ["inject", "grant", "deliver"]
        for flit_id in delivered_ids
    )
    counts_match = len(delivered) == len(delivered_ids)
    return {
        "connections": connections,
        "cycles": cycles,
        "flits_delivered": len(delivered),
        "traced_deliveries": len(delivered_ids),
        "all_lifecycles_complete": complete,
        "counts_match": counts_match,
        "phase_counts": phase_counts,
        "trace_bytes": len(serialised),
        "trace_dropped": recorder.dropped,
        "ok": bool(delivered) and complete and counts_match,
        "payload": payload,
    }
