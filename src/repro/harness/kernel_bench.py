"""Before/after instrumentation for the simulation kernel.

The activity-driven kernel (``Simulator(allow_fast_forward=True)``) must
be cycle-for-cycle identical to the legacy seed kernel
(``allow_fast_forward=False``) on seeded runs, and it must be *faster* at
the light loads the paper's QoS experiments live at.  This module builds
the deterministic CBR scenarios used to check both claims — by
``scripts/perf_gate.py`` (which writes ``BENCH_kernel.json``) and by
``benchmarks/bench_kernel.py`` (pytest-benchmark trend lines).

The scenarios pin every source to phase 0, so arrivals from all
connections cluster on the same cycle and the router genuinely idles
between clusters: at 124 Mbps per stream (10% of the 1.24 Gbps link) the
inter-arrival is exactly 10 flit cycles and 8 of every 10 cycles carry no
work.  That is the activity kernel's best case *and* a real operating
point — a router serving a handful of constant-rate multimedia streams.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, List, Optional, Tuple

from ..core.bandwidth import BandwidthRequest
from ..core.config import RouterConfig
from ..core.priority import BiasedPriority
from ..core.router import Router
from ..core.switch_scheduler import GreedyPriorityScheduler
from ..sim.engine import Simulator
from ..traffic.cbr import CbrSource

#: 10% of the paper's 1.24 Gbps link: inter-arrival of exactly 10 cycles.
TEN_PCT_RATE_BPS = 124e6

#: One delivered flit, as compared across kernels: (connection, sequence,
#: created cycle, depart cycle).
DeliveryRecord = Tuple[int, int, int, int]


def build_cbr_scenario(
    allow_fast_forward: bool,
    connections: int,
    rate_bps: float = TEN_PCT_RATE_BPS,
    delivered: Optional[List[DeliveryRecord]] = None,
) -> Tuple[Simulator, Router]:
    """An 8x8 router with ``connections`` phase-aligned CBR streams.

    Connection ``i`` enters input port ``i`` and leaves output
    ``(3 i + 1) mod 8`` (a fixed conflict-free permutation), so every
    stream can move one flit per cycle and the measurement isolates
    kernel overhead rather than contention.  Pass ``delivered`` to record
    per-flit delivery timestamps for cross-kernel identity checks; leave
    it None for throughput timing (the recording callback is not part of
    the simulator's own cost).
    """
    if not 1 <= connections <= 8:
        raise ValueError(f"connections must be in [1, 8], got {connections}")
    config = RouterConfig(enforce_round_budgets=False)
    sim = Simulator(allow_fast_forward=allow_fast_forward)
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
    if delivered is not None:
        record = delivered.append

        def handler(flit, output_vc):
            record(
                (flit.connection_id, flit.sequence, flit.created, flit.depart_time)
            )

        for port in range(config.num_ports):
            router.set_output_handler(port, handler)
    for i in range(connections):
        vc_index = router.open_connection(
            i + 1,
            i,
            (i * 3 + 1) % config.num_ports,
            BandwidthRequest(config.rate_to_cycles_per_round(rate_bps)),
            interarrival_cycles=config.rate_to_interarrival_cycles(rate_bps),
        )
        CbrSource(
            sim, router, i + 1, i, vc_index, rate_bps, config, phase=0
        ).start()
    return sim, router


def run_identity_check(connections: int, cycles: int) -> dict:
    """Run the scenario under both kernels and compare everything.

    Returns a dict with ``identical`` plus the individual comparisons;
    ``fast_forwarded_fraction`` reports how much of the run the activity
    kernel skipped (the legacy kernel must skip nothing).
    """
    results = {}
    for mode in (False, True):
        delivered: List[DeliveryRecord] = []
        sim, router = build_cbr_scenario(mode, connections, delivered=delivered)
        sim.run(cycles)
        router.check_invariants()
        results[mode] = (delivered, dict(router.stats.scalars), sim)
    legacy, activity = results[False], results[True]
    flits_identical = legacy[0] == activity[0]
    stats_identical = legacy[1] == activity[1]
    return {
        "identical": flits_identical and stats_identical,
        "flits_identical": flits_identical,
        "stats_identical": stats_identical,
        "flits_delivered": len(legacy[0]),
        "legacy_fast_forwarded": legacy[2].fast_forwarded_cycles,
        "fast_forwarded_fraction": activity[2].fast_forwarded_cycles / cycles,
    }


def measure_cycles_per_second(
    allow_fast_forward: bool,
    connections: int,
    cycles: int,
    repeats: int = 5,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Best-of-``repeats`` simulated-cycles-per-wall-second.

    Each repeat builds a fresh scenario, so the timed region is purely
    ``Simulator.run``.  The best repeat is reported — on a shared machine
    the minimum time is the least contaminated by scheduling noise.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = None
    ff_fraction = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            sim, router = build_cbr_scenario(allow_fast_forward, connections)
            start = clock()
            sim.run(cycles)
            elapsed = clock() - start
            if best is None or elapsed < best:
                best = elapsed
                ff_fraction = sim.fast_forwarded_cycles / cycles
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "cycles": cycles,
        "repeats": repeats,
        "seconds": best,
        "cycles_per_sec": cycles / best,
        "fast_forwarded_fraction": ff_fraction,
    }
