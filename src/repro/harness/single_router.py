"""The paper's single-router CBR experiment (paper §5).

"Simulation experiments were conducted using a discrete event simulator
that models a single router.  The following experiments represent an 8x8
router with 256 virtual channels/input port, 1.24 Gbps physical links and
128-bit flits. ... Connections were randomly selected from the set (...)
and assigned to random input and output ports on the router. ... The
simulations were run until steady state was reached and statistics
gathered over approximately 100,000 router cycles."

:func:`run_single_router_experiment` builds exactly that setup for a given
switch scheduler, priority scheme, candidate count and offered load, and
returns the delay/jitter/utilisation numbers Figures 3-5 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..ckpt.codec import (
    CheckpointCodec,
    CheckpointFormatError,
    CheckpointHeader,
    CheckpointMismatchError,
)
from ..core.bandwidth import BandwidthRequest
from ..core.config import RouterConfig
from ..core.priority import make_priority_scheme
from ..core.router import Router
from ..core.switch_scheduler import (
    DecScheduler,
    GreedyPriorityScheduler,
    PerfectSwitchScheduler,
    SwitchScheduler,
)
from ..core.virtual_channel import ServiceClass
from ..obs import FlightRecorder, build_manifest
from ..qos.metrics import QosSummary, per_rate_breakdown, summarise, summarise_weighted
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from ..traffic.cbr import CbrSource
from ..traffic.load import ConnectionPlan, LoadPlanner

#: Default paper configuration (8x8, 256 VCs, 1.24 Gbps, 128-bit flits).
#: Round budgets are off: §5.1 studies "a simple link scheduling algorithm"
#: driven purely by the priority scheme (admission control alone keeps CBR
#: connections within link bandwidth).
PAPER_CONFIG = RouterConfig(enforce_round_budgets=False)

#: Named scheduler variants the evaluation compares.
SCHEDULERS = ("greedy", "dec", "perfect")


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of the evaluation grid."""

    target_load: float
    scheduler: str = "greedy"  # 'greedy' (the MMR), 'dec', 'perfect'
    priority: str = "biased"  # 'biased', 'fixed', 'age', 'rate', 'static'
    candidates: int = 8
    # Candidate selection at the link scheduler.  'per_output' (default)
    # offers the best flit per requested output link — the bit-vector
    # hardware reading that keeps utilisation insensitive to the priority
    # scheme; 'priority' and 'rotating' are ablations.  The DEC scheduler
    # always uses random selection.
    selection: str = "per_output"
    config: RouterConfig = PAPER_CONFIG
    warmup_cycles: int = 20000
    measure_cycles: int = 100000
    seed: int = 1
    # Bins for the per-flit delay histogram (0 disables; enables p50/p99
    # tail reporting on the result).
    delay_histogram_bins: int = 0
    # Kernel mode: False forces the pre-activity spin-every-cycle kernel.
    # Results are cycle-for-cycle identical either way (the perf gate
    # checks this); the knob exists for before/after benchmarking.
    allow_fast_forward: bool = True
    # Link-scheduler mode: False forces the reference per-VC eligibility
    # walk instead of the fused status-vector mask.  Candidate streams are
    # bit-identical either way (the perf gate checks this too).
    scheduler_fast_path: bool = True
    # Columnar (NumPy) scheduling state: mirrors the hot per-VC fields
    # into flat arrays and vectorizes the candidate scan.  Bit-identical
    # to the object-graph engines (the perf gate checks all three ways);
    # requires the optional `repro[fast]` extra.
    columnar_state: bool = False
    # Attach a flight recorder (flit trace, telemetry rings, kernel
    # profile); warm-up samples are discarded with the statistics.
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; known: {SCHEDULERS}"
            )
        if not 0.0 < self.target_load <= 1.0:
            raise ValueError(f"target_load must be in (0, 1], got {self.target_load}")
        if self.warmup_cycles < 0 or self.measure_cycles <= 0:
            raise ValueError("cycle counts must be non-negative/positive")


@dataclass
class ExperimentResult:
    """Measured outcome of one experiment point."""

    spec: ExperimentSpec
    offered_load: float
    connections: int
    #: Flit-weighted aggregate — the paper's headline statistic (statistics
    #: are gathered per delivered flit, so high-speed connections dominate;
    #: the paper notes slow connections see "relatively higher" jitter).
    summary: QosSummary
    #: Per-connection aggregate (each connection's mean counted once).
    per_connection: QosSummary
    utilisation: float
    per_rate: Dict[float, QosSummary] = field(default_factory=dict)
    max_interface_backlog: int = 0
    #: (p50, p99) per-flit delay in cycles, when the histogram was enabled.
    delay_percentiles: Optional[tuple] = None
    #: The flight recorder, when ``spec.telemetry`` asked for one.
    recorder: Optional[FlightRecorder] = None
    #: Checkpoint lineage, when the run was checkpointed or resumed:
    #: path, resumed_from_cycle (None for a straight run), and how many
    #: checkpoints were written.  Merged into sweep manifests.
    checkpoint: Optional[Dict[str, Any]] = None

    @property
    def mean_delay_cycles(self) -> float:
        """Flit-weighted mean switch delay, in flit cycles."""
        return self.summary.mean_delay_cycles

    @property
    def mean_delay_us(self) -> float:
        """Flit-weighted mean switch delay, in microseconds."""
        return self.summary.mean_delay_us(self.spec.config)

    @property
    def mean_jitter_cycles(self) -> float:
        """Flit-weighted mean jitter, in flit cycles."""
        return self.summary.mean_jitter_cycles


def build_switch_scheduler(spec: ExperimentSpec, rng: SeededRng) -> SwitchScheduler:
    """Instantiate the switch scheduler named by the spec."""
    if spec.scheduler == "greedy":
        return GreedyPriorityScheduler()
    if spec.scheduler == "dec":
        return DecScheduler(rng.spawn("dec"))
    return PerfectSwitchScheduler(spec.config.num_ports)


class SimulatedWorkerCrash(RuntimeError):
    """Test hook: a deliberately killed run (models a preempted worker)."""


class SingleRouterExperiment:
    """One evaluation point as a resumable object.

    The constructor builds the full scenario (router, admitted
    connections, sources) exactly as the historical one-shot function
    did; :meth:`run_to` advances it, handling the warm-up boundary
    (statistics reset) exactly once; :meth:`checkpoint` /
    :meth:`resume` round-trip the whole live graph through
    :class:`~repro.ckpt.codec.CheckpointCodec`, so a resumed run
    continues bit-identically to one that never stopped.
    """

    #: Checkpoint producer tag (header ``kind``).
    KIND = "single_router"

    def __init__(
        self, spec: ExperimentSpec, plan: Optional[ConnectionPlan] = None
    ) -> None:
        rng = SeededRng(spec.seed, "experiment")
        config = spec.config.with_(candidates=spec.candidates)
        sim = Simulator(allow_fast_forward=spec.allow_fast_forward)
        scheme = make_priority_scheme(spec.priority)
        switch_scheduler = build_switch_scheduler(spec, rng)
        selection = "random" if spec.scheduler == "dec" else spec.selection
        recorder = None
        if spec.telemetry:
            recorder = FlightRecorder(
                manifest=build_manifest(
                    seed=spec.seed,
                    config=config,
                    command="run_single_router_experiment",
                    extra={
                        "scheduler": spec.scheduler,
                        "priority": spec.priority,
                        "target_load": spec.target_load,
                        "warmup_cycles": spec.warmup_cycles,
                        "measure_cycles": spec.measure_cycles,
                    },
                )
            )
        router = Router(
            config,
            scheme,
            switch_scheduler,
            sim,
            selection=selection,
            rng=rng.spawn("router"),
            sink_outputs=True,
            delay_histogram_bins=spec.delay_histogram_bins,
            recorder=recorder,
            scheduler_fast_path=spec.scheduler_fast_path,
            columnar_state=spec.columnar_state,
        )
        if recorder is not None:
            recorder.attach(sim)

        if plan is None:
            plan = LoadPlanner(config, rng.spawn("plan")).plan(spec.target_load)
        priority_rng = rng.spawn("static-priority")
        phase_rng = rng.spawn("phase")
        sources: List[CbrSource] = []
        rates: Dict[int, float] = {}
        admitted = 0
        for item in plan.specs:
            request = BandwidthRequest(config.rate_to_cycles_per_round(item.rate_bps))
            interarrival = config.rate_to_interarrival_cycles(item.rate_bps)
            vc_index = router.open_connection(
                item.connection_id,
                item.input_port,
                item.output_port,
                request,
                service_class=ServiceClass.CBR,
                interarrival_cycles=interarrival,
                static_priority=priority_rng.random(),
            )
            if vc_index is None:
                # The planner stays inside link capacity, so refusals
                # indicate flit-cycle rounding; skip the connection rather
                # than fail.
                continue
            admitted += 1
            rates[item.connection_id] = item.rate_bps
            source = CbrSource(
                sim,
                router,
                item.connection_id,
                item.input_port,
                vc_index,
                item.rate_bps,
                config,
                phase=phase_rng.uniform(0.0, interarrival),
            )
            source.start()
            sources.append(source)

        self.spec = spec
        self.config = config
        self.sim = sim
        self.router = router
        self.recorder = recorder
        self.plan = plan
        self.sources = sources
        self.rates = rates
        self.admitted = admitted
        # Whether the warm-up boundary reset has happened.  sim.now alone
        # cannot tell: a checkpoint taken exactly at the boundary may be
        # from just before or just after the reset.
        self._measurement_started = False

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.now

    @property
    def total_cycles(self) -> int:
        """Warm-up plus measurement horizon."""
        return self.spec.warmup_cycles + self.spec.measure_cycles

    def run_to(self, cycle: int) -> None:
        """Advance to absolute ``cycle`` (clamped to the experiment end).

        Crossing the warm-up boundary resets statistics (and clears the
        recorder) exactly as the one-shot run does, no matter how the
        span ``[0, total_cycles]`` is sliced across calls, checkpoints
        and resumes.
        """
        target = min(int(cycle), self.total_cycles)
        if target < self.sim.now:
            raise ValueError(
                f"cannot run backwards to {target}, now is {self.sim.now}"
            )
        warmup = self.spec.warmup_cycles
        if self.sim.now < warmup:
            self.sim.run(min(target, warmup) - self.sim.now)
        if self.sim.now >= warmup and not self._measurement_started:
            self._measurement_started = True
            self.router.reset_statistics()
            if self.recorder is not None:
                # Warm-up flits and samples are not part of the measurement.
                self.recorder.clear()
        if target > self.sim.now:
            self.sim.run(target - self.sim.now)

    def result(self) -> ExperimentResult:
        """Summarise the (completed) run; runs any remaining cycles."""
        if self.sim.now < self.total_cycles:
            self.run_to(self.total_cycles)
        router = self.router
        active_stats = {
            connection_id: stats
            for connection_id, stats in router.connection_stats.items()
            if connection_id in self.rates
        }
        return ExperimentResult(
            spec=self.spec,
            offered_load=self.plan.offered_load,
            connections=self.admitted,
            summary=summarise_weighted(active_stats),
            per_connection=summarise(active_stats),
            utilisation=router.utilisation(),
            per_rate=per_rate_breakdown(active_stats, self.rates),
            max_interface_backlog=max(
                (source.max_interface_queue for source in self.sources), default=0
            ),
            delay_percentiles=(
                (
                    router.delay_histogram.quantile(0.5),
                    router.delay_histogram.quantile(0.99),
                )
                if router.delay_histogram is not None
                else None
            ),
            recorder=self.recorder,
        )

    # ----- checkpoint / resume ----------------------------------------------

    def checkpoint(self, path) -> CheckpointHeader:
        """Write the complete experiment state to ``path`` (``ckpt/1``)."""
        return CheckpointCodec.save(
            path,
            {"experiment": self},
            kind=self.KIND,
            cycle=self.sim.now,
            seed=self.spec.seed,
            config=self.config,
            extra={
                "scheduler": self.spec.scheduler,
                "priority": self.spec.priority,
                "target_load": self.spec.target_load,
                "warmup_cycles": self.spec.warmup_cycles,
                "measure_cycles": self.spec.measure_cycles,
                "measurement_started": self._measurement_started,
            },
        )

    @classmethod
    def resume(
        cls, path, expect_spec: Optional[ExperimentSpec] = None
    ) -> "SingleRouterExperiment":
        """Reload a checkpointed experiment, verifying provenance.

        With ``expect_spec`` the checkpoint's config digest is checked
        against the spec's configuration *before* unpickling, and the
        restored spec must equal it exactly — resuming someone else's
        checkpoint into the wrong sweep point is refused, not silently
        blended.
        """
        expect_config = None
        if expect_spec is not None:
            expect_config = expect_spec.config.with_(candidates=expect_spec.candidates)
        _, components = CheckpointCodec.load(
            path, expect_kind=cls.KIND, expect_config=expect_config
        )
        experiment = components.get("experiment")
        if not isinstance(experiment, cls):
            raise CheckpointFormatError(
                f"{path}: checkpoint does not contain a {cls.__name__}"
            )
        if expect_spec is not None and experiment.spec != expect_spec:
            raise CheckpointMismatchError("spec", experiment.spec, expect_spec)
        return experiment


def run_single_router_experiment(
    spec: ExperimentSpec,
    plan: Optional[ConnectionPlan] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path=None,
    resume: bool = False,
    _crash_at_cycle: Optional[int] = None,
) -> ExperimentResult:
    """Run one point of the paper's evaluation grid.

    A pre-generated ``plan`` may be supplied so that different schedulers
    are compared on the *same* connection set (as the paper's common
    workload implies); otherwise the plan is derived from the seed.

    ``checkpoint_every=N`` writes a checkpoint to ``checkpoint_path``
    every N cycles (atomically, latest wins); ``resume=True`` continues
    from an existing checkpoint at that path instead of rebuilding from
    cycle 0 — bit-identical results either way.  ``_crash_at_cycle`` is a
    test hook that raises :class:`SimulatedWorkerCrash` once the (first,
    non-resumed) run passes that cycle, modelling a killed worker.
    """
    if checkpoint_every is not None and checkpoint_every <= 0:
        raise ValueError(f"checkpoint_every must be positive, got {checkpoint_every}")
    if checkpoint_every is None and not resume and _crash_at_cycle is None:
        experiment = SingleRouterExperiment(spec, plan)
        return experiment.result()
    if checkpoint_path is None:
        raise ValueError("checkpointing requires a checkpoint_path")
    path = Path(checkpoint_path)
    lineage: Dict[str, Any] = {
        "schema": CheckpointCodec.schema,
        "path": str(path),
        "resumed_from_cycle": None,
        "checkpoints_written": 0,
    }
    if resume and path.exists():
        experiment = SingleRouterExperiment.resume(path, expect_spec=spec)
        lineage["resumed_from_cycle"] = experiment.now
    else:
        experiment = SingleRouterExperiment(spec, plan)
    total = experiment.total_cycles
    stride = checkpoint_every if checkpoint_every is not None else total
    while experiment.now < total:
        experiment.run_to(min(experiment.now + stride, total))
        if checkpoint_every is not None and experiment.now < total:
            header = experiment.checkpoint(path)
            lineage["checkpoints_written"] += 1
            lineage["last_checkpoint_cycle"] = header.cycle
        if (
            _crash_at_cycle is not None
            and lineage["resumed_from_cycle"] is None
            and _crash_at_cycle <= experiment.now < total
        ):
            raise SimulatedWorkerCrash(
                f"worker killed at cycle {experiment.now} (test hook)"
            )
    result = experiment.result()
    result.checkpoint = lineage
    return result
