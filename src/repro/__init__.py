"""repro — a reproduction of the MultiMedia Router (MMR), HPCA 1999.

A cycle-level model of Duato, Yalamanchili, Caminero, Love and Quiles'
single-chip multimedia router: virtual channel memories, a multiplexed
crossbar, link/switch scheduling with dynamic priority biasing, CBR/VBR
bandwidth allocation, credit flow control, pipelined-circuit-switched
connection establishment with exhaustive profitable backtracking, and the
hybrid best-effort/control VCT path — plus the multi-router network,
traffic generators, QoS metrics and the harness that regenerates the
paper's evaluation figures.

Quick start::

    from repro import ExperimentSpec, run_single_router_experiment

    spec = ExperimentSpec(target_load=0.8, priority="biased", candidates=8)
    result = run_single_router_experiment(spec)
    print(result.mean_delay_us, result.mean_jitter_cycles)
"""

from .core import (
    AdmissionController,
    BandwidthAllocator,
    BandwidthRequest,
    BiasedPriority,
    BitVector,
    DecScheduler,
    FixedPriority,
    Flit,
    FlitType,
    GreedyPriorityScheduler,
    LinkFlowControl,
    LinkScheduler,
    MultiplexedCrossbar,
    PerfectSwitch,
    PerfectSwitchScheduler,
    Router,
    RouterConfig,
    ServiceClass,
    StatusBank,
    VirtualChannel,
    VirtualChannelMemory,
    make_priority_scheme,
)
from .harness import (
    DEFAULT_LOADS,
    PAPER_CONFIG,
    ExperimentResult,
    ExperimentSpec,
    figure3,
    figure4,
    figure5,
    run_single_router_experiment,
)
from .harness.saturation import find_saturation_load
from .network import (
    ConnectionManager,
    Network,
    NetworkInterface,
    ProbeProtocol,
    Topology,
    hypercube,
    irregular,
    mesh,
    ring,
    torus,
)
from .qos import QosContract, QosSummary, summarise, summarise_weighted, verify_contract
from .sim import SeededRng, Simulator
from .traffic import (
    CbrSource,
    LoadPlanner,
    MpegProfile,
    PacketSource,
    PAPER_RATE_SET,
    VbrSource,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "BandwidthAllocator",
    "BandwidthRequest",
    "BiasedPriority",
    "BitVector",
    "DecScheduler",
    "FixedPriority",
    "Flit",
    "FlitType",
    "GreedyPriorityScheduler",
    "LinkFlowControl",
    "LinkScheduler",
    "MultiplexedCrossbar",
    "PerfectSwitch",
    "PerfectSwitchScheduler",
    "Router",
    "RouterConfig",
    "ServiceClass",
    "StatusBank",
    "VirtualChannel",
    "VirtualChannelMemory",
    "make_priority_scheme",
    "DEFAULT_LOADS",
    "PAPER_CONFIG",
    "ExperimentResult",
    "ExperimentSpec",
    "figure3",
    "figure4",
    "figure5",
    "run_single_router_experiment",
    "ConnectionManager",
    "Network",
    "ProbeProtocol",
    "find_saturation_load",
    "NetworkInterface",
    "Topology",
    "hypercube",
    "irregular",
    "mesh",
    "ring",
    "torus",
    "QosContract",
    "QosSummary",
    "summarise",
    "summarise_weighted",
    "verify_contract",
    "SeededRng",
    "Simulator",
    "CbrSource",
    "LoadPlanner",
    "MpegProfile",
    "PacketSource",
    "PAPER_RATE_SET",
    "VbrSource",
]
