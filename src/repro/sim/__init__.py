"""Simulation kernel: cycle/event engine, deterministic RNG, statistics."""

from .engine import Simulator
from .events import Event, EventQueue
from .rng import SeededRng, substream_seed
from .trace import NullTracer, TraceRecord, Tracer
from .stats import (
    ConnectionStats,
    Histogram,
    RunningStats,
    StatsRegistry,
    TimeWeightedStats,
)

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "SeededRng",
    "substream_seed",
    "ConnectionStats",
    "Histogram",
    "RunningStats",
    "StatsRegistry",
    "TimeWeightedStats",
    "NullTracer",
    "TraceRecord",
    "Tracer",
]
