"""Event tracing: a structured record of what the router did and when.

A :class:`Tracer` collects typed trace records (flit injected, granted,
delivered, connection opened, ...) with bounded memory, filterable by
category and connection.  Tracing costs nothing when disabled — the
router only calls through a no-op — so it can stay wired into hot paths.

Primarily a debugging and teaching tool: the examples can dump the life
of a single flit through the pipeline, and tests use traces to assert
event ordering without poking router internals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional

#: Categories the router emits (kept here as the single source of truth).
CATEGORIES = (
    "inject",  # flit entered an input VC
    "cutthrough",  # control flit bypassed synchronous scheduling
    "grant",  # switch scheduler granted a (port, vc)
    "deliver",  # flit left through an output port
    "connection",  # open / close / renegotiate
    "round",  # round boundary
    "credit",  # credit consumed / returned
)

_KNOWN_CATEGORIES = frozenset(CATEGORIES)


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: int
    category: str
    message: str
    connection_id: int = -1
    flit_id: int = -1

    def __str__(self) -> str:
        parts = [f"[{self.time:>8}] {self.category:<12} {self.message}"]
        if self.connection_id >= 0:
            parts.append(f"conn={self.connection_id}")
        if self.flit_id >= 0:
            parts.append(f"flit={self.flit_id}")
        return " ".join(parts)


class Tracer:
    """Bounded in-memory trace buffer with category filtering."""

    def __init__(
        self,
        capacity: int = 10000,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = True
        if categories:
            requested = frozenset(categories)
            unknown = requested - _KNOWN_CATEGORIES
            if unknown:
                raise ValueError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"known: {CATEGORIES}"
                )
            self._categories = requested
        else:
            self._categories = None
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def record(
        self,
        time: int,
        category: str,
        message: str,
        connection_id: int = -1,
        flit_id: int = -1,
    ) -> None:
        """Append a record (honouring the enable flag and category filter).

        The category must be one of :data:`CATEGORIES` — a typo would
        otherwise produce a record no filter ever matches (or, on the
        filtering side, a permanently empty trace).
        """
        if not self.enabled:
            return
        if category not in _KNOWN_CATEGORIES:
            raise ValueError(
                f"unknown trace category {category!r}; known: {CATEGORIES}"
            )
        if self._categories is not None and category not in self._categories:
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(
            TraceRecord(time, category, message, connection_id, flit_id)
        )
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        category: Optional[str] = None,
        connection_id: Optional[int] = None,
        flit_id: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Filtered view of the buffered records, oldest first."""
        out = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if connection_id is not None and record.connection_id != connection_id:
                continue
            if flit_id is not None and record.flit_id != flit_id:
                continue
            out.append(record)
        return out

    def clear(self) -> None:
        """Drop all buffered records (counters keep accumulating)."""
        self._records.clear()

    def format(self, **filters) -> str:
        """The filtered trace as printable text."""
        return "\n".join(str(record) for record in self.records(**filters))


class NullTracer:
    """A tracer that discards everything at near-zero cost.

    Routers hold one of these by default so tracing calls need no
    conditional at the call site.
    """

    enabled = False

    def record(self, *args, **kwargs) -> None:
        """Discard the record."""

    def records(self, **filters) -> List[TraceRecord]:
        """Always empty."""
        return []

    def __len__(self) -> int:
        return 0
