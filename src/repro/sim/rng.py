"""Deterministic random-number utilities.

Every stochastic component in the simulator draws from a named substream so
that experiments are reproducible from a single master seed and insensitive
to the order in which unrelated components consume randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


def substream_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for the substream ``name``.

    The derivation hashes ``(master_seed, name)`` so adding a new substream
    never perturbs existing ones.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeededRng:
    """A named, reproducible random stream.

    Thin wrapper around :class:`random.Random` seeded via
    :func:`substream_seed`.  Exposes only the operations the simulator
    needs, which keeps the reproducibility surface small and auditable.
    """

    def __init__(self, master_seed: int, name: str) -> None:
        self.master_seed = master_seed
        self.name = name
        self._rng = random.Random(substream_seed(master_seed, name))

    def spawn(self, name: str) -> "SeededRng":
        """Create a child stream named ``<this>.<name>``."""
        return SeededRng(self.master_seed, f"{self.name}.{name}")

    def getstate(self) -> tuple:
        """The stream's current internal state (checkpointable).

        The returned value is opaque: treat it as a token to hand back to
        :meth:`setstate` on the same (or an identically-named) stream.
        Capturing state does not advance the stream.
        """
        return self._rng.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured by :meth:`getstate`.

        After restoring, the stream continues the exact draw sequence it
        would have produced from the capture point.  Only this stream is
        affected — substreams spawned from it are independent
        ``random.Random`` instances and keep their own state.
        """
        self._rng.setstate(state)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def geometric(self, p: float) -> int:
        """Geometric variate: number of Bernoulli(p) trials up to and
        including the first success (support 1, 2, ...)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric probability must be in (0, 1], got {p}")
        count = 1
        while self._rng.random() >= p:
            count += 1
        return count

    def iter_uniform(self, low: float, high: float) -> Iterator[float]:
        """Endless stream of uniforms; handy for traffic generators."""
        while True:
            yield self.uniform(low, high)
