"""Streaming statistics used to gather simulation metrics.

The simulator runs for hundreds of thousands of cycles, so metrics are
accumulated incrementally (Welford's algorithm for mean/variance, fixed-bin
histograms for distributions) rather than by storing raw samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class RunningStats:
    """Incremental mean / variance / min / max over a stream of samples.

    Uses Welford's online algorithm, which is numerically stable for the
    long, low-variance streams produced by steady-state simulation.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the statistics."""
        self.count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the statistics."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / combined
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self.count = combined
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._total

    @property
    def variance(self) -> float:
        """Population variance (0.0 for fewer than two samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample seen (+inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest sample seen (-inf when empty)."""
        return self._max

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"stdev={self.stdev:.4g}, min={self._min:.4g}, max={self._max:.4g})"
        )


class Histogram:
    """Fixed-width-bin histogram with overflow/underflow tracking.

    Bin ``i`` covers ``[low + i*width, low + (i+1)*width)``.  Values outside
    ``[low, high)`` are counted in dedicated under/overflow buckets so no
    sample is silently dropped.
    """

    def __init__(self, low: float, high: float, bins: int) -> None:
        if high <= low:
            raise ValueError(f"histogram range empty: [{low}, {high})")
        if bins <= 0:
            raise ValueError(f"histogram needs at least one bin, got {bins}")
        self.low = low
        self.high = high
        self.bins = bins
        self.width = (high - low) / bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0

    def add(self, value: float, weight: int = 1) -> None:
        """Count ``value`` with multiplicity ``weight``."""
        if value < self.low:
            self.underflow += weight
        elif value >= self.high:
            self.overflow += weight
        else:
            index = int((value - self.low) / self.width)
            # Guard against floating point landing exactly on the top edge.
            if index >= self.bins:
                index = self.bins - 1
            self.counts[index] += weight

    @property
    def total(self) -> int:
        """Total number of counted samples, including under/overflow."""
        return sum(self.counts) + self.underflow + self.overflow

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile (0 <= q <= 1) from bin counts.

        Uses linear interpolation within the bin containing the quantile.
        Under/overflow samples clamp to the range edges.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total == 0:
            return 0.0
        target = q * total
        cumulative = self.underflow
        if target <= cumulative:
            return self.low
        for i, count in enumerate(self.counts):
            if cumulative + count >= target and count > 0:
                fraction = (target - cumulative) / count
                return self.low + (i + fraction) * self.width
            cumulative += count
        return self.high

    def nonzero_bins(self) -> List[Tuple[float, int]]:
        """(bin lower edge, count) for every non-empty bin."""
        return [
            (self.low + i * self.width, count)
            for i, count in enumerate(self.counts)
            if count
        ]


class TimeWeightedStats:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`record` whenever the signal changes; the accumulator weights
    each value by how long it was held.
    """

    def __init__(self, initial_time: float = 0.0, initial_value: float = 0.0) -> None:
        self._last_time = initial_time
        self._value = initial_value
        self._weighted_sum = 0.0
        self._duration = 0.0

    def record(self, time: float, value: float) -> None:
        """The signal takes ``value`` from ``time`` onward."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        span = time - self._last_time
        self._weighted_sum += self._value * span
        self._duration += span
        self._last_time = time
        self._value = value

    def finish(self, time: float) -> None:
        """Close the observation window at ``time``."""
        self.record(time, self._value)

    @property
    def mean(self) -> float:
        """Time-weighted mean over the observed window."""
        return self._weighted_sum / self._duration if self._duration else 0.0


@dataclass
class ConnectionStats:
    """Per-connection delay and jitter accumulators.

    Delay is the time between a flit becoming ready at the switch and the
    flit leaving the switch.  Jitter follows the paper's definition: the
    difference in the delays of successive flits on a connection, folded in
    as absolute values.
    """

    delay: RunningStats = field(default_factory=RunningStats)
    jitter: RunningStats = field(default_factory=RunningStats)
    flits: int = 0
    _last_delay: Optional[float] = None

    def record_flit(self, delay_cycles: float) -> None:
        """Record one delivered flit with the given switch delay."""
        self.flits += 1
        self.delay.add(delay_cycles)
        if self._last_delay is not None:
            self.jitter.add(abs(delay_cycles - self._last_delay))
        self._last_delay = delay_cycles


class StatsRegistry:
    """A namespace of named accumulators, used as a router-wide scoreboard."""

    def __init__(self) -> None:
        self.scalars: Dict[str, float] = {}
        self.series: Dict[str, RunningStats] = {}

    def counter(self, name: str, amount: float = 1.0) -> None:
        """Increment scalar counter ``name`` by ``amount``."""
        self.scalars[name] = self.scalars.get(name, 0.0) + amount

    def observe(self, name: str, value: float) -> None:
        """Fold a sample into the running series ``name``."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = RunningStats()
        series.add(value)

    def get_counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.scalars.get(name, 0.0)

    def get_series(self, name: str) -> RunningStats:
        """Running stats for ``name``, registering it on first access.

        The returned accumulator is the live registered instance —
        samples observed afterwards are visible through it, and samples
        added through it are visible to every other reader.  (An unknown
        name used to return a detached empty accumulator that silently
        swallowed any updates.)
        """
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = RunningStats()
        return series

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counters and series means, for reporting."""
        out = dict(self.scalars)
        for name, stats in self.series.items():
            out[f"{name}.mean"] = stats.mean
            out[f"{name}.count"] = stats.count
        return out
