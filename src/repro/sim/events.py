"""Discrete-event machinery: timestamped events and a stable priority queue."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, sequence)``; the sequence number
    makes ordering stable (FIFO among equal-time, equal-priority events),
    which keeps simulations deterministic.
    """

    __slots__ = ("time", "priority", "sequence", "action", "payload", "cancelled")

    def __init__(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
        sequence: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.action = action
        self.payload = payload
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (with the payload if one was given)."""
        if self.payload is None:
            self.action()
        else:
            self.action(self.payload)

    def _key(self):
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, prio={self.priority}{state})"


class EventQueue:
    """Binary-heap event queue with lazy cancellation.

    Cancelled events stay in the heap and are skipped on pop; this keeps
    cancellation O(1) at the cost of heap slack, which is the right trade
    for the simulator (cancellations are rare).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at ``time``; returns the event for cancellation."""
        event = Event(time, action, payload, priority, next(self._counter))
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
