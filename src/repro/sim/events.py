"""Discrete-event machinery: timestamped events and a stable priority queue."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, sequence)``; the sequence number
    makes ordering stable (FIFO among equal-time, equal-priority events),
    which keeps simulations deterministic.
    """

    __slots__ = ("time", "priority", "sequence", "action", "payload", "cancelled")

    def __init__(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
        sequence: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.action = action
        self.payload = payload
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (with the payload if one was given)."""
        if self.payload is None:
            self.action()
        else:
            self.action(self.payload)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, prio={self.priority}{state})"


class EventQueue:
    """Binary-heap event queue with lazy cancellation.

    Heap entries are ``(time, priority, sequence, event)`` tuples so that
    ordering is resolved by native tuple comparison — the event object
    itself is never compared.  The unique sequence number both provides
    FIFO ordering among ties and guarantees the comparison never reaches
    the event element.

    Cancelled events stay in the heap and are skipped on pop; this keeps
    cancellation O(1) at the cost of heap slack, which is the right trade
    for the simulator (cancellations are rare).
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at ``time``; returns the event for cancellation."""
        sequence = next(self._counter)
        event = Event(time, action, payload, priority, sequence)
        heapq.heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def pop(self) -> Event:
        """Remove and return the next live event."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            raise IndexError("pop from empty EventQueue")
        self._live -= 1
        return heapq.heappop(heap)[3]

    def pop_due(self, now: float) -> Optional[Event]:
        """Pop the next live event at or before ``now``, or None.

        The engine's drain loop calls this once per event instead of a
        ``peek_time``/``pop`` pair — one cancelled-entry sweep, one heap
        operation.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap or heap[0][0] > now:
            return None
        self._live -= 1
        return heapq.heappop(heap)[3]
