"""Activity-driven hybrid cycle/event simulation engine.

The MMR is a synchronous machine internally (flit cycles), so the natural
kernel is cycle-driven: components register a ``tick`` that runs once per
flit cycle.  Traffic arrivals and timers are sparse, so they are handled by
an event queue drained at the start of each cycle.

The paper's scheduling hardware keeps its cost proportional to *actual
activity* via status bit vectors (§4.1); the kernel mirrors that.  A ticker
may register an *activity predicate* — typically an
:class:`~repro.core.status_vectors.ActivitySet` handle backed by the same
``BitVector`` machinery as the status banks — and the simulator maintains a
per-cycle active set:

* a ticker whose predicate reports inactive is not invoked that cycle (its
  cheap ``on_skip`` hook, when given, keeps its cycle accounting exact);
* when *every* gated ticker is inactive and no event is due, ``run`` fast
  forwards ``now`` directly to the next event time (or the end of the run)
  instead of spinning empty cycles.

Tickers registered without a predicate are assumed always-active, which
preserves the original kernel's semantics (and disables fast-forward while
any such ticker exists).

``Simulator(allow_fast_forward=False)`` selects the **legacy kernel**: a
faithful reproduction of the seed engine, which invokes every registered
ticker on every cycle — no activity gating, no skip accounting, no
fast-forward.  Components keep publishing activity (the bits are cheap)
but the kernel ignores it, and they fall back to their original
scan-everything code paths.  The perf gate uses the legacy kernel as the
"before" measurement and checks the two kernels are cycle-for-cycle
identical on seeded runs.
"""

from __future__ import annotations

import pickle
from time import perf_counter
from typing import Any, Callable, List, Optional

from .events import Event, EventQueue

#: An activity predicate: () -> bool, True when the ticker has work.
ActivityPredicate = Callable[[], bool]
#: Idle accounting hook: (first_skipped_cycle, count) -> None.
SkipHook = Callable[[int, int], None]


class _Ticker:
    """One registered per-cycle callback and its activity wiring."""

    __slots__ = ("tick", "active", "on_skip", "name", "on_restore", "suspended")

    def __init__(
        self,
        tick: Callable[[int], None],
        active: Optional[ActivityPredicate],
        on_skip: Optional[SkipHook],
        name: Optional[str] = None,
        on_restore: Optional[Callable[[], None]] = None,
    ) -> None:
        self.tick = tick
        self.active = active
        self.on_skip = on_skip
        self.name = name
        self.on_restore = on_restore
        # A suspended ticker stays registered (identity, restore hooks)
        # but is removed from the per-cycle dispatch views: the network
        # arena suspends every router ticker and steps the routers
        # itself, so idle routers cost zero kernel dispatch.
        self.suspended = False


class Simulator:
    """Cycle-driven simulator with an auxiliary event queue.

    Time is measured in integer flit cycles (the paper's "router cycles").
    Conversion to wall-clock time is the responsibility of
    :class:`repro.core.config.RouterConfig`, which knows the link rate and
    flit size.
    """

    def __init__(self, allow_fast_forward: bool = True) -> None:
        self.now = 0
        self.events = EventQueue()
        #: True selects the activity-driven kernel; False the legacy
        #: (seed) kernel that ticks every ticker every cycle.
        self.allow_fast_forward = allow_fast_forward
        #: Cycles skipped by fast-forward so far (reporting only).
        self.fast_forwarded_cycles = 0
        self._tickers: List[_Ticker] = []
        self._all_gated = True
        self._stopped = False
        self._in_tick_phase = False
        self._profiler = None
        # Flat views over the *runnable* (non-suspended) tickers,
        # maintained by add_ticker and suspend/resume: the idle test and
        # the fast-forward accounting run between every stepped cycle,
        # so they should not re-filter the ticker list.
        self._run_tickers: List[_Ticker] = []
        self._activity_predicates: List[ActivityPredicate] = []
        self._skip_hooks: List[SkipHook] = []

    def add_ticker(
        self,
        tick: Callable[[int], None],
        activity: Any = None,
        on_skip: Optional[SkipHook] = None,
        name: Optional[str] = None,
        on_restore: Optional[Callable[[], None]] = None,
    ) -> None:
        """Register a per-cycle callback ``tick(cycle)``.

        Tickers run in registration order every cycle, after same-cycle
        events have been drained.

        ``activity`` gates the ticker: it may be a zero-argument callable
        returning True while the ticker has work, or any object with an
        ``active()`` method (such as an ``ActivitySet``).  When the
        predicate reports inactive the ticker is skipped for that cycle and
        ``on_skip(first_cycle, count)`` — if given — is invoked instead so
        the component can account the idle cycles (counters, round
        boundaries) without paying for a full tick.  ``on_skip`` also
        covers spans elided by fast-forward, with ``count > 1``.

        Omitting ``activity`` marks the ticker always-active; the kernel
        then never skips it and never fast-forwards past it.

        The legacy kernel (``allow_fast_forward=False``) ignores both
        ``activity`` and ``on_skip`` and ticks every ticker every cycle.

        ``on_restore``, if given, is invoked (in registration order) by
        :meth:`restore` after a snapshot is unpickled.  Components that
        keep derived state deliberately excluded from checkpoints — e.g.
        the columnar scheduling arrays, rebuilt from the object graph —
        use it to reconstruct that state before the first resumed cycle.
        """
        predicate: Optional[ActivityPredicate]
        if activity is None:
            predicate = None
        elif callable(activity):
            predicate = activity
        elif hasattr(activity, "active"):
            predicate = activity.active
        else:
            raise TypeError(
                f"activity must be callable or have .active(), got {activity!r}"
            )
        self._tickers.append(_Ticker(tick, predicate, on_skip, name, on_restore))
        self._rebuild_ticker_views()
        if self._profiler is not None:
            self._profiler.register(len(self._tickers) - 1, name)

    def _rebuild_ticker_views(self) -> None:
        """Recompute the runnable-ticker list and its flat views.

        Registration order is preserved, so suspending and later
        resuming a ticker restores the exact original dispatch order.
        """
        self._run_tickers = [
            t for t in self._tickers if not getattr(t, "suspended", False)
        ]
        self._all_gated = all(t.active is not None for t in self._run_tickers)
        self._activity_predicates = [
            t.active for t in self._run_tickers if t.active is not None
        ]
        self._skip_hooks = [
            t.on_skip for t in self._run_tickers if t.on_skip is not None
        ]

    def suspend_tickers(self, ticks: List[Callable[[int], None]]) -> None:
        """Remove the tickers with the given ``tick`` callbacks from
        per-cycle dispatch (batched: one view rebuild).

        Suspended tickers keep their registration slot, identity and
        ``on_restore`` hook; :meth:`resume_tickers` reinstates them in
        the original order.  The caller takes over their per-cycle
        semantics (ticking, idle accounting) while they are suspended —
        this is the network arena's contract.
        """
        self._retarget_tickers(ticks, suspended=True)

    def resume_tickers(self, ticks: List[Callable[[int], None]]) -> None:
        """Reinstate tickers removed by :meth:`suspend_tickers`."""
        self._retarget_tickers(ticks, suspended=False)

    def _retarget_tickers(
        self, ticks: List[Callable[[int], None]], suspended: bool
    ) -> None:
        wanted = list(ticks)
        for ticker in self._tickers:
            for index, tick in enumerate(wanted):
                if ticker.tick == tick:
                    ticker.suspended = suspended
                    del wanted[index]
                    break
        if wanted:
            raise ValueError(f"no registered ticker for {wanted[0]!r}")
        self._rebuild_ticker_views()

    def set_profiler(self, profiler: Any) -> None:
        """Attach (or detach, with None) a kernel profiler.

        While attached, the profiler receives ``register`` for every
        ticker (existing and future), ``on_cycle``/``on_tick``/``on_skip``
        per dispatch decision, ``on_events`` per drained batch and
        ``on_fast_forward`` per elided span — see
        :class:`repro.obs.kernel.KernelProfiler`.  Profiling brackets each
        tick with wall-clock reads, so timing-sensitive measurements
        should detach it first.
        """
        self._profiler = profiler
        if profiler is not None:
            for index, ticker in enumerate(self._tickers):
                profiler.register(index, ticker.name)

    def schedule(
        self,
        delay: int,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` cycles from now.

        ``delay=0`` is legal from event context (the drain loop fires it in
        the same cycle, before tickers) but **rejected from ticker
        context**: the drain phase has already passed, so a zero-delay
        event scheduled by a ticker would silently slip to the next cycle.
        Rather than fire it late, the kernel raises ``ValueError`` —
        schedule with ``delay=1`` to run at the start of the next cycle.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        if delay == 0 and self._in_tick_phase:
            raise ValueError(
                "delay=0 from ticker context would silently slip to the "
                "next cycle; schedule with delay=1 instead"
            )
        return self.events.push(self.now + delay, action, payload, priority)

    def schedule_at(
        self,
        time: int,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute cycle ``time`` (>= now).

        ``time == now`` carries the same ticker-context restriction as
        ``schedule(0, ...)`` — see :meth:`schedule`.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        if time == self.now and self._in_tick_phase:
            raise ValueError(
                "scheduling at the current cycle from ticker context would "
                "silently slip to the next cycle; use now+1 instead"
            )
        return self.events.push(time, action, payload, priority)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current cycle."""
        self._stopped = True

    @property
    def kernel(self) -> str:
        """The selected kernel: ``"activity"`` or ``"legacy"``."""
        return "activity" if self.allow_fast_forward else "legacy"

    def step(self) -> None:
        """Execute one cycle: due events first, then the tickers.

        Under the activity kernel, gated tickers whose activity predicate
        reports False are skipped (their ``on_skip`` hook runs instead);
        ungated tickers always run.  Under the legacy kernel every ticker
        runs unconditionally, exactly as the seed engine did.
        """
        if self._profiler is not None:
            self._step_profiled()
            return
        pop_due = self.events.pop_due
        now = self.now
        while True:
            event = pop_due(now)
            if event is None:
                break
            event.fire()
        self._in_tick_phase = True
        try:
            if self.allow_fast_forward:
                for ticker in self._run_tickers:
                    active = ticker.active
                    if active is None or active():
                        ticker.tick(now)
                    elif ticker.on_skip is not None:
                        ticker.on_skip(now, 1)
            else:
                for ticker in self._run_tickers:
                    ticker.tick(now)
        finally:
            self._in_tick_phase = False
        self.now = now + 1

    def _step_profiled(self) -> None:
        """One cycle with the profiler's dispatch accounting engaged.

        Kept out of :meth:`step` so the unprofiled path pays a single
        ``is not None`` test per cycle and nothing else.
        """
        profiler = self._profiler
        pop_due = self.events.pop_due
        now = self.now
        fired = 0
        while True:
            event = pop_due(now)
            if event is None:
                break
            event.fire()
            fired += 1
        if fired:
            profiler.on_events(fired)
        profiler.on_cycle()
        self._in_tick_phase = True
        try:
            if self.allow_fast_forward:
                for index, ticker in enumerate(self._tickers):
                    if ticker.suspended:
                        continue
                    active = ticker.active
                    if active is None or active():
                        start = perf_counter()
                        ticker.tick(now)
                        profiler.on_tick(index, perf_counter() - start)
                    else:
                        if ticker.on_skip is not None:
                            ticker.on_skip(now, 1)
                        profiler.on_skip(index, 1)
            else:
                for index, ticker in enumerate(self._tickers):
                    if ticker.suspended:
                        continue
                    start = perf_counter()
                    ticker.tick(now)
                    profiler.on_tick(index, perf_counter() - start)
        finally:
            self._in_tick_phase = False
        self.now = now + 1

    def _idle(self) -> bool:
        """True when every ticker is gated and none reports activity."""
        if not self._all_gated:
            return False
        for active in self._activity_predicates:
            if active():
                return False
        return True

    def _fast_forward(self, target: int) -> int:
        """Jump ``now`` to ``target``, accounting the skip; returns cycles."""
        now = self.now
        skipped = target - now
        for on_skip in self._skip_hooks:
            on_skip(now, skipped)
        self.now = target
        self.fast_forwarded_cycles += skipped
        if self._profiler is not None:
            self._profiler.on_fast_forward(skipped)
        return skipped

    def run(self, cycles: int) -> int:
        """Run ``cycles`` cycles (or until :meth:`stop`); returns cycles run.

        Cycles elided by fast-forward count as run: the simulation state at
        return is cycle-for-cycle identical to stepping through them.
        """
        if cycles < 0:
            raise ValueError(f"cannot run a negative number of cycles: {cycles}")
        self._stopped = False
        end = self.now + cycles
        executed = 0
        fast_forward = self.allow_fast_forward
        idle = self._idle
        peek_time = self.events.peek_time
        step = self.step
        while self.now < end and not self._stopped:
            if fast_forward and idle():
                next_time = peek_time()
                target = end if next_time is None else min(int(next_time), end)
                if target > self.now:
                    executed += self._fast_forward(target)
                    continue
            step()
            executed += 1
        return executed

    def run_until(self, time: int) -> int:
        """Run until ``self.now == time``; returns cycles run."""
        if time < self.now:
            raise ValueError(f"cannot run backwards to {time} from {self.now}")
        return self.run(time - self.now)

    # ----- checkpoint / restore ---------------------------------------------

    def __setstate__(self, state: dict) -> None:
        """Unpickle migration: snapshots written before ticker suspension
        existed lack the ``suspended`` slots and the runnable-ticker
        views; normalise them (every ticker runnable) so any unpickle
        path — ``restore`` or the checkpoint codec — yields a steppable
        simulator."""
        self.__dict__.update(state)
        if "_run_tickers" not in state:
            for ticker in self._tickers:
                if not hasattr(ticker, "suspended"):
                    ticker.suspended = False
            self._rebuild_ticker_views()

    def snapshot(self) -> bytes:
        """Serialise the simulator *and everything reachable from it*.

        Tickers, activity predicates and pending events hold references
        into the component graph (routers, sources, networks), so one
        snapshot captures the complete simulation state — event queue
        positions, RNG substreams, buffer contents, scheduler round
        accounting — with shared references preserved.  Resuming the
        restored simulator replays the exact cycle-for-cycle execution
        the original would have produced (the perf gate proves this
        bit-identically on the gated scenarios).

        Only legal between cycles: snapshotting from inside a ticker
        would capture a half-stepped cycle that cannot be resumed
        faithfully.  Components must be picklable — closures and lambdas
        in handlers or pending events make the snapshot fail (the
        asynchronous probe-protocol demos are the one remaining
        known-unsnapshottable phase).
        """
        if self._in_tick_phase:
            raise RuntimeError(
                "cannot snapshot from ticker context: the cycle is half-"
                "stepped; snapshot between run() calls instead"
            )
        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise RuntimeError(
                "simulator state is not snapshottable: a ticker, handler "
                f"or pending event holds a non-picklable object ({exc})"
            ) from exc

    @classmethod
    def restore(cls, blob: bytes) -> "Simulator":
        """Rebuild a simulator (and its component graph) from a snapshot.

        The returned instance is fully detached from the original: it owns
        deep copies of every component and can be run, re-snapshotted or
        discarded independently.  An attached kernel profiler travels with
        the snapshot (it is plain counters), so profiled runs resume
        profiled.
        """
        sim = pickle.loads(blob)
        if not isinstance(sim, cls):
            raise TypeError(f"snapshot does not contain a {cls.__name__}")
        # Let components rebuild derived state that snapshots exclude by
        # design (e.g. columnar NumPy banks, reconstructed from the
        # authoritative object graph).  ``getattr`` keeps snapshots taken
        # before the hook existed loadable.
        for ticker in sim._tickers:
            hook = getattr(ticker, "on_restore", None)
            if hook is not None:
                hook()
        return sim
