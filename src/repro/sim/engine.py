"""Hybrid cycle/event simulation engine.

The MMR is a synchronous machine internally (flit cycles), so the natural
kernel is cycle-driven: components register a ``tick`` that runs once per
flit cycle.  Traffic arrivals and timers are sparse, so they are handled by
an event queue drained at the start of each cycle.  This hybrid keeps the
per-cycle cost proportional to actual activity.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .events import Event, EventQueue


class Simulator:
    """Cycle-driven simulator with an auxiliary event queue.

    Time is measured in integer flit cycles (the paper's "router cycles").
    Conversion to wall-clock time is the responsibility of
    :class:`repro.core.config.RouterConfig`, which knows the link rate and
    flit size.
    """

    def __init__(self) -> None:
        self.now = 0
        self.events = EventQueue()
        self._tickers: List[Callable[[int], None]] = []
        self._stopped = False

    def add_ticker(self, tick: Callable[[int], None]) -> None:
        """Register a per-cycle callback ``tick(cycle)``.

        Tickers run in registration order every cycle, after same-cycle
        events have been drained.
        """
        self._tickers.append(tick)

    def schedule(
        self,
        delay: int,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.events.push(self.now + delay, action, payload, priority)

    def schedule_at(
        self,
        time: int,
        action: Callable[..., None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        return self.events.push(time, action, payload, priority)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current cycle."""
        self._stopped = True

    def _drain_events(self) -> None:
        while self.events:
            next_time = self.events.peek_time()
            if next_time is None or next_time > self.now:
                break
            self.events.pop().fire()

    def step(self) -> None:
        """Execute one cycle: due events first, then every ticker."""
        self._drain_events()
        for tick in self._tickers:
            tick(self.now)
        self.now += 1

    def run(self, cycles: int) -> int:
        """Run ``cycles`` cycles (or until :meth:`stop`); returns cycles run."""
        if cycles < 0:
            raise ValueError(f"cannot run a negative number of cycles: {cycles}")
        self._stopped = False
        executed = 0
        for _ in range(cycles):
            if self._stopped:
                break
            self.step()
            executed += 1
        return executed

    def run_until(self, time: int) -> int:
        """Run until ``self.now == time``; returns cycles run."""
        if time < self.now:
            raise ValueError(f"cannot run backwards to {time} from {self.now}")
        return self.run(time - self.now)
