"""Frame-size traces for VBR video (paper §2, §4.2).

The MMR's follow-up evaluations use MPEG-2 traces.  Real traces are
distributed as plain text, one frame record per line; this module reads
and writes that format, synthesises statistically-matched traces from an
:class:`~repro.traffic.vbr.MpegProfile` (our substitution for the
authors' proprietary traces — see DESIGN.md), and plays a trace through
an established connection via :class:`TraceVbrSource`.

Trace file format (comment lines start with ``#``)::

    # frame_rate_hz: 30.0
    I 412672
    B 81920
    P 204800
    ...
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, TextIO, Tuple, Union

from ..core.config import RouterConfig
from ..core.flit import Flit, FlitType
from ..core.router import Router
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from .vbr import MpegProfile


@dataclass(frozen=True)
class FrameRecord:
    """One video frame: its kind (I/P/B) and size in bits."""

    kind: str
    bits: int

    def __post_init__(self) -> None:
        if not self.kind or not self.kind.isalpha():
            raise ValueError(f"frame kind must be alphabetic, got {self.kind!r}")
        if self.bits <= 0:
            raise ValueError(f"frame bits must be positive, got {self.bits}")


@dataclass
class FrameTrace:
    """A frame-size trace with its frame rate."""

    frame_rate_hz: float
    frames: List[FrameRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.frame_rate_hz <= 0:
            raise ValueError(
                f"frame_rate_hz must be positive, got {self.frame_rate_hz}"
            )

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def total_bits(self) -> int:
        """Sum of all frame sizes."""
        return sum(frame.bits for frame in self.frames)

    @property
    def duration_seconds(self) -> float:
        """Play-out duration at the trace's frame rate."""
        return len(self.frames) / self.frame_rate_hz

    @property
    def mean_rate_bps(self) -> float:
        """Long-run bit rate of the trace."""
        if not self.frames:
            return 0.0
        return self.total_bits / self.duration_seconds

    def peak_rate_bps(self, window_frames: int = 1) -> float:
        """Worst-case rate over any ``window_frames``-frame window."""
        if not self.frames:
            return 0.0
        if window_frames <= 0:
            raise ValueError(f"window_frames must be positive, got {window_frames}")
        window_frames = min(window_frames, len(self.frames))
        window_bits = sum(f.bits for f in self.frames[:window_frames])
        worst = window_bits
        for i in range(window_frames, len(self.frames)):
            window_bits += self.frames[i].bits - self.frames[i - window_frames].bits
            worst = max(worst, window_bits)
        return worst * self.frame_rate_hz / window_frames

    def kinds(self) -> List[str]:
        """Distinct frame kinds, in order of first appearance."""
        seen: List[str] = []
        for frame in self.frames:
            if frame.kind not in seen:
                seen.append(frame.kind)
        return seen

    # ----- persistence ---------------------------------------------------------

    def dump(self, stream: TextIO) -> None:
        """Write the trace in the text format."""
        stream.write(f"# frame_rate_hz: {self.frame_rate_hz}\n")
        for frame in self.frames:
            stream.write(f"{frame.kind} {frame.bits}\n")

    @classmethod
    def parse(cls, stream: TextIO) -> "FrameTrace":
        """Read a trace written by :meth:`dump` (or a compatible file)."""
        frame_rate = 30.0
        frames: List[FrameRecord] = []
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("frame_rate_hz:"):
                    frame_rate = float(body.split(":", 1)[1])
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"line {line_number}: expected 'KIND BITS', got {line!r}"
                )
            frames.append(FrameRecord(parts[0], int(parts[1])))
        return cls(frame_rate, frames)

    @classmethod
    def synthesise(
        cls,
        profile: MpegProfile,
        num_frames: int,
        rng: SeededRng,
    ) -> "FrameTrace":
        """Generate a trace statistically matched to ``profile``."""
        if num_frames <= 0:
            raise ValueError(f"num_frames must be positive, got {num_frames}")
        frames = []
        for i in range(num_frames):
            kind = profile.gop[i % len(profile.gop)]
            bits = profile.frame_bits(kind)
            if profile.sigma > 0:
                bits *= math.exp(rng.gauss(0.0, profile.sigma))
            frames.append(FrameRecord(kind, max(1, round(bits))))
        return cls(profile.frame_rate_hz, frames)


class TraceVbrSource:
    """Plays a :class:`FrameTrace` over an established VBR connection.

    Like :class:`~repro.traffic.vbr.VbrSource` but frame sizes come from
    the trace instead of a statistical model; the trace loops when it
    runs out (standard practice when driving long simulations from short
    traces).
    """

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        connection_id: int,
        input_port: int,
        vc_index: int,
        trace: FrameTrace,
        config: RouterConfig,
        phase: float = 0.0,
        stop_time: Optional[int] = None,
        loop: bool = True,
    ) -> None:
        if not trace.frames:
            raise ValueError("cannot play an empty trace")
        self.sim = sim
        self.router = router
        self.connection_id = connection_id
        self.input_port = input_port
        self.vc_index = vc_index
        self.trace = trace
        self.config = config
        self.stop_time = stop_time
        self.loop = loop
        self.frame_period = (
            1.0 / trace.frame_rate_hz / config.flit_cycle_seconds
        )
        self._next_frame_time = phase
        self._frame_index = 0
        self.sequence = 0
        self.flits_generated = 0
        self.flits_injected = 0
        self.frames_played = 0
        self._pending: Deque[Flit] = deque()
        self._retry_scheduled = False

    def start(self) -> None:
        """Schedule the first frame, ``phase`` cycles from now."""
        self._next_frame_time += self.sim.now
        self.sim.schedule_at(int(self._next_frame_time), self._on_frame)

    def _on_frame(self) -> None:
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        if self._frame_index >= len(self.trace.frames):
            if not self.loop:
                return
            self._frame_index = 0
        frame = self.trace.frames[self._frame_index]
        self._frame_index += 1
        self.frames_played += 1
        count = max(1, -(-frame.bits // self.config.flit_size_bits))
        for i in range(count):
            flit = Flit(
                FlitType.DATA,
                connection_id=self.connection_id,
                created=self.sim.now,
                sequence=self.sequence,
                is_tail=(i == count - 1),
            )
            self.sequence += 1
            self.flits_generated += 1
            self._pending.append(flit)
        self._drain()
        self._next_frame_time += self.frame_period
        self.sim.schedule_at(int(self._next_frame_time), self._on_frame)

    def _drain(self) -> None:
        while self._pending:
            if not self.router.inject(self.input_port, self.vc_index, self._pending[0]):
                if not self._retry_scheduled:
                    self._retry_scheduled = True
                    self.sim.schedule(1, self._retry)
                return
            self._pending.popleft()
            self.flits_injected += 1

    def _retry(self) -> None:
        self._retry_scheduled = False
        self._drain()
        if self._pending and not self._retry_scheduled:
            self._retry_scheduled = True
            self.sim.schedule(1, self._retry)

    @property
    def backlog(self) -> int:
        """Flits held at the interface by back-pressure right now."""
        return len(self._pending)
