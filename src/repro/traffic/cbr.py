"""Constant-bit-rate traffic sources (paper §2, §5).

A CBR connection delivers one flit every fixed inter-arrival period.  The
source models the network interface feeding the router's input link: when
the input virtual channel buffer is full (link-level flow control pushed
back), flits wait in the interface queue and are retried — nothing is
dropped, matching the MMR's lossless design.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.config import RouterConfig
from ..core.flit import Flit, FlitType
from ..core.router import Router
from ..sim.engine import Simulator


class CbrSource:
    """Generates a deterministic flit stream for one CBR connection."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        connection_id: int,
        input_port: int,
        vc_index: int,
        rate_bps: float,
        config: RouterConfig,
        phase: float = 0.0,
        stop_time: Optional[int] = None,
        policer=None,
    ) -> None:
        """``phase`` offsets the first arrival (cycles) so that connections
        admitted together do not all beat in lockstep.  ``policer`` (a
        :class:`~repro.network.policing.TokenBucket`) gates injection when
        set: a flit enters the network only once a token is available, so a
        renegotiated-down session is actually shaped to its new contract
        (§4.2-4.3)."""
        if phase < 0:
            raise ValueError(f"phase must be >= 0, got {phase}")
        self.sim = sim
        self.router = router
        self.connection_id = connection_id
        self.input_port = input_port
        self.vc_index = vc_index
        self.rate_bps = rate_bps
        self.interarrival = config.rate_to_interarrival_cycles(rate_bps)
        self.phase = phase
        self.stop_time = stop_time
        self.sequence = 0
        self.flits_generated = 0
        self.flits_injected = 0
        self._pending: Deque[Flit] = deque()
        self._retry_scheduled = False
        self._next_arrival = phase
        self.max_interface_queue = 0
        self.policer = policer
        # A token granted for a flit the router then refused stays "held"
        # for the retry, so back-pressure never burns policer credit.
        self._token_held = False

    def _policer_allows(self) -> bool:
        if self.policer is None or self._token_held:
            return True
        if self.policer.allow(self.sim.now):
            self._token_held = True
            return True
        return False

    def start(self) -> None:
        """Schedule the first arrival, ``phase`` cycles from now."""
        self._next_arrival = self.sim.now + self.phase
        self.sim.schedule_at(int(self._next_arrival), self._on_arrival)

    # ----- event handlers --------------------------------------------------

    def _on_arrival(self) -> None:
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        flit = Flit(
            FlitType.DATA,
            connection_id=self.connection_id,
            created=self.sim.now,
            sequence=self.sequence,
        )
        self.sequence += 1
        self.flits_generated += 1
        pending = self._pending
        if not pending:
            # Common case: no backlog, so try the VC directly and skip the
            # interface queue round-trip.  The flit still "occupies" the
            # queue for the attempt, so the high-water mark is at least 1.
            if self._policer_allows() and self.router.inject(
                self.input_port, self.vc_index, flit
            ):
                self._token_held = False
                self.flits_injected += 1
                if self.max_interface_queue < 1:
                    self.max_interface_queue = 1
            else:
                pending.append(flit)
                if self.max_interface_queue < 1:
                    self.max_interface_queue = 1
                self._schedule_retry()
        else:
            pending.append(flit)
            if len(pending) > self.max_interface_queue:
                self.max_interface_queue = len(pending)
            self._drain()
        self._next_arrival += self.interarrival
        # Straight to the event queue: the next arrival is always in the
        # future, so schedule_at's guards can never fire, and this runs
        # once per generated flit.
        self.sim.events.push(int(self._next_arrival), self._on_arrival)

    def _drain(self) -> None:
        """Push pending flits into the input VC until it refuses one."""
        while self._pending:
            if not self._policer_allows():
                self._schedule_retry()
                return
            if not self.router.inject(self.input_port, self.vc_index, self._pending[0]):
                self._schedule_retry()
                return
            self._token_held = False
            self._pending.popleft()
            self.flits_injected += 1

    def _schedule_retry(self) -> None:
        if not self._retry_scheduled:
            self._retry_scheduled = True
            self.sim.schedule(1, self._retry)

    def _retry(self) -> None:
        self._retry_scheduled = False
        self._drain()
        if self._pending:
            self._schedule_retry()

    @property
    def backlog(self) -> int:
        """Flits held at the interface by back-pressure right now."""
        return len(self._pending)
