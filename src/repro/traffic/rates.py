"""Connection-rate sets (paper §5).

The evaluation draws connection bandwidths uniformly from a set spanning
voice (64 Kbps) to high-definition video (120 Mbps).  The OCR of the paper
drops trailing zeros; the set below restores the standard telecom rates
(T1 = 1.544 Mbps nominal, written 1.54 in the paper) — see DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Tuple

KBPS = 1e3
MBPS = 1e6

#: The paper's CBR connection-rate set, in bits per second.
PAPER_RATE_SET: Tuple[float, ...] = (
    64 * KBPS,  # voice
    128 * KBPS,  # ISDN / conferencing audio
    1.54 * MBPS,  # T1 / MPEG-1 video
    2 * MBPS,  # E1 / low-rate MPEG-2
    5 * MBPS,  # SDTV MPEG-2
    10 * MBPS,  # high-quality MPEG-2
    20 * MBPS,  # studio video
    55 * MBPS,  # HDTV contribution
    120 * MBPS,  # uncompressed-class / HDTV production
)

#: Human-readable names for reporting.
RATE_NAMES: Dict[float, str] = {
    64 * KBPS: "64 Kbps",
    128 * KBPS: "128 Kbps",
    1.54 * MBPS: "1.54 Mbps",
    2 * MBPS: "2 Mbps",
    5 * MBPS: "5 Mbps",
    10 * MBPS: "10 Mbps",
    20 * MBPS: "20 Mbps",
    55 * MBPS: "55 Mbps",
    120 * MBPS: "120 Mbps",
}


def rate_name(rate_bps: float) -> str:
    """Readable label for a rate (falls back to generic formatting)."""
    if rate_bps in RATE_NAMES:
        return RATE_NAMES[rate_bps]
    if rate_bps >= MBPS:
        return f"{rate_bps / MBPS:g} Mbps"
    return f"{rate_bps / KBPS:g} Kbps"
