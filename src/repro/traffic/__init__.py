"""Traffic generation: CBR, VBR (MPEG GOP), best-effort and control."""

from .best_effort import PacketSource, make_control_word
from .cbr import CbrSource
from .load import ConnectionPlan, ConnectionSpec, LoadPlanner, offered_load_of
from .traces import FrameRecord, FrameTrace, TraceVbrSource
from .rates import KBPS, MBPS, PAPER_RATE_SET, RATE_NAMES, rate_name
from .vbr import DEFAULT_FRAME_RATIOS, DEFAULT_GOP, MpegProfile, VbrSource

__all__ = [
    "PacketSource",
    "make_control_word",
    "CbrSource",
    "ConnectionPlan",
    "ConnectionSpec",
    "LoadPlanner",
    "offered_load_of",
    "KBPS",
    "MBPS",
    "PAPER_RATE_SET",
    "RATE_NAMES",
    "rate_name",
    "FrameRecord",
    "FrameTrace",
    "TraceVbrSource",
    "DEFAULT_FRAME_RATIOS",
    "DEFAULT_GOP",
    "MpegProfile",
    "VbrSource",
]
