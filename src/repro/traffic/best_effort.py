"""Best-effort and control packet sources (paper §2, §3.4).

Best-effort packets use virtual cut-through switching: each packet grabs a
free virtual channel, is scheduled below all data streams, and releases
its VC when fully transmitted.  Control packets follow the same VCT path
but above data-stream priority, and cut through asynchronously when their
output link is idle.  Packet size equals flit size (§3.4), so every packet
is a single tail flit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

from ..core.config import RouterConfig
from ..core.flit import ControlCommand, Flit, FlitType
from ..core.router import Router
from ..core.virtual_channel import ServiceClass
from ..sim.engine import Simulator
from ..sim.rng import SeededRng


class PacketSource:
    """Poisson packet arrivals from one input port to random outputs.

    Used for best-effort traffic (``ServiceClass.BEST_EFFORT``) and, with
    a different class and flit type, for short control messages.  Packets
    that find no free VC wait in the interface queue — the paper's "the
    packet is blocked and stored in the corresponding buffer" behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        connection_id: int,
        input_port: int,
        mean_interarrival_cycles: float,
        rng: SeededRng,
        config: RouterConfig,
        service_class: ServiceClass = ServiceClass.BEST_EFFORT,
        output_ports: Optional[Sequence[int]] = None,
        stop_time: Optional[int] = None,
    ) -> None:
        if mean_interarrival_cycles <= 0:
            raise ValueError(
                "mean_interarrival_cycles must be positive, got "
                f"{mean_interarrival_cycles}"
            )
        if service_class not in (ServiceClass.BEST_EFFORT, ServiceClass.CONTROL):
            raise ValueError(f"PacketSource is for packet classes, got {service_class}")
        self.sim = sim
        self.router = router
        self.connection_id = connection_id
        self.input_port = input_port
        self.mean_interarrival = mean_interarrival_cycles
        self.rng = rng
        self.config = config
        self.service_class = service_class
        self.output_ports = (
            tuple(output_ports)
            if output_ports is not None
            else tuple(range(config.num_ports))
        )
        self.stop_time = stop_time
        self.flit_type = (
            FlitType.BEST_EFFORT
            if service_class is ServiceClass.BEST_EFFORT
            else FlitType.CONTROL
        )
        self.sequence = 0
        self.packets_generated = 0
        self.packets_injected = 0
        self._pending: Deque[Tuple[Flit, int]] = deque()
        self._retry_scheduled = False
        self.max_interface_queue = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self.sim.schedule(
            max(1, round(self.rng.expovariate(1.0 / self.mean_interarrival))),
            self._on_arrival,
        )

    def _on_arrival(self) -> None:
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        output_port = self.rng.choice(self.output_ports)
        flit = Flit(
            self.flit_type,
            connection_id=self.connection_id,
            created=self.sim.now,
            sequence=self.sequence,
            is_tail=True,
        )
        self.sequence += 1
        self.packets_generated += 1
        self._pending.append((flit, output_port))
        if len(self._pending) > self.max_interface_queue:
            self.max_interface_queue = len(self._pending)
        self._drain()
        self.sim.schedule(
            max(1, round(self.rng.expovariate(1.0 / self.mean_interarrival))),
            self._on_arrival,
        )

    def _drain(self) -> None:
        while self._pending:
            flit, output_port = self._pending[0]
            vc_index = self.router.open_packet_vc(
                self.input_port, output_port, self.service_class, self.connection_id
            )
            if vc_index is None:
                self._schedule_retry()
                return
            accepted = self.router.inject(self.input_port, vc_index, flit)
            if not accepted:
                raise RuntimeError(
                    "freshly opened packet VC refused its first flit"
                )
            self._pending.popleft()
            self.packets_injected += 1

    def _schedule_retry(self) -> None:
        if not self._retry_scheduled:
            self._retry_scheduled = True
            self.sim.schedule(1, self._retry)

    def _retry(self) -> None:
        self._retry_scheduled = False
        self._drain()
        if self._pending:
            self._schedule_retry()

    @property
    def backlog(self) -> int:
        """Packets blocked at the interface right now."""
        return len(self._pending)


def make_control_word(
    connection_id: int,
    command: ControlCommand,
    argument: int,
    now: int,
    sequence: int = 0,
) -> Flit:
    """Build a control-word flit for dynamic bandwidth management (§4.3)."""
    return Flit(
        FlitType.CONTROL,
        connection_id=connection_id,
        created=now,
        command=command,
        argument=argument,
        sequence=sequence,
        is_tail=True,
    )
