"""Variable-bit-rate traffic: a synthetic MPEG GOP model (paper §2, §4).

The paper motivates VBR support with compressed video, whose bandwidth
varies frame to frame; the follow-up MMR papers evaluate with MPEG-2
traces.  Lacking the authors' traces, this module generates a synthetic
MPEG stream: a repeating group of pictures (GOP) of I, P and B frames with
characteristic size ratios and lognormal-like per-frame variation, emitted
at the video frame rate.  Frames are fragmented into flits and injected as
a burst at each frame boundary, which exercises exactly the VBR admission
(permanent/peak registers) and link-scheduling (permanent-then-excess)
code paths.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from ..core.config import RouterConfig
from ..core.flit import Flit, FlitType
from ..core.router import Router
from ..sim.engine import Simulator
from ..sim.rng import SeededRng

#: A common MPEG GOP structure (N=12, M=3): I B B P B B P B B P B B.
DEFAULT_GOP: Tuple[str, ...] = (
    "I", "B", "B", "P", "B", "B", "P", "B", "B", "P", "B", "B",
)

#: Relative mean frame sizes (I largest, B smallest).
DEFAULT_FRAME_RATIOS = {"I": 5.0, "P": 2.5, "B": 1.0}


@dataclass(frozen=True)
class MpegProfile:
    """Statistical description of one synthetic MPEG stream."""

    mean_rate_bps: float
    frame_rate_hz: float = 30.0
    gop: Tuple[str, ...] = DEFAULT_GOP
    frame_ratios: dict = field(default_factory=lambda: dict(DEFAULT_FRAME_RATIOS))
    # Multiplicative per-frame noise: frame size *= exp(N(0, sigma)).
    sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.mean_rate_bps <= 0:
            raise ValueError(f"mean_rate_bps must be positive, got {self.mean_rate_bps}")
        if self.frame_rate_hz <= 0:
            raise ValueError(f"frame_rate_hz must be positive, got {self.frame_rate_hz}")
        if not self.gop:
            raise ValueError("gop must not be empty")
        for kind in self.gop:
            if kind not in self.frame_ratios:
                raise ValueError(f"frame kind {kind!r} missing from frame_ratios")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    @property
    def mean_frame_bits(self) -> float:
        """Average frame size implied by rate and frame rate."""
        return self.mean_rate_bps / self.frame_rate_hz

    def frame_bits(self, kind: str) -> float:
        """Mean size of a ``kind`` frame, honouring the GOP ratios."""
        ratio_sum = sum(self.frame_ratios[k] for k in self.gop)
        scale = self.mean_frame_bits * len(self.gop) / ratio_sum
        return self.frame_ratios[kind] * scale

    def peak_rate_bps(self, quantile_sigma: float = 2.0) -> float:
        """Estimated peak rate: largest frame kind at +``quantile_sigma``.

        This is what a probe carries as the connection's peak bandwidth
        (the paper allows estimates).
        """
        largest = max(self.frame_bits(k) for k in self.frame_ratios)
        burst = largest * math.exp(quantile_sigma * self.sigma)
        return burst * self.frame_rate_hz


class VbrSource:
    """Injects a synthetic MPEG stream over an established VBR connection.

    Each frame period the source fragments the frame into flits and queues
    them at the interface; flits drain into the input VC as fast as flow
    control allows, so large frames naturally spread over many cycles and
    contend for the VBR excess bandwidth tier.
    """

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        connection_id: int,
        input_port: int,
        vc_index: int,
        profile: MpegProfile,
        config: RouterConfig,
        rng: SeededRng,
        phase: float = 0.0,
        stop_time: Optional[int] = None,
        policer=None,
    ) -> None:
        """``policer`` (a :class:`~repro.network.policing.TokenBucket`)
        gates injection when set — see :class:`~repro.traffic.cbr.CbrSource`.
        A VBR policer should be provisioned near the peak rate (with burst
        headroom for a frame), or it will shape frame bursts flat."""
        self.sim = sim
        self.router = router
        self.connection_id = connection_id
        self.input_port = input_port
        self.vc_index = vc_index
        self.profile = profile
        self.config = config
        self.rng = rng
        self.stop_time = stop_time
        # Frame period in flit cycles.
        self.frame_period = 1.0 / profile.frame_rate_hz / config.flit_cycle_seconds
        self._next_frame_time = phase
        self._frame_index = 0
        self.sequence = 0
        self.flits_generated = 0
        self.flits_injected = 0
        self.frames_generated = 0
        self.frames_aborted = 0
        self._pending: Deque[Flit] = deque()
        self._retry_scheduled = False
        self.max_interface_queue = 0
        self.policer = policer
        self._token_held = False
        # When True, the current frame's remaining flits are dropped (the
        # §4.3 frame-abort mechanism driven by back-pressure).
        self.abort_backlog_frames: Optional[float] = None

    def _policer_allows(self) -> bool:
        if self.policer is None or self._token_held:
            return True
        if self.policer.allow(self.sim.now):
            self._token_held = True
            return True
        return False

    def start(self) -> None:
        """Schedule the first frame, ``phase`` cycles from now."""
        self._next_frame_time += self.sim.now
        self.sim.schedule_at(int(self._next_frame_time), self._on_frame)

    # ----- frame generation ---------------------------------------------------

    def _frame_flit_count(self, kind: str) -> int:
        bits = self.profile.frame_bits(kind)
        if self.profile.sigma > 0:
            bits *= math.exp(self.rng.gauss(0.0, self.profile.sigma))
        return max(1, round(bits / self.config.flit_size_bits))

    def _on_frame(self) -> None:
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        kind = self.profile.gop[self._frame_index % len(self.profile.gop)]
        self._frame_index += 1
        self.frames_generated += 1
        count = self._frame_flit_count(kind)
        if self._should_abort_frame(count):
            self.frames_aborted += 1
        else:
            for i in range(count):
                flit = Flit(
                    FlitType.DATA,
                    connection_id=self.connection_id,
                    created=self.sim.now,
                    sequence=self.sequence,
                    is_tail=(i == count - 1),
                )
                self.sequence += 1
                self.flits_generated += 1
                self._pending.append(flit)
            if len(self._pending) > self.max_interface_queue:
                self.max_interface_queue = len(self._pending)
            self._drain()
        self._next_frame_time += self.frame_period
        self.sim.schedule_at(int(self._next_frame_time), self._on_frame)

    def _should_abort_frame(self, incoming_flits: int) -> bool:
        """§4.3: a source may abort a frame that is making no progress.

        When back-pressure has left more than ``abort_backlog_frames``
        frames' worth of flits at the interface, transmitting another frame
        only wastes bandwidth on data that will miss its deadline.
        """
        if self.abort_backlog_frames is None:
            return False
        threshold = self.abort_backlog_frames * max(incoming_flits, 1)
        return len(self._pending) > threshold

    # ----- injection -------------------------------------------------------------

    def _drain(self) -> None:
        while self._pending:
            if not self._policer_allows():
                self._schedule_retry()
                return
            if not self.router.inject(self.input_port, self.vc_index, self._pending[0]):
                self._schedule_retry()
                return
            self._token_held = False
            self._pending.popleft()
            self.flits_injected += 1

    def _schedule_retry(self) -> None:
        if not self._retry_scheduled:
            self._retry_scheduled = True
            self.sim.schedule(1, self._retry)

    def _retry(self) -> None:
        self._retry_scheduled = False
        self._drain()
        if self._pending:
            self._schedule_retry()

    @property
    def backlog(self) -> int:
        """Flits held at the interface by back-pressure right now."""
        return len(self._pending)
