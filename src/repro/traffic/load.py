"""Connection-set generation at a target offered load (paper §5).

"Connections were randomly selected from the set (...) and assigned to
random input and output ports on the router.  The offered load is computed
as the percentage of switch bandwidth demanded by all connections through
the router."

The planner does its feasibility bookkeeping in the same units as the
router's admission registers — integer flit cycles per round — so a
planned connection is never refused by admission.  Random port pairs are
tried first (the paper's random assignment); when they are full the
planner falls back to the least-loaded feasible pair so that 95% aggregate
load remains reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.config import RouterConfig
from ..sim.rng import SeededRng
from .rates import PAPER_RATE_SET


@dataclass(frozen=True)
class ConnectionSpec:
    """One planned CBR connection, before admission."""

    connection_id: int
    input_port: int
    output_port: int
    rate_bps: float


@dataclass
class ConnectionPlan:
    """A generated connection set and its achieved offered load."""

    specs: List[ConnectionSpec] = field(default_factory=list)
    offered_load: float = 0.0


def offered_load_of(specs: Sequence[ConnectionSpec], config: RouterConfig) -> float:
    """Fraction of aggregate switch bandwidth the specs demand."""
    demand = sum(spec.rate_bps for spec in specs)
    return demand / config.aggregate_bandwidth_bps


class LoadPlanner:
    """Draws random connections until a target offered load is reached."""

    def __init__(
        self,
        config: RouterConfig,
        rng: SeededRng,
        rate_set: Sequence[float] = PAPER_RATE_SET,
    ) -> None:
        if not rate_set:
            raise ValueError("rate_set must not be empty")
        self.config = config
        self.rng = rng
        self.rate_set = tuple(sorted(rate_set))

    def plan(self, target_load: float, max_attempts: int = 100000) -> ConnectionPlan:
        """Generate connections demanding ~``target_load`` of the switch.

        Stops when within half of the smallest rate of the target, when no
        remaining rate fits anywhere, or after ``max_attempts`` draws.
        """
        if not 0.0 < target_load <= 1.0:
            raise ValueError(f"target_load must be in (0, 1], got {target_load}")
        config = self.config
        ports = config.num_ports
        cap_cycles = config.round_length
        in_used = [0] * ports
        out_used = [0] * ports
        plan = ConnectionPlan()
        target_demand = target_load * config.aggregate_bandwidth_bps
        demand = 0.0
        next_id = 0
        attempts = 0
        smallest = self.rate_set[0]
        while demand + smallest / 2 < target_demand and attempts < max_attempts:
            attempts += 1
            budget = target_demand - demand
            feasible_rates = [rate for rate in self.rate_set if rate <= budget]
            if not feasible_rates:
                break
            rate = self.rng.choice(feasible_rates)
            cycles = config.rate_to_cycles_per_round(rate)
            placement = self._place(cycles, in_used, out_used, cap_cycles)
            if placement is None:
                if not any(
                    self._fits_anywhere(
                        config.rate_to_cycles_per_round(r), in_used, out_used, cap_cycles
                    )
                    for r in feasible_rates
                ):
                    break
                continue
            input_port, output_port = placement
            in_used[input_port] += cycles
            out_used[output_port] += cycles
            demand += rate
            plan.specs.append(ConnectionSpec(next_id, input_port, output_port, rate))
            next_id += 1
        plan.offered_load = demand / config.aggregate_bandwidth_bps
        return plan

    @staticmethod
    def _fits_anywhere(
        cycles: int, in_used: List[int], out_used: List[int], cap: int
    ) -> bool:
        return min(in_used) + cycles <= cap and min(out_used) + cycles <= cap

    def _place(
        self,
        cycles: int,
        in_used: List[int],
        out_used: List[int],
        cap: int,
        random_tries: int = 8,
    ) -> Optional[Tuple[int, int]]:
        """Pick (input, output) ports with ``cycles`` flit cycles of room."""
        ports = self.config.num_ports
        for _ in range(random_tries):
            input_port = self.rng.randint(0, ports - 1)
            output_port = self.rng.randint(0, ports - 1)
            if (
                in_used[input_port] + cycles <= cap
                and out_used[output_port] + cycles <= cap
            ):
                return input_port, output_port
        feasible_in = [p for p in range(ports) if in_used[p] + cycles <= cap]
        feasible_out = [p for p in range(ports) if out_used[p] + cycles <= cap]
        if not feasible_in or not feasible_out:
            return None
        input_port = min(feasible_in, key=lambda p: in_used[p])
        output_port = min(feasible_out, key=lambda p: out_used[p])
        return input_port, output_port
