"""Checkpoint identity oracles for the perf gate.

Same discipline as the kernel and scheduler identity checks: run a gated
scenario straight through, run it again with a checkpoint-at-midpoint /
restore / resume in the middle, and require the delivered-flit streams
and statistics to be *equal*, not approximately equal.  A checkpoint
subsystem that loses so much as one RNG draw or event-queue tiebreak
shows up here as a stream mismatch.

Both oracles restore from the file, never from the live object: what is
verified is the full save → bytes-on-disk → load → resume path.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional

from ..harness.kernel_bench import DeliveryRecord, build_saturated_scenario
from ..harness.network_experiment import (
    NetworkExperiment,
    NetworkExperimentSpec,
    NetworkExperimentResult,
)
from .codec import CheckpointCodec


def run_ckpt_router_identity_check(
    cycles: int,
    target_load: float = 0.9,
    seed: int = 7,
    checkpoint_dir: Optional[str] = None,
) -> dict:
    """Saturated 90%-load single router: straight vs checkpoint-resume.

    The scenario is the scheduler gate's 729-connection workload.  The
    checkpointed run snapshots at ``cycles // 2`` through the codec,
    discards the originals, reloads from disk, and finishes; delivered
    flit streams (connection, sequence, created, departed per flit) and
    the stats registry must match the straight run exactly.
    """
    straight_delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(
        True, target_load, seed, delivered=straight_delivered
    )
    connections = len(router.connection_stats)
    sim.run(cycles)
    router.check_invariants()
    straight_stats = dict(router.stats.scalars)

    midpoint = cycles // 2
    delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(True, target_load, seed, delivered=delivered)
    sim.run(midpoint)
    with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
        path = os.path.join(tmp, "router.ckpt")
        header = CheckpointCodec.save(
            path,
            {"sim": sim, "router": router, "delivered": delivered},
            kind="simulator",
            cycle=sim.now,
            seed=seed,
            config=router.config,
        )
        del sim, router, delivered  # resume must come from the file alone
        _, components = CheckpointCodec.load(path, expect_kind="simulator")
        checkpoint_bytes = header.payload_bytes
    sim = components["sim"]
    router = components["router"]
    delivered = components["delivered"]
    sim.run(cycles - midpoint)
    router.check_invariants()
    resumed_stats = dict(router.stats.scalars)

    flits_identical = straight_delivered == delivered
    stats_identical = straight_stats == resumed_stats
    return {
        "identical": flits_identical and stats_identical,
        "flits_identical": flits_identical,
        "stats_identical": stats_identical,
        "flits_delivered": len(straight_delivered),
        "connections": connections,
        "cycles": cycles,
        "checkpoint_cycle": midpoint,
        "checkpoint_bytes": checkpoint_bytes,
        "target_load": target_load,
    }


def run_ckpt_columnar_identity_check(
    cycles: int,
    target_load: float = 0.9,
    seed: int = 7,
    checkpoint_dir: Optional[str] = None,
) -> dict:
    """Columnar engine through a checkpoint, including mid-run flag flips.

    Four runs of the saturated single-router scenario, all required to
    deliver the same flit stream and statistics as the straight scalar
    fast-path run:

    ``columnar_straight``
        ``columnar_state=True`` end to end (the plain engine-identity
        leg, here to localise failures to the checkpoint).
    ``columnar_resumed``
        Columnar run checkpointed at the midpoint, reloaded from disk,
        resumed columnar.  Arrays are never pickled — the codec stores
        only object state and the bank is rebuilt on first use — so this
        proves the object graph stayed authoritative.
    ``flip_off`` / ``flip_on``
        The same checkpoint resumed with the flag flipped to the scalar
        engine, and a scalar-run checkpoint resumed with the flag
        flipped to columnar.  Both directions must splice bit-exactly.
    """
    straight_delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(
        True, target_load, seed, delivered=straight_delivered
    )
    connections = len(router.connection_stats)
    sim.run(cycles)
    router.check_invariants()
    straight_stats = dict(router.stats.scalars)
    reference = (straight_delivered, straight_stats)

    def _finish(components, flip: Optional[bool]):
        sim, router = components["sim"], components["router"]
        delivered = components["delivered"]
        if flip is not None:
            router.set_columnar_state(flip)
        sim.run(cycles - cycles // 2)
        router.check_invariants()
        return delivered, dict(router.stats.scalars)

    def _checkpointed(columnar: bool, flip: Optional[bool]):
        delivered: List[DeliveryRecord] = []
        sim, router = build_saturated_scenario(
            True, target_load, seed,
            delivered=delivered, columnar_state=columnar,
        )
        sim.run(cycles // 2)
        with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
            path = os.path.join(tmp, "columnar.ckpt")
            CheckpointCodec.save(
                path,
                {"sim": sim, "router": router, "delivered": delivered},
                kind="simulator",
                cycle=sim.now,
                seed=seed,
                config=router.config,
            )
            del sim, router, delivered
            _, components = CheckpointCodec.load(path, expect_kind="simulator")
        return _finish(components, flip)

    legs = {}
    columnar_delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(
        True, target_load, seed,
        delivered=columnar_delivered, columnar_state=True,
    )
    sim.run(cycles)
    router.check_invariants()
    legs["columnar_straight"] = (columnar_delivered, dict(router.stats.scalars))
    legs["columnar_resumed"] = _checkpointed(columnar=True, flip=None)
    legs["flip_off"] = _checkpointed(columnar=True, flip=False)
    legs["flip_on"] = _checkpointed(columnar=False, flip=True)

    comparisons = {name: leg == reference for name, leg in legs.items()}
    return {
        "identical": all(comparisons.values()),
        **{f"{name}_identical": ok for name, ok in comparisons.items()},
        "flits_delivered": len(straight_delivered),
        "connections": connections,
        "cycles": cycles,
        "checkpoint_cycle": cycles // 2,
        "target_load": target_load,
    }


def _network_summary(result: NetworkExperimentResult) -> dict:
    """The comparable fingerprint of a network run (mirrors perf_gate)."""
    return {
        "streams": result.streams,
        "attempts": result.attempts,
        "mean_hops": result.mean_hops,
        "delay_mean": result.delay_cycles.mean,
        "delay_count": result.delay_cycles.count,
        "jitter_mean": result.jitter_cycles.mean,
        "by_hops": result.by_hops,
        "best_effort_delivered": result.best_effort_delivered,
    }


def run_ckpt_network_identity_check(
    warmup: int = 2000,
    measure: int = 8000,
    num_nodes: int = 12,
    seed: int = 11,
    checkpoint_dir: Optional[str] = None,
) -> dict:
    """12-node multihop network: straight vs checkpoint-resume.

    The midpoint lands inside the measurement window with best-effort
    chatter events in flight, so the checkpoint must carry multi-router
    link state, per-interface end-to-end statistics, and the pending
    event queue to reproduce the straight run's summary exactly.
    """
    spec = NetworkExperimentSpec(
        target_link_load=0.3,
        num_nodes=num_nodes,
        best_effort_rate=0.5,
        warmup_cycles=warmup,
        measure_cycles=measure,
        seed=seed,
    )
    straight = _network_summary(run_network_experiment_straight(spec))

    experiment = NetworkExperiment(spec)
    midpoint = (experiment.total_cycles + experiment.now) // 2
    experiment.run_to(midpoint)
    with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
        path = os.path.join(tmp, "network.ckpt")
        header = experiment.checkpoint(path)
        del experiment
        resumed_experiment = NetworkExperiment.resume(path, expect_spec=spec)
        checkpoint_bytes = header.payload_bytes
    resumed_from = resumed_experiment.now
    resumed = _network_summary(resumed_experiment.result())

    identical = straight == resumed
    return {
        "identical": identical,
        "num_nodes": num_nodes,
        "warmup_cycles": warmup,
        "measure_cycles": measure,
        "checkpoint_cycle": resumed_from,
        "checkpoint_bytes": checkpoint_bytes,
        "streams": straight["streams"],
        "delay_count": straight["delay_count"],
        "straight": straight,
        "resumed": resumed,
    }


def run_network_experiment_straight(
    spec: NetworkExperimentSpec,
) -> NetworkExperimentResult:
    """One uninterrupted reference run (kept separate for clarity)."""
    experiment = NetworkExperiment(spec)
    return experiment.result()


def run_ckpt_arena_identity_check(
    warmup: int = 1000,
    measure: int = 4000,
    topology: str = "mesh8x8",
    routing: str = "dimension_order",
    seed: int = 11,
    checkpoint_dir: Optional[str] = None,
) -> dict:
    """Network arena through a checkpoint, including mid-run flag flips.

    Same four-leg pattern as the columnar check, at the network level.
    The reference is the event-driven (arena-off) straight run; all four
    arena legs must reproduce its summary exactly:

    ``arena_straight``
        ``network_arena=True`` end to end.
    ``arena_resumed``
        Arena run checkpointed at the midpoint (with link rings holding
        in-flight flits), reloaded from disk, resumed with the arena on.
        NumPy chunks are never pickled — the pool reallocates lazily at
        its persisted layout — so this proves the rings plus object
        graph carry the complete link plane.
    ``flip_off`` / ``flip_on``
        The arena checkpoint resumed with the arena disabled (rings
        migrate back to heap events), and an event-driven checkpoint
        resumed with the arena enabled mid-run.  Both splices must be
        bit-exact.
    """
    def make_spec(arena: bool) -> NetworkExperimentSpec:
        return NetworkExperimentSpec(
            target_link_load=0.3,
            best_effort_rate=0.5,
            warmup_cycles=warmup,
            measure_cycles=measure,
            seed=seed,
            topology=topology,
            routing=routing,
            network_arena=arena,
        )

    reference = _network_summary(run_network_experiment_straight(make_spec(False)))

    def _checkpointed(arena: bool, flip: Optional[bool]) -> dict:
        spec = make_spec(arena)
        experiment = NetworkExperiment(spec)
        experiment.run_to((experiment.total_cycles + experiment.now) // 2)
        with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
            path = os.path.join(tmp, "arena.ckpt")
            experiment.checkpoint(path)
            del experiment
            resumed = NetworkExperiment.resume(path, expect_spec=spec)
        if flip is not None:
            resumed.network.set_network_arena(flip)
        return _network_summary(resumed.result())

    legs = {
        "arena_straight": _network_summary(
            run_network_experiment_straight(make_spec(True))
        ),
        "arena_resumed": _checkpointed(arena=True, flip=None),
        "flip_off": _checkpointed(arena=True, flip=False),
        "flip_on": _checkpointed(arena=False, flip=True),
    }
    comparisons = {name: leg == reference for name, leg in legs.items()}
    return {
        "identical": all(comparisons.values()),
        **{f"{name}_identical": ok for name, ok in comparisons.items()},
        "topology": topology,
        "routing": routing,
        "warmup_cycles": warmup,
        "measure_cycles": measure,
        "streams": reference["streams"],
        "delay_count": reference["delay_count"],
    }
