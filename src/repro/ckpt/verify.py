"""Checkpoint identity oracles for the perf gate.

Same discipline as the kernel and scheduler identity checks: run a gated
scenario straight through, run it again with a checkpoint-at-midpoint /
restore / resume in the middle, and require the delivered-flit streams
and statistics to be *equal*, not approximately equal.  A checkpoint
subsystem that loses so much as one RNG draw or event-queue tiebreak
shows up here as a stream mismatch.

Both oracles restore from the file, never from the live object: what is
verified is the full save → bytes-on-disk → load → resume path.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional

from ..harness.kernel_bench import DeliveryRecord, build_saturated_scenario
from ..harness.network_experiment import (
    NetworkExperiment,
    NetworkExperimentSpec,
    NetworkExperimentResult,
)
from .codec import CheckpointCodec


def run_ckpt_router_identity_check(
    cycles: int,
    target_load: float = 0.9,
    seed: int = 7,
    checkpoint_dir: Optional[str] = None,
) -> dict:
    """Saturated 90%-load single router: straight vs checkpoint-resume.

    The scenario is the scheduler gate's 729-connection workload.  The
    checkpointed run snapshots at ``cycles // 2`` through the codec,
    discards the originals, reloads from disk, and finishes; delivered
    flit streams (connection, sequence, created, departed per flit) and
    the stats registry must match the straight run exactly.
    """
    straight_delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(
        True, target_load, seed, delivered=straight_delivered
    )
    connections = len(router.connection_stats)
    sim.run(cycles)
    router.check_invariants()
    straight_stats = dict(router.stats.scalars)

    midpoint = cycles // 2
    delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(True, target_load, seed, delivered=delivered)
    sim.run(midpoint)
    with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
        path = os.path.join(tmp, "router.ckpt")
        header = CheckpointCodec.save(
            path,
            {"sim": sim, "router": router, "delivered": delivered},
            kind="simulator",
            cycle=sim.now,
            seed=seed,
            config=router.config,
        )
        del sim, router, delivered  # resume must come from the file alone
        _, components = CheckpointCodec.load(path, expect_kind="simulator")
        checkpoint_bytes = header.payload_bytes
    sim = components["sim"]
    router = components["router"]
    delivered = components["delivered"]
    sim.run(cycles - midpoint)
    router.check_invariants()
    resumed_stats = dict(router.stats.scalars)

    flits_identical = straight_delivered == delivered
    stats_identical = straight_stats == resumed_stats
    return {
        "identical": flits_identical and stats_identical,
        "flits_identical": flits_identical,
        "stats_identical": stats_identical,
        "flits_delivered": len(straight_delivered),
        "connections": connections,
        "cycles": cycles,
        "checkpoint_cycle": midpoint,
        "checkpoint_bytes": checkpoint_bytes,
        "target_load": target_load,
    }


def run_ckpt_columnar_identity_check(
    cycles: int,
    target_load: float = 0.9,
    seed: int = 7,
    checkpoint_dir: Optional[str] = None,
) -> dict:
    """Columnar engine through a checkpoint, including mid-run flag flips.

    Four runs of the saturated single-router scenario, all required to
    deliver the same flit stream and statistics as the straight scalar
    fast-path run:

    ``columnar_straight``
        ``columnar_state=True`` end to end (the plain engine-identity
        leg, here to localise failures to the checkpoint).
    ``columnar_resumed``
        Columnar run checkpointed at the midpoint, reloaded from disk,
        resumed columnar.  Arrays are never pickled — the codec stores
        only object state and the bank is rebuilt on first use — so this
        proves the object graph stayed authoritative.
    ``flip_off`` / ``flip_on``
        The same checkpoint resumed with the flag flipped to the scalar
        engine, and a scalar-run checkpoint resumed with the flag
        flipped to columnar.  Both directions must splice bit-exactly.
    """
    straight_delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(
        True, target_load, seed, delivered=straight_delivered
    )
    connections = len(router.connection_stats)
    sim.run(cycles)
    router.check_invariants()
    straight_stats = dict(router.stats.scalars)
    reference = (straight_delivered, straight_stats)

    def _finish(components, flip: Optional[bool]):
        sim, router = components["sim"], components["router"]
        delivered = components["delivered"]
        if flip is not None:
            router.set_columnar_state(flip)
        sim.run(cycles - cycles // 2)
        router.check_invariants()
        return delivered, dict(router.stats.scalars)

    def _checkpointed(columnar: bool, flip: Optional[bool]):
        delivered: List[DeliveryRecord] = []
        sim, router = build_saturated_scenario(
            True, target_load, seed,
            delivered=delivered, columnar_state=columnar,
        )
        sim.run(cycles // 2)
        with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
            path = os.path.join(tmp, "columnar.ckpt")
            CheckpointCodec.save(
                path,
                {"sim": sim, "router": router, "delivered": delivered},
                kind="simulator",
                cycle=sim.now,
                seed=seed,
                config=router.config,
            )
            del sim, router, delivered
            _, components = CheckpointCodec.load(path, expect_kind="simulator")
        return _finish(components, flip)

    legs = {}
    columnar_delivered: List[DeliveryRecord] = []
    sim, router = build_saturated_scenario(
        True, target_load, seed,
        delivered=columnar_delivered, columnar_state=True,
    )
    sim.run(cycles)
    router.check_invariants()
    legs["columnar_straight"] = (columnar_delivered, dict(router.stats.scalars))
    legs["columnar_resumed"] = _checkpointed(columnar=True, flip=None)
    legs["flip_off"] = _checkpointed(columnar=True, flip=False)
    legs["flip_on"] = _checkpointed(columnar=False, flip=True)

    comparisons = {name: leg == reference for name, leg in legs.items()}
    return {
        "identical": all(comparisons.values()),
        **{f"{name}_identical": ok for name, ok in comparisons.items()},
        "flits_delivered": len(straight_delivered),
        "connections": connections,
        "cycles": cycles,
        "checkpoint_cycle": cycles // 2,
        "target_load": target_load,
    }


def _network_summary(result: NetworkExperimentResult) -> dict:
    """The comparable fingerprint of a network run (mirrors perf_gate)."""
    return {
        "streams": result.streams,
        "attempts": result.attempts,
        "mean_hops": result.mean_hops,
        "delay_mean": result.delay_cycles.mean,
        "delay_count": result.delay_cycles.count,
        "jitter_mean": result.jitter_cycles.mean,
        "by_hops": result.by_hops,
        "best_effort_delivered": result.best_effort_delivered,
    }


def run_ckpt_network_identity_check(
    warmup: int = 2000,
    measure: int = 8000,
    num_nodes: int = 12,
    seed: int = 11,
    checkpoint_dir: Optional[str] = None,
) -> dict:
    """12-node multihop network: straight vs checkpoint-resume.

    The midpoint lands inside the measurement window with best-effort
    chatter events in flight, so the checkpoint must carry multi-router
    link state, per-interface end-to-end statistics, and the pending
    event queue to reproduce the straight run's summary exactly.
    """
    spec = NetworkExperimentSpec(
        target_link_load=0.3,
        num_nodes=num_nodes,
        best_effort_rate=0.5,
        warmup_cycles=warmup,
        measure_cycles=measure,
        seed=seed,
    )
    straight = _network_summary(run_network_experiment_straight(spec))

    experiment = NetworkExperiment(spec)
    midpoint = (experiment.total_cycles + experiment.now) // 2
    experiment.run_to(midpoint)
    with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
        path = os.path.join(tmp, "network.ckpt")
        header = experiment.checkpoint(path)
        del experiment
        resumed_experiment = NetworkExperiment.resume(path, expect_spec=spec)
        checkpoint_bytes = header.payload_bytes
    resumed_from = resumed_experiment.now
    resumed = _network_summary(resumed_experiment.result())

    identical = straight == resumed
    return {
        "identical": identical,
        "num_nodes": num_nodes,
        "warmup_cycles": warmup,
        "measure_cycles": measure,
        "checkpoint_cycle": resumed_from,
        "checkpoint_bytes": checkpoint_bytes,
        "streams": straight["streams"],
        "delay_count": straight["delay_count"],
        "straight": straight,
        "resumed": resumed,
    }


def run_network_experiment_straight(
    spec: NetworkExperimentSpec,
) -> NetworkExperimentResult:
    """One uninterrupted reference run (kept separate for clarity)."""
    experiment = NetworkExperiment(spec)
    return experiment.result()
