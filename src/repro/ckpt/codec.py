"""Versioned on-disk checkpoint format (schema ``ckpt/1``).

A checkpoint file is::

    MMR-CKPT\\n            magic line
    {...}\\n               JSON header (one line)
    <pickle blob>          the component graph, one pickle

The header carries everything needed to *identify* a checkpoint without
unpickling it — schema version, producer kind, simulation cycle, seed,
config digest and git revision (reusing the :mod:`repro.obs.manifest`
provenance machinery), a payload checksum, and approximate per-component
sizes for ``repro ckpt inspect``.  ``read_header`` never touches the
pickle blob, so inspecting an untrusted or corrupt file is safe.

The payload is ONE pickle of a dict of named components.  A single pickle
is load-bearing: components share live references (the simulator's event
queue holds flits that also sit in VC buffers; routers share the network's
stats registry), and pickling them together preserves that sharing via the
pickle memo.  Restoring therefore rebuilds the exact object graph, which
is what makes resumed runs bit-identical to straight-through runs (the
perf gate proves this).

Loading verifies, in order: magic, header JSON, schema version, payload
checksum, then — when the caller says what it expects — producer kind and
config digest.  Each failure raises a typed error naming both the found
and the expected value.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from ..obs.manifest import build_manifest, config_digest

#: First line of every checkpoint file.
MAGIC = b"MMR-CKPT\n"

#: Current checkpoint schema.  Bump the number when the file layout or the
#: header's required fields change incompatibly.
CKPT_SCHEMA = "ckpt/1"


class CheckpointError(RuntimeError):
    """Base class for every checkpoint read/write failure."""


class CheckpointFormatError(CheckpointError):
    """The file is not a checkpoint, is truncated, or is corrupt."""


class CheckpointSchemaError(CheckpointError):
    """The checkpoint's schema version is not one this build can read."""

    def __init__(self, found: str, expected: str) -> None:
        super().__init__(
            f"unknown checkpoint schema {found!r}; this build reads "
            f"{expected!r} — the file was written by an incompatible version"
        )
        self.found = found
        self.expected = expected


class CheckpointMismatchError(CheckpointError):
    """The checkpoint was produced by a different configuration or kind."""

    def __init__(self, what: str, found: Any, expected: Any) -> None:
        super().__init__(
            f"checkpoint {what} mismatch: file has {found!r}, "
            f"caller expects {expected!r} — refusing to resume a different "
            "experiment"
        )
        self.what = what
        self.found = found
        self.expected = expected


@dataclass(frozen=True)
class CheckpointHeader:
    """The JSON header of one checkpoint file."""

    schema: str
    #: Producer tag (``"single_router"``, ``"network"``, ``"simulator"``).
    kind: str
    #: Simulation cycle at which the snapshot was taken.
    cycle: int
    #: Master seed of the checkpointed run (None when not applicable).
    seed: Optional[int]
    #: Digest of the producing configuration (``obs.manifest.config_digest``).
    config_digest: Optional[str]
    #: sha256 of the pickle payload, hex.
    payload_sha256: str
    payload_bytes: int
    #: Standalone-encoded size of each component, in bytes.  Approximate
    #: by construction: shared sub-objects count toward every component
    #: that references them, so the sizes need not sum to payload_bytes.
    sections: Dict[str, int] = field(default_factory=dict)
    #: Provenance (git revision, platform, timestamps — see build_manifest).
    manifest: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": self.schema,
                "kind": self.kind,
                "cycle": self.cycle,
                "seed": self.seed,
                "config_digest": self.config_digest,
                "payload_sha256": self.payload_sha256,
                "payload_bytes": self.payload_bytes,
                "sections": self.sections,
                "manifest": self.manifest,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "CheckpointHeader":
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointFormatError(
                f"checkpoint header is not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict) or "schema" not in record:
            raise CheckpointFormatError("checkpoint header lacks a schema tag")
        try:
            return cls(
                schema=record["schema"],
                kind=record.get("kind", "unknown"),
                cycle=int(record.get("cycle", -1)),
                seed=record.get("seed"),
                config_digest=record.get("config_digest"),
                payload_sha256=record.get("payload_sha256", ""),
                payload_bytes=int(record.get("payload_bytes", -1)),
                sections=dict(record.get("sections", {})),
                manifest=dict(record.get("manifest", {})),
            )
        except (TypeError, ValueError) as exc:
            raise CheckpointFormatError(
                f"checkpoint header is malformed: {exc}"
            ) from exc


class CheckpointCodec:
    """Reads and writes ``ckpt/1`` checkpoint files."""

    schema = CKPT_SCHEMA

    @staticmethod
    def save(
        path: "os.PathLike[str] | str",
        components: Mapping[str, Any],
        *,
        kind: str,
        cycle: int,
        seed: Optional[int] = None,
        config: Any = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> CheckpointHeader:
        """Write ``components`` (a dict of named objects) as one checkpoint.

        The write is atomic: the file is assembled beside ``path`` and
        moved into place, so a crash mid-write never leaves a truncated
        checkpoint where a resumable one used to be.  Returns the header
        that was written.
        """
        try:
            payload = pickle.dumps(dict(components), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                "checkpoint state is not picklable — a component holds a "
                f"closure, lambda, or open resource ({exc})"
            ) from exc
        sections: Dict[str, int] = {}
        for name, component in components.items():
            try:
                sections[name] = len(
                    pickle.dumps(component, protocol=pickle.HIGHEST_PROTOCOL)
                )
            except Exception:  # pragma: no cover - the joint dump succeeded
                sections[name] = -1
        header = CheckpointHeader(
            schema=CheckpointCodec.schema,
            kind=kind,
            cycle=cycle,
            seed=seed,
            config_digest=config_digest(config) if config is not None else None,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            payload_bytes=len(payload),
            sections=sections,
            manifest=build_manifest(
                seed=seed, command=f"ckpt.save[{kind}]", extra=extra
            ),
        )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(header.to_json().encode("utf-8"))
            handle.write(b"\n")
            handle.write(payload)
        os.replace(tmp, path)
        return header

    @staticmethod
    def read_header(path: "os.PathLike[str] | str") -> CheckpointHeader:
        """Parse a checkpoint's header without unpickling its payload.

        Safe on files of unknown provenance — nothing in the payload is
        executed or even read past the header line.
        """
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise CheckpointFormatError(
                    f"{path}: not a checkpoint file (bad magic {magic!r})"
                )
            line = handle.readline()
        if not line.endswith(b"\n"):
            raise CheckpointFormatError(f"{path}: truncated checkpoint header")
        header = CheckpointHeader.from_json(line.decode("utf-8"))
        if header.schema != CheckpointCodec.schema:
            raise CheckpointSchemaError(header.schema, CheckpointCodec.schema)
        return header

    @staticmethod
    def load(
        path: "os.PathLike[str] | str",
        *,
        expect_kind: Optional[str] = None,
        expect_config: Any = None,
    ) -> Tuple[CheckpointHeader, Dict[str, Any]]:
        """Verify and unpickle a checkpoint; returns (header, components).

        ``expect_config`` may be a configuration object (digested with
        :func:`~repro.obs.manifest.config_digest`) or an already-computed
        digest string; a mismatch refuses the load naming both digests.
        """
        header = CheckpointCodec.read_header(path)
        if expect_kind is not None and header.kind != expect_kind:
            raise CheckpointMismatchError("kind", header.kind, expect_kind)
        if expect_config is not None:
            expected = (
                expect_config
                if isinstance(expect_config, str)
                else config_digest(expect_config)
            )
            if header.config_digest != expected:
                raise CheckpointMismatchError(
                    "config digest", header.config_digest, expected
                )
        with open(path, "rb") as handle:
            handle.read(len(MAGIC))
            handle.readline()
            payload = handle.read()
        if len(payload) != header.payload_bytes:
            raise CheckpointFormatError(
                f"{path}: payload is {len(payload)} bytes, header says "
                f"{header.payload_bytes} — truncated or corrupt"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.payload_sha256:
            raise CheckpointFormatError(
                f"{path}: payload checksum {digest} does not match header "
                f"{header.payload_sha256} — corrupt checkpoint"
            )
        try:
            components = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointFormatError(
                f"{path}: payload failed to unpickle ({exc}) — written by an "
                "incompatible code revision?"
            ) from exc
        if not isinstance(components, dict):
            raise CheckpointFormatError(
                f"{path}: payload is {type(components).__name__}, expected dict"
            )
        return header, components

    @staticmethod
    def inspect(path: "os.PathLike[str] | str") -> Dict[str, Any]:
        """A JSON-safe summary of a checkpoint (header only, no unpickle)."""
        header = CheckpointCodec.read_header(path)
        size = os.path.getsize(path)
        return {
            "path": str(path),
            "file_bytes": size,
            "schema": header.schema,
            "kind": header.kind,
            "cycle": header.cycle,
            "seed": header.seed,
            "config_digest": header.config_digest,
            "payload_bytes": header.payload_bytes,
            "payload_sha256": header.payload_sha256,
            "sections": dict(
                sorted(header.sections.items(), key=lambda kv: -kv[1])
            ),
            "manifest": header.manifest,
        }
