"""Checkpoint/restore and deterministic replay.

The codec (:mod:`repro.ckpt.codec`) defines the versioned on-disk format;
the experiment harnesses (``SingleRouterExperiment.checkpoint/resume``,
``NetworkExperiment.checkpoint/resume``) decide *what* goes in a
checkpoint; :mod:`repro.ckpt.verify` proves restores are bit-identical
(imported lazily by ``scripts/perf_gate.py`` — not re-exported here, to
keep this package importable from inside the harness layer).
"""

from .codec import (
    CKPT_SCHEMA,
    MAGIC,
    CheckpointCodec,
    CheckpointError,
    CheckpointFormatError,
    CheckpointHeader,
    CheckpointMismatchError,
    CheckpointSchemaError,
)

__all__ = [
    "CKPT_SCHEMA",
    "MAGIC",
    "CheckpointCodec",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointHeader",
    "CheckpointMismatchError",
    "CheckpointSchemaError",
]
