"""Columnar (structure-of-arrays) per-VC scheduling state.

The object graph keeps every per-VC quantity the link scheduler consults
— cached priority terms, head-flit ages, round-budget offsets, routed
output ports — as attributes scattered across ``VirtualChannel``
instances.  At 256+ VCs per link the per-cycle candidate scan therefore
walks hundreds of Python objects even after the fused-mask fast path
removed the per-vector bit tests.  This module keeps the same state as
flat NumPy columns, one row per VC and one column per field (the shape
of the Tiny Tera scheduling banks: wide, flat state updated with
bitwise/array operations), so the scan becomes a handful of vectorized
gathers plus one ``lexsort``.

Design rules (see DESIGN.md §7e):

* The object graph stays authoritative.  Columns are a mirror: every
  write path that mutates scheduling inputs also updates the columns (or
  marks the row dirty for lazy resync), and the columnar round fold
  writes its results back into the ``VirtualChannel`` fields.  Because
  of this, ``columnar_state`` can be flipped either way mid-run — even
  across a checkpoint/restore — without any state migration.
* Arrays are never pickled.  ``LinkScheduler`` drops the bank on
  ``__getstate__`` and rebuilds it from the objects after restore, so
  checkpoints written under ``columnar_state=True`` stay loadable (and
  bit-identically resumable) on hosts without NumPy.
* All float expressions replicate the reference evaluation order
  (``(base + time_term) + round_offset``) so priorities are bit-identical
  to the scalar path, and selection breaks ties exactly like the
  ascending-index object scan (lowest VC index wins equal priorities).

NumPy itself is an *optional* extra: ``pip install repro[fast]``.
Importing this module without NumPy is fine; constructing a
:class:`ColumnarState` raises :class:`ColumnarUnavailableError`.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Optional, Tuple

from .virtual_channel import ServiceClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .virtual_channel import VirtualChannel

#: Priority tier added to VBR connections that exhausted their permanent
#: bandwidth and compete for excess (peak) cycles.  Canonical home of the
#: constant; ``link_scheduler`` re-exports it.
VBR_EXCESS_OFFSET = -1e9

#: The optional-dependency extra that pulls in NumPy.
FAST_EXTRA = "repro[fast]"

_np = None
_np_checked = False

_U64_MASK = 0xFFFFFFFFFFFFFFFF
_SIGN_BIT = 0x8000000000000000
_PACK_D = struct.Struct("<d").pack
_UNPACK_Q = struct.Struct("<Q").unpack


def _sort_key_desc(value: float) -> int:
    """Map a float to a uint64 whose ascending order is descending float.

    The usual IEEE-754 total-order trick (flip all bits of negatives, set
    the sign bit of non-negatives) gives ascending order; complementing
    gives descending.  ``value + 0.0`` first collapses ``-0.0`` onto
    ``+0.0`` so the key order treats them as equal — exactly how the
    scalar scan's ``>`` comparison does.
    """
    bits = _UNPACK_Q(_PACK_D(value + 0.0))[0]
    asc = (bits ^ _U64_MASK) if bits & _SIGN_BIT else (bits | _SIGN_BIT)
    return asc ^ _U64_MASK


class ColumnarUnavailableError(RuntimeError):
    """``columnar_state=True`` was requested but NumPy is not installed.

    Everything outside the columnar engine runs NumPy-free; install the
    optional extra (``pip install repro[fast]``) to enable the vectorized
    path.
    """


def load_numpy():
    """Return the ``numpy`` module, or ``None`` when not installed.

    The import is deferred and probed exactly once so that plain
    (object-graph) runs never pay for — or require — NumPy.
    """
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _np = numpy
    return _np


def numpy_available() -> bool:
    """True when the optional NumPy dependency is importable."""
    return load_numpy() is not None


def require_numpy():
    """Return numpy or raise the typed error naming the extra."""
    np = load_numpy()
    if np is None:
        raise ColumnarUnavailableError(
            "columnar_state=True requires NumPy, which is an optional "
            f"dependency; install it with `pip install {FAST_EXTRA}` "
            "or run with columnar_state=False"
        )
    return np


class ColumnarState:
    """Flat per-VC state bank for one input link.

    One row per VC, one column per field:

    ``prio_base``/``prio_div``/``prio_key``
        The scheme's cached priority terms (``PriorityScheme.cache_terms``)
        for the current head flit.  ``prio_key`` is stored mod 2**64; the
        hashed-priority recurrence is evaluated in uint64 wraparound
        arithmetic, whose low 32 bits match Python's arbitrary-precision
        result exactly.
    ``head_created``
        Creation cycle of the head flit (ages the aging schemes).
    ``round_offset``
        The round-budget priority offset, mirrored from
        ``VirtualChannel.round_offset`` on every scalar update and
        rewritten by the vectorized round fold.
    ``output_port``
        Routed output port, ``-1`` while unrouted.
    ``excess_offset``
        Precomputed offset a VBR-with-zero-permanent-bandwidth VC drops
        to at a round boundary (``VBR_EXCESS_OFFSET`` plus the static
        tie-break under the priority discipline); ``0.0`` for every other
        VC.  Refreshed whenever the binding or contract changes.

    Rows are resynced lazily: the owning scheduler keeps a dirty bitmask
    of VCs whose head flit or binding changed and replays
    ``cache_terms`` for dirty rows only when they become eligible.
    """

    __slots__ = (
        "width",
        "_nbytes",
        "_priority_discipline",
        "prio_base",
        "prio_div",
        "prio_key",
        "head_created",
        "round_offset",
        "output_port",
        "excess_offset",
        "sort_desc",
        "_key_buf",
        "_first",
        "_arange",
        "num_outputs",
        "_out_rows",
        "_groups_dirty",
        "_arange_out",
        "_float_buf",
        "_elig_buf",
    )

    def __init__(
        self,
        width: int,
        priority_discipline: bool,
        num_outputs: int = 0,
        pool: Optional["ColumnarPool"] = None,
        pool_key: object = None,
    ) -> None:
        np = require_numpy()
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self._nbytes = (width + 7) // 8
        self._priority_discipline = priority_discipline
        if pool is None:
            def take(name: str, rows: int, dtype):
                return np.empty(rows, dtype=dtype)
        else:
            # Pooled mode (network arena): every column is a slice view
            # of the pool's network-global per-dtype chunk, keyed by
            # (bank key, field) so rebuilds land on the same rows.
            def take(name: str, rows: int, dtype):
                return pool.take((pool_key, name), rows, dtype)
        self.prio_base = take("prio_base", width, np.float64)
        self.prio_base[:] = 0.0
        self.prio_div = take("prio_div", width, np.float64)
        self.prio_div[:] = 1.0
        self.prio_key = take("prio_key", width, np.uint64)
        self.prio_key[:] = 0
        self.head_created = take("head_created", width, np.int64)
        self.head_created[:] = 0
        self.round_offset = take("round_offset", width, np.float64)
        self.round_offset[:] = 0.0
        self.output_port = take("output_port", width, np.int64)
        self.output_port[:] = -1
        self.excess_offset = take("excess_offset", width, np.float64)
        self.excess_offset[:] = 0.0
        # Static-scheme selection state: ``sort_desc[i]`` is the sortable
        # descending-order key of ``prio_base[i]`` (see
        # :func:`_sort_key_desc`), maintained by :meth:`set_terms`; the
        # rest are reusable scratch buffers for :meth:`select_static_*`.
        # ``_key_buf`` has one extra slot, permanently ``UINT64_MAX``,
        # that the output-group table's padding rows point at.
        self.sort_desc = take("sort_desc", width, np.uint64)
        self.sort_desc[:] = _U64_MASK
        self._key_buf = take("_key_buf", width + 1, np.uint64)
        self._first = take("_first", max(num_outputs, 1), np.int64)
        self._arange = take("_arange", width, np.int64)
        self._arange[:] = np.arange(width, dtype=np.int64)
        self.num_outputs = num_outputs
        self._out_rows = None
        self._groups_dirty = True
        self._arange_out = take("_arange_out", max(num_outputs, 1), np.int64)
        self._arange_out[:] = np.arange(max(num_outputs, 1), dtype=np.int64)
        self._float_buf = take("_float_buf", width + 1, np.float64)
        self._elig_buf = take("_elig_buf", width + 1, np.bool_)
        self._elig_buf[:] = False

    @staticmethod
    def pool_requirements(width: int, num_outputs: int = 0) -> dict:
        """Rows one bank takes from a pool, per dtype name.

        Must mirror the ``take`` calls of ``__init__`` exactly; the
        network arena sums this over every bank to pre-reserve the
        pool's chunks so no take ever reallocates a live chunk.
        """
        outs = max(num_outputs, 1)
        return {
            "float64": 4 * width + (width + 1),
            "uint64": 2 * width + (width + 1),
            "int64": 3 * width + 2 * outs,
            "bool": width + 1,
        }

    # ----- mask plumbing --------------------------------------------------

    def indices_of(self, mask: int):
        """Ascending row indices of the set bits of ``mask``.

        The mask is the same arbitrary-precision integer the
        ``BitVector`` fast path walks bit by bit; here it is widened to a
        byte string once and unpacked in bulk.
        """
        packed = _np.frombuffer(
            mask.to_bytes(self._nbytes, "little"), dtype=_np.uint8
        )
        bits = _np.unpackbits(packed, bitorder="little", count=self.width)
        return _np.nonzero(bits)[0]

    # ----- object -> column sync ------------------------------------------

    def sync_cold(self, vc: "VirtualChannel") -> None:
        """Refresh the binding-derived columns of one row.

        Called whenever a VC is bound, released, routed, or has its
        contract renegotiated — the same sites that invalidate the cached
        priority terms.
        """
        i = vc.index
        output_port = vc.output_port
        self.output_port[i] = -1 if output_port is None else output_port
        self._groups_dirty = True
        if vc.service_class is ServiceClass.VBR and vc.permanent_cycles == 0:
            if self._priority_discipline:
                excess = VBR_EXCESS_OFFSET + vc.static_priority * 1e6
            else:
                excess = VBR_EXCESS_OFFSET
        else:
            excess = 0.0
        self.excess_offset[i] = excess
        self.round_offset[i] = vc.round_offset

    def set_terms(
        self, i: int, base: float, div: float, key: int, created: int
    ) -> None:
        """Install the cached priority terms for one (dirty) row."""
        self.prio_base[i] = base
        self.prio_div[i] = div
        self.prio_key[i] = key & _U64_MASK
        self.head_created[i] = created
        self.sort_desc[i] = _sort_key_desc(base)

    # ----- vectorized kernels ---------------------------------------------

    def priorities(self, idx, now: int, dep: int, with_offset: bool = True):
        """Priorities for rows ``idx`` under time-dependence code ``dep``.

        Mirrors the scalar fast path bit for bit, including evaluation
        order: ``(base + time_term) + round_offset``.  With round budgets
        unenforced every ``round_offset`` is identically ``+0.0`` (and no
        priority term evaluates to ``-0.0``), so ``with_offset=False``
        skips the gather and add without changing a single bit.
        """
        np = _np
        base = self.prio_base[idx]
        if dep == 0:  # static
            result = base
        elif dep == 1:  # aging
            waited = now - self.head_created[idx]
            result = base + waited / self.prio_div[idx]
        else:
            # hashed: uint64 wraparound keeps the low 32 bits identical
            # to Python's unbounded-int evaluation.
            mixed = (
                (self.prio_key[idx] * np.uint64(31) + np.uint64(now))
                * np.uint64(2654435761)
            ) & np.uint64(0xFFFFFFFF)
            result = base + mixed / np.float64(4294967296.0)
        if with_offset:
            return result + self.round_offset[idx]
        return result

    def priorities_full(self, now: int, dep: int, with_offset: bool = True):
        """Priorities for *every* row (same float recipe as above).

        Whole-column arithmetic beats per-row gathers once a meaningful
        fraction of the bank is eligible: three vector ops over ``width``
        rows cost less than one fancy-index gather.  Rows without a
        synced head flit produce garbage values — callers mask them out
        before selection, so they never influence a result.
        """
        np = _np
        base = self.prio_base
        if dep == 0:  # static
            result = base
        elif dep == 1:  # aging
            waited = now - self.head_created
            result = base + waited / self.prio_div
        else:
            mixed = (
                (self.prio_key * np.uint64(31) + np.uint64(now))
                * np.uint64(2654435761)
            ) & np.uint64(0xFFFFFFFF)
            result = base + mixed / np.float64(4294967296.0)
        if with_offset:
            return result + self.round_offset
        return result

    def select_priority(self, idx, priorities, limit: Optional[int]):
        """Top-``limit`` rows by ``(-priority, vc_index)``.

        Equivalent to ``heapq.nsmallest(limit, pool, key=sort_key)`` on
        the scalar candidate pool (the input-port component of the key is
        constant within one scheduler).
        """
        np = _np
        order = np.lexsort((idx, -priorities))
        if limit is not None and order.size > limit:
            order = order[:limit]
        return order

    def _eligible(self, mask: int):
        """Bool view of the eligibility ``mask``, width rows.

        Backed by the persistent ``_elig_buf`` whose extra padding slot
        (index ``width``) is permanently False, so sentinel rows of the
        output-group table always read as ineligible.
        """
        np = _np
        packed = np.frombuffer(
            mask.to_bytes(self._nbytes, "little"), dtype=np.uint8
        )
        buf = self._elig_buf
        buf[: self.width] = np.unpackbits(
            packed, bitorder="little", count=self.width
        ).view(np.bool_)
        return buf[: self.width]

    def _masked_keys(self, mask: int):
        """Scratch key buffer with ineligible rows forced to the sentinel.

        Rows outside ``mask`` (and the extra padding slot at index
        ``width``) read as ``UINT64_MAX``, which sorts above every real
        key — no real key can equal it (that would require a negative-NaN
        bit pattern as the priority base).
        """
        np = _np
        buf = self._key_buf
        buf[:] = _U64_MASK
        np.copyto(buf[: self.width], self.sort_desc, where=self._eligible(mask))
        return buf

    def _output_groups(self):
        """Row indices grouped by routed output, as a padded 2D table.

        ``table[o]`` lists the rows routed to output ``o`` in ascending
        row order, padded with ``width`` (the sentinel slot of
        ``_key_buf``).  Rebuilt lazily after any routing change
        (``sync_cold`` marks it dirty); scan-time cost is therefore one
        2D gather plus a row-wise ``argmin``.
        """
        table = self._out_rows
        if table is None or self._groups_dirty:
            groups: list = [[] for _ in range(self.num_outputs)]
            for row, out in enumerate(self.output_port.tolist()):
                if out >= 0:
                    groups[out].append(row)
            depth = max((len(rows) for rows in groups), default=0) or 1
            table = _np.full(
                (self.num_outputs, depth), self.width, dtype=_np.int64
            )
            for out, rows in enumerate(groups):
                table[out, : len(rows)] = rows
            self._out_rows = table
            self._groups_dirty = False
        return table

    def select_static_per_output(self, mask: int, limit: Optional[int]):
        """Best eligible row per output under a static priority scheme.

        Valid only when priorities are scan-invariant — ``dep == 0`` (the
        terms carry no time dependence) and every ``round_offset`` is
        ``+0.0`` (budgets unenforced) — so the precomputed key order *is*
        the priority order.  Returns row indices ordered by
        ``(-priority, index)`` and truncated to ``limit``, exactly like
        :meth:`select_per_output`.  Each output's winner is the row-wise
        ``argmin`` over its group's masked keys; ``argmin`` returns the
        *first* minimum and groups are in ascending row order, so ties on
        equal priority keep the lowest VC index.
        """
        np = _np
        keys = self._masked_keys(mask)
        table = self._output_groups()
        group_keys = keys[table]
        best = np.argmin(group_keys, axis=1)
        arange_out = self._arange_out
        winner_keys = group_keys[arange_out, best]
        winner_rows = table[arange_out, best]
        present = winner_keys != np.uint64(_U64_MASK)
        winner_keys = winner_keys[present]
        winner_rows = winner_rows[present]
        winners = winner_rows[np.lexsort((winner_rows, winner_keys))]
        if limit is not None and winners.size > limit:
            winners = winners[:limit]
        return winners

    def select_dynamic_per_output(self, priorities, mask: int):
        """Best eligible row per output for time-varying priorities.

        ``priorities`` is the full-width vector from
        :meth:`priorities_full`.  Ineligible rows are masked to ``-inf``
        (assumes no real priority is ``-inf``; the schemes produce finite
        floats) and each output's winner is the row-wise ``argmax`` over
        its group — the *first* maximum, so ties on equal priority keep
        the lowest VC index, exactly like the scalar scan's strict-``>``
        replacement.  Returns ``(winner_rows, winner_priorities,
        present)``, one slot per output: ``present[o]`` is False when
        output ``o`` has no eligible row (its argmax landed on a masked
        or sentinel slot).  The final ``(-priority, index)`` ordering and
        limit truncation happen caller-side in plain Python — the winner
        set is at most ``num_outputs`` wide, where a list sort beats a
        ``lexsort`` plus the fancy-index compaction it would need.
        """
        np = _np
        eligible = self._eligible(mask)
        buf = self._float_buf
        buf[:] = -np.inf
        np.copyto(buf[: self.width], priorities, where=eligible)
        table = self._output_groups()
        group_pr = buf[table]
        best = np.argmax(group_pr, axis=1)
        arange_out = self._arange_out
        winner_pr = group_pr[arange_out, best]
        winner_rows = table[arange_out, best]
        return winner_rows, winner_pr, self._elig_buf[winner_rows]

    def select_static_priority(self, mask: int, n: int, limit: Optional[int]):
        """Top-``limit`` eligible rows under a static priority scheme.

        Same validity conditions as :meth:`select_static_per_output`:
        one stable ``argsort`` over the masked keys yields descending
        priority with ascending-index tie-breaks; the first ``n``
        (``mask.bit_count()``) positions are exactly the eligible rows.
        """
        order = _np.argsort(self._masked_keys(mask)[: self.width], kind="stable")
        order = order[: n if limit is None else min(n, limit)]
        return order

    def fold_round(self, idx, enforce: bool):
        """Round-boundary offsets for rows ``idx`` once budgets reset.

        With every ``serviced_this_round`` zeroed, no VC is exhausted and
        the only surviving offset is the precomputed excess tier of
        zero-permanent VBR VCs.  Writes the column and returns the
        offsets for the caller to mirror into the objects.
        """
        if enforce:
            offsets = self.excess_offset[idx]
        else:
            offsets = _np.zeros(idx.size, dtype=_np.float64)
        self.round_offset[idx] = offsets
        return offsets


class ColumnarPool:
    """Network-global backing store for many banks' columns.

    The network arena pools every router's per-link
    :class:`ColumnarState` into one contiguous chunk per dtype, laid out
    bank-major in adoption order — (router id, input port) ascending —
    which gives the columns a router-id axis: all of router *n*'s rows
    for a field are adjacent, and whole-network slices are single
    strided views.  Elementwise NumPy operations on slice views are
    bit-identical to operations on standalone arrays, so pooling changes
    memory layout only, never results.

    Follows the columnar pickling rule: ``__getstate__`` drops the
    chunks and keeps only the layout (key → offset map) and capacities,
    so checkpoints stay NumPy-free; after a restore the first ``take``
    lazily reallocates each chunk and every bank rebuild lands on its
    original offsets.  Repeated flag flips or restores therefore reuse
    rows instead of leaking them.
    """

    def __init__(self) -> None:
        # key -> (dtype name, offset, rows); authoritative, pickled.
        self._layout: dict = {}
        # dtype name -> next free row / reserved capacity.
        self._cursors: dict = {}
        self._capacity: dict = {}
        # dtype name -> ndarray; derived, never pickled.
        self._chunks: dict = {}

    def reserve(self, requirements: dict) -> None:
        """Pre-size chunks by ``{dtype name: rows}`` (additive).

        Call once per future bank *before* any ``take`` so chunks are
        allocated at final capacity — a chunk that grew after handing
        out views would detach those views from the pool.
        """
        for name, rows in requirements.items():
            self._capacity[name] = self._capacity.get(name, 0) + rows

    def take(self, key, rows: int, dtype):
        """A ``rows``-long view for ``key``, allocating on first use.

        The caller owns initialisation: contents are undefined until
        written (banks fully initialise every view they take).
        """
        np = require_numpy()
        name = np.dtype(dtype).name
        entry = self._layout.get(key)
        if entry is None:
            offset = self._cursors.get(name, 0)
            self._layout[key] = (name, offset, rows)
            self._cursors[name] = offset + rows
            if self._cursors[name] > self._capacity.get(name, 0):
                self._capacity[name] = self._cursors[name]
        else:
            stored_name, offset, stored_rows = entry
            if stored_name != name or stored_rows != rows:
                raise ValueError(
                    f"pool key {key!r} reused with ({name}, {rows}), "
                    f"was ({stored_name}, {stored_rows})"
                )
        chunk = self._chunks.get(name)
        if chunk is None:
            chunk = np.empty(self._capacity[name], dtype=name)
            self._chunks[name] = chunk
        elif chunk.size < self._capacity[name]:
            # Growing would reallocate and silently detach every view
            # already handed out of this chunk; the caller must reserve
            # all banks up front instead.
            raise RuntimeError(
                f"pool chunk {name!r} already allocated at {chunk.size} "
                f"rows; cannot grow to {self._capacity[name]} without "
                "detaching live views (reserve before the first take)"
            )
        return chunk[offset : offset + rows]

    def rows_allocated(self, dtype_name: str) -> int:
        """Rows handed out so far for ``dtype_name`` (reporting)."""
        return self._cursors.get(dtype_name, 0)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_chunks"] = {}
        return state
