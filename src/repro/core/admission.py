"""Router-level admission control (paper §4.2, §5).

A connection request names an input port, an output port and a bandwidth
demand.  Admission succeeds when

* the output link's bandwidth registers accept the demand,
* the input link has enough residual bandwidth to carry the stream in
  (flits physically arrive over that link), and
* a free virtual channel exists on the input port.

The evaluation relies on admission control to "guarantee that connections
are established only if bandwidth is available on a link", which keeps the
CBR experiment interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .bandwidth import BandwidthAllocator, BandwidthRequest
from .config import RouterConfig


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission attempt, with the refusal reason if any."""

    admitted: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.admitted


ACCEPTED = AdmissionDecision(True)


class AdmissionController:
    """Tracks both sides of every link of one router for admission.

    Output-side state lives in per-link :class:`BandwidthAllocator`
    registers (exactly the paper's hardware).  Input-side occupancy uses an
    identical allocator per input link, since the same flit-cycles/round
    arithmetic bounds what a physical input link can deliver.
    """

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.outputs: List[BandwidthAllocator] = [
            BandwidthAllocator(
                config.round_length,
                config.vbr_concurrency_factor,
                config.best_effort_reserved_fraction,
            )
            for _ in range(config.num_ports)
        ]
        self.inputs: List[BandwidthAllocator] = [
            BandwidthAllocator(
                config.round_length,
                config.vbr_concurrency_factor,
                config.best_effort_reserved_fraction,
            )
            for _ in range(config.num_ports)
        ]
        self.admitted = 0
        self.refused = 0

    def _check_ports(self, input_port: int, output_port: int) -> None:
        ports = self.config.num_ports
        if not 0 <= input_port < ports:
            raise IndexError(f"input port {input_port} out of range [0, {ports})")
        if not 0 <= output_port < ports:
            raise IndexError(f"output port {output_port} out of range [0, {ports})")

    def evaluate(
        self,
        input_port: int,
        output_port: int,
        request: BandwidthRequest,
        input_vc_free: bool = True,
    ) -> AdmissionDecision:
        """Check a request without committing anything."""
        self._check_ports(input_port, output_port)
        if not input_vc_free:
            return AdmissionDecision(False, "no free virtual channel on input port")
        if not self.inputs[input_port].can_allocate(request):
            return AdmissionDecision(
                False, f"input link {input_port} bandwidth exhausted"
            )
        if not self.outputs[output_port].can_allocate(request):
            return AdmissionDecision(
                False, f"output link {output_port} bandwidth exhausted"
            )
        return ACCEPTED

    def admit(
        self,
        input_port: int,
        output_port: int,
        request: BandwidthRequest,
        input_vc_free: bool = True,
    ) -> AdmissionDecision:
        """Atomically admit a request (both links) or refuse it."""
        decision = self.evaluate(input_port, output_port, request, input_vc_free)
        if not decision:
            self.refused += 1
            return decision
        if not self.inputs[input_port].allocate(request):
            self.refused += 1
            return AdmissionDecision(
                False, f"input link {input_port} bandwidth exhausted"
            )
        if not self.outputs[output_port].allocate(request):
            # Roll back the input-side reservation.
            self.inputs[input_port].release(request)
            self.refused += 1
            return AdmissionDecision(
                False, f"output link {output_port} bandwidth exhausted"
            )
        self.admitted += 1
        return ACCEPTED

    def release(
        self, input_port: int, output_port: int, request: BandwidthRequest
    ) -> None:
        """Return the bandwidth of a torn-down connection."""
        self._check_ports(input_port, output_port)
        self.inputs[input_port].release(request)
        self.outputs[output_port].release(request)

    def offered_load(self) -> float:
        """Committed fraction of aggregate switch bandwidth.

        This matches the paper's definition of offered load: the
        percentage of switch bandwidth demanded by all connections
        through the router.
        """
        total = sum(out.allocated_cycles for out in self.outputs)
        return total / (self.config.num_ports * self.config.round_length)
