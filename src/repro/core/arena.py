"""Network-wide columnar arena: batched multi-router stepping.

At 256+ routers the network layer, not the scheduler, is the hot path:
every flit crossing a link costs two heap events (arrive + credit) with
fresh ``Event`` objects, and the kernel polls every router's activity
predicate every cycle even when most of the grid is idle.  The arena
replaces both mechanisms behind the established identity-oracle
playbook (DESIGN.md §7f):

Ring-buffer link plane
    ``_LinkOutput``/``_CreditReturn`` stop scheduling per-flit events
    and append ``(kind, node, port, vc[, flit])`` records to a ring
    keyed by due cycle.  The arena drains the current cycle's ring in
    one sweep at the start of its tick — credits via
    ``LinkFlowControl.replenish``, arrivals via ``Network._arrive`` —
    in append order, which reproduces the event heap's (time, seq)
    order exactly (no ``schedule`` call in the tree passes a priority,
    and emission order *is* push order).

Per-router wake mask
    Every router ticker is suspended
    (:meth:`repro.sim.engine.Simulator.suspend_tickers`); the arena
    keeps a sorted awake list and steps only those routers, in router-id
    order (the original ticker order).  A sleeping router costs zero
    Python dispatch — not even a predicate poll.  Waking is push, not
    poll: :class:`~repro.core.status_vectors.ActivitySet.on_wake` fires
    on the idle→busy transition and enqueues the router; its skipped
    idle span is replayed through ``account_idle_cycles`` at wake (the
    hook is span-pure, so deferred replay is bit-identical).

Pooled columnar plane
    When the columnar engine is on, every router's per-link
    :class:`~repro.core.columnar.ColumnarState` is re-homed into one
    :class:`~repro.core.columnar.ColumnarPool` — contiguous
    network-global arrays with a router-id axis — so round folds and
    priority updates run over shared storage and the whole network's
    columns live in a handful of allocations.

The object graph stays authoritative throughout: the arena can be
flipped on or off mid-run (rings migrate back to heap events on
disable), checkpoints pickle the rings (in-flight flits are real state)
but never the NumPy chunks, and the perf gate proves bit-identical
delivered-flit streams and stats against the event-driven baseline.

The arena requires NumPy (the pooled plane is its point); constructing
one without it raises the typed
:class:`~repro.core.columnar.ColumnarUnavailableError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from .columnar import ColumnarPool, ColumnarState, require_numpy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.network import Network

#: Ring record kinds (first tuple element).
_CREDIT = 0
_ARRIVE = 1


class _WakeHook:
    """Per-router ``ActivitySet.on_wake`` callback (picklable)."""

    __slots__ = ("arena", "node")

    def __init__(self, arena: "NetworkArena", node: int) -> None:
        self.arena = arena
        self.node = node

    def __call__(self) -> None:
        self.arena._woken.append(self.node)


class NetworkArena:
    """Batched stepping engine for one :class:`Network`.

    Construct via :meth:`Network.set_network_arena`, which owns the
    ticker suspension handshake with the simulator.
    """

    def __init__(self, network: "Network") -> None:
        require_numpy()
        self.network = network
        # Link plane: due cycle -> mixed list of credit/arrive records,
        # drained in append order.  Authoritative state (in-flight
        # flits live here), so it is pickled as-is.
        self._rings: Dict[int, list] = {}
        # Wake mask: sorted ids of routers being stepped, their set for
        # O(1) membership, ids woken since the last merge, and the cycle
        # each sleeping router stopped being stepped (for exact idle
        # accounting replay at wake).
        num_nodes = network.topology.num_nodes
        self._awake: List[int] = list(range(num_nodes))
        self._awake_set = set(self._awake)
        self._woken: List[int] = []
        self._asleep_since: Dict[int, int] = {}
        # Pooled columnar plane (shared by every scheduler bank).
        self.pool = ColumnarPool()

    # ----- install / uninstall --------------------------------------------

    def install(self) -> None:
        """Attach wake hooks and re-home columnar banks into the pool.

        Reservation must cover *every* bank before the first adoption:
        with the columnar engine already enabled, ``adopt_columnar_pool``
        rebuilds the bank immediately, and the first ``take`` freezes
        each dtype chunk at whatever capacity has been reserved so far —
        a later bank would then need the chunk to grow, which the pool
        refuses (it would detach live views).
        """
        config = self.network.config
        requirements = ColumnarState.pool_requirements(
            config.vcs_per_port, config.num_ports
        )
        routers = self.network.routers
        num_banks = sum(len(router.link_schedulers) for router in routers)
        self.pool.reserve(
            {name: rows * num_banks for name, rows in requirements.items()}
        )
        for node, router in enumerate(routers):
            router.activity.on_wake = _WakeHook(self, node)
            for port, scheduler in enumerate(router.link_schedulers):
                scheduler.adopt_columnar_pool(self.pool, (node, port))

    def uninstall(self) -> None:
        """Detach wake hooks and migrate pending rings to heap events.

        Ring records are rescheduled at their due cycle in ring order;
        they land behind any events already pending for that cycle,
        which matches the baseline (those events were pushed earlier and
        hold smaller sequence numbers).  Bank pooling is left in place —
        pool views are plain arrays and a later re-enable reuses the
        same rows.
        """
        network = self.network
        for router in network.routers:
            router.activity.on_wake = None
        sim = network.sim
        for due in sorted(self._rings):
            for record in self._rings[due]:
                if record[0] == _ARRIVE:
                    _, node, port, vc_index, flit = record
                    sim.schedule_at(
                        due, network._arrive_event, (node, port, vc_index, flit)
                    )
                else:
                    _, node, port, vc_index = record
                    sim.schedule_at(
                        due, network._replenish_event, (node, port, vc_index)
                    )
        self._rings.clear()

    # ----- link plane -------------------------------------------------------

    def push_arrival(
        self, due: int, node: int, port: int, vc_index: int, flit
    ) -> None:
        """Record a flit that finishes crossing a link at ``due``."""
        ring = self._rings.get(due)
        if ring is None:
            ring = self._rings[due] = []
        ring.append((_ARRIVE, node, port, vc_index, flit))

    def push_credit(self, due: int, node: int, port: int, vc_index: int) -> None:
        """Record a credit that finishes crossing a link at ``due``."""
        ring = self._rings.get(due)
        if ring is None:
            ring = self._rings[due] = []
        ring.append((_CREDIT, node, port, vc_index))

    # ----- kernel hooks -----------------------------------------------------

    def active(self) -> bool:
        """Arena activity predicate: any ring, stepped or woken router."""
        return bool(self._rings) or bool(self._awake) or bool(self._woken)

    def tick(self, cycle: int) -> None:
        """One arena cycle: drain the due ring, then step awake routers."""
        records = self._rings.pop(cycle, None)
        network = self.network
        routers = network.routers
        if records is not None:
            arrive = network._arrive
            for record in records:
                if record[0] == _ARRIVE:
                    _, node, port, vc_index, flit = record
                    arrive(routers[node], node, port, vc_index, flit)
                else:
                    _, node, port, vc_index = record
                    routers[node].output_flow[port].replenish(vc_index)
        if not network.sim.allow_fast_forward:
            # Legacy kernel contract: every router ticks every cycle.
            # The wake hooks still fire on every idle->busy transition;
            # drop their queue so it cannot grow (and get pickled into
            # checkpoints) unboundedly — nothing here sleeps, so there
            # is never deferred idle accounting to replay.
            if self._woken:
                self._woken.clear()
            for router in routers:
                router.tick(cycle)
            return
        if self._woken:
            self._merge_woken(cycle)
        awake = self._awake
        if not awake:
            return
        asleep_since = self._asleep_since
        still_awake: List[int] = []
        for node in awake:
            router = routers[node]
            if router.activity.active():
                router.tick(cycle)
                still_awake.append(node)
            else:
                # Stop stepping it; idle cycles from here accrue lazily
                # and are replayed in one span at wake (or flush).
                self._awake_set.discard(node)
                asleep_since[node] = cycle
        if len(still_awake) != len(awake):
            self._awake = still_awake

    def _merge_woken(self, cycle: int) -> None:
        """Fold woken routers into the awake list (ascending id order)."""
        woken = self._woken
        self._woken = []
        awake_set = self._awake_set
        merged = False
        for node in woken:
            if node in awake_set:
                continue  # woke while still being stepped: nothing to do
            since = self._asleep_since.pop(node, None)
            if since is not None and cycle > since:
                self.network.routers[node].account_idle_cycles(
                    since, cycle - since
                )
            awake_set.add(node)
            merged = True
        if merged:
            self._awake = sorted(awake_set)

    def flush(self, now: int) -> None:
        """Bring every sleeping router's idle accounting up to ``now``.

        Idle spans are accounted lazily at wake; anything that reads
        cycle counters or round statistics mid-sleep (results, stats
        comparisons, the arena being disabled) must flush first.
        Span-splitting is exact, so flushing never changes totals.
        """
        routers = self.network.routers
        asleep_since = self._asleep_since
        for node, since in asleep_since.items():
            if now > since:
                routers[node].account_idle_cycles(since, now - since)
                asleep_since[node] = now
