"""Link scheduling (paper §4.1, §4.3, §4.4).

One link scheduler serves each physical input link.  Every flit cycle it
derives the set of schedulable virtual channels from the status bit
vectors (flits available AND credits available AND round budget not
exhausted) and offers the switch scheduler a small *candidate set* —
1 to 8 VCs in the paper's study — ordered by the active priority scheme.

Round-based accounting implements the paper's QoS discipline:

* CBR connections may consume at most their allocated flit cycles per
  round (``cbr_bandwidth_serviced`` gates them off once satisfied);
* VBR connections are served up to their permanent bandwidth at data
  priority, and between permanent and peak in a lower *excess* tier where
  connections are drained one at a time in priority order ("completely
  servicing the excess bandwidth of one connection before moving to the
  next one");
* control packets ride above all data, best-effort below.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, NamedTuple, Optional, Sequence

from ..sim.rng import SeededRng
from .columnar import ColumnarState
from .config import RouterConfig
from .priority import PriorityScheme
from .status_vectors import StatusBank
from .virtual_channel import ServiceClass, VirtualChannel

# Priority offset pushing VBR excess-bandwidth service below every
# in-contract data stream but far above best-effort traffic (whose class
# offset is -1e12).  Canonically defined next to the columnar mirror that
# precomputes it per VC; re-exported here for its historical importers.
from .columnar import VBR_EXCESS_OFFSET  # noqa: E402  (re-export)


def _winner_sort_key(winner):
    """Per-output winner order: same as ``Candidate.sort_key`` restricted
    to one input port — descending priority, then lowest VC index."""
    return (-winner[0], winner[1])


class Candidate(NamedTuple):
    """One virtual channel offered to the switch scheduler this cycle."""

    priority: float
    input_port: int
    vc_index: int
    output_port: int

    def sort_key(self):
        """Descending priority, then lowest VC index (deterministic)."""
        return (-self.priority, self.input_port, self.vc_index)


class LinkScheduler:
    """Candidate selection and round accounting for one input link."""

    def __init__(
        self,
        port: int,
        config: RouterConfig,
        vcs: Sequence[VirtualChannel],
        status: StatusBank,
        scheme: PriorityScheme,
        credit_check: Callable[[int, int], bool],
        selection: str = "priority",
        rng: Optional[SeededRng] = None,
        fast_path: bool = True,
        columnar: bool = False,
    ) -> None:
        """``credit_check(output_port, output_vc)`` must report downstream
        credit.

        ``selection`` picks how the candidate set is drawn from the
        eligible set (the bit-vector AND of §4.1):

        * ``'rotating'`` — the MMR: a round-robin scan over eligible VCs,
          as a hardware priority encoder with a rotating start pointer
          produces.  Candidate choice is fair; the priority *scheme*
          decides conflicts.  This keeps switch utilisation insensitive to
          the priority scheme, as §5.2 observes.
        * ``'priority'`` — take the C highest-priority flits (ablation;
          with non-aging priorities a stuck flit can mask its whole port).
        * ``'random'`` — uniformly random C (the Autonet/DEC baseline).
        * ``'per_output'`` — the highest-priority eligible flit for each
          requested output link, then the top C of those.  This is the
          natural reading of the §4.1 bit-vector hardware (one vector
          per condition, grouped per output) and prevents one stuck flit
          from masking flits bound for other outputs.
        """
        if selection not in ("rotating", "priority", "random", "per_output"):
            raise ValueError(f"unknown selection mode {selection!r}")
        if selection == "random" and rng is None:
            raise ValueError("random selection requires an rng")
        self.port = port
        self.config = config
        self.vcs = vcs
        self.status = status
        self.scheme = scheme
        self.credit_check = credit_check
        self.selection = selection
        self.rng = rng
        #: Fused bit-parallel candidate walk (the default).  The reference
        #: per-VC walk is kept behind ``fast_path=False`` so perf_gate can
        #: prove the two produce bit-identical streams.
        self.fast_path = fast_path
        self.candidates_offered = 0
        self.cycles_with_candidates = 0
        # Size of the eligible set before candidate-set truncation, summed
        # per scan (sampled by the flight recorder).  Fast path counts set
        # bits in the fused mask; reference counts the pool it built —
        # provably equal while the vectors are in sync.
        self.eligible_vcs_total = 0
        # VBR service-tier accounting (§4.4): flits granted within the
        # permanent allocation vs in the excess (permanent..peak) tier.
        self.vbr_permanent_grants = 0
        self.vbr_excess_grants = 0
        # Rotating-scan start pointer (the hardware round-robin encoder).
        self._scan_pointer = 0
        # Hot-path handles: candidate selection and round accounting run
        # every busy cycle, so resolve the status vectors once.
        self._flits_available = status.vector("flits_available")
        self._credits_available = status.vector("credits_available")
        self._routed = status.vector("routed")
        self._exhausted = status.vector("round_budget_exhausted")
        self._cbr_serviced = status.vector("cbr_bandwidth_serviced")
        self._vbr_serviced = status.vector("vbr_bandwidth_serviced")
        self._connection_active = status.vector("connection_active")
        self._candidate_limit = config.candidates
        self._enforce = config.enforce_round_budgets
        # Integer dispatch code for the priority scheme's time dependence
        # (see PriorityScheme.time_dependence); keeps the fast-path inner
        # loop to an int compare instead of a string compare.
        self._scheme_dep = {"static": 0, "aging": 1, "hashed": 2}.get(
            scheme.time_dependence, 3
        )
        # The per-output mode folds its selection into the fused scan
        # (tracking the best flit per output while walking the mask)
        # instead of building the full pool and reducing it afterwards.
        self._per_output_fast = selection == "per_output"
        # Columnar (structure-of-arrays) engine: the per-VC hot state is
        # mirrored into NumPy columns and the candidate scan and round
        # fold run vectorized (see columnar.py / DESIGN.md §7e).  The
        # object graph stays authoritative, so the flag can be flipped
        # mid-run.  ``_terms_dirty`` is the lazy-resync bitmask of VCs
        # whose head flit or binding changed since their row was synced;
        # it is maintained unconditionally (a single int OR) so enabling
        # columnar mid-run needs no scan.
        self._columnar_enabled = columnar
        self._columnar: Optional[ColumnarState] = None
        self._terms_dirty = 0
        # Network-arena pooling: when adopted into a ColumnarPool the
        # bank's columns become slice views of the network-global
        # chunks (same values, shared storage).  None = standalone.
        self._columnar_pool = None
        self._columnar_pool_key = None
        if columnar:
            # Eager build: fail fast with the typed error when NumPy is
            # missing instead of at the first busy cycle.
            self._ensure_columnar()

    # ----- columnar mirror ---------------------------------------------------

    def _ensure_columnar(self) -> ColumnarState:
        """Build (or return) the columnar bank, synced from the objects.

        Also the post-restore rebuild path: checkpoints never contain the
        arrays (see ``__getstate__``), so the first use after a restore
        lands here and reconstructs every column from the authoritative
        object graph, with all priority-term rows marked dirty.
        """
        cols = self._columnar
        if cols is None:
            cols = ColumnarState(
                self.config.vcs_per_port,
                self.config.vbr_excess_discipline == "priority",
                num_outputs=self.config.num_ports,
                # getattr: schedulers unpickled from checkpoints that
                # predate pooling have no pool attributes.
                pool=getattr(self, "_columnar_pool", None),
                pool_key=getattr(self, "_columnar_pool_key", None),
            )
            for vc in self.vcs:
                cols.sync_cold(vc)
            self._terms_dirty = (1 << self.config.vcs_per_port) - 1
            self._columnar = cols
        return cols

    def set_columnar(self, enabled: bool) -> None:
        """Enable/disable the columnar engine mid-run.

        Both directions are free: the object graph is always current, so
        enabling just (re)builds the mirror and disabling drops it.
        """
        self._columnar_enabled = enabled
        if enabled:
            self._ensure_columnar()
        else:
            self._columnar = None

    def adopt_columnar_pool(self, pool, key) -> None:
        """Re-home this scheduler's bank into a :class:`ColumnarPool`.

        Installed by the network arena (key = (router id, input port)).
        Adoption is permanent and value-preserving: an existing bank is
        rebuilt from the authoritative object graph into pool views, and
        every later (re)build — including post-restore — lands on the
        same pool rows.
        """
        self._columnar_pool = pool
        self._columnar_pool_key = key
        if self._columnar is not None:
            self._columnar = None
            self._ensure_columnar()

    def invalidate_vc(self, vc: VirtualChannel) -> None:
        """Drop the VC's cached priority terms and resync its columns.

        The cache is keyed on (head-flit identity, connection id); this
        resets both components so a torn-down-and-readmitted connection
        on the same VC — or a renegotiated contract under the same head
        flit — never inherits stale terms.  Call after any mutation of a
        priority input (binding, route, interarrival, static priority,
        service contract).
        """
        vc.prio_flit = None
        vc.prio_conn = None
        self._terms_dirty |= 1 << vc.index
        if self._columnar is not None:
            self._columnar.sync_cold(vc)

    def __getstate__(self):
        """Pickle without the NumPy bank (rebuilt lazily from objects).

        Keeps checkpoints written under ``columnar_state=True`` loadable
        on hosts without NumPy and guarantees restore re-derives every
        column from the canonical object graph.
        """
        state = self.__dict__.copy()
        state["_columnar"] = None
        return state

    # ----- round accounting --------------------------------------------------

    def on_round_boundary(self) -> None:
        """Reset per-round serviced counters and the serviced bit vectors.

        One pass over the OR of the three vectors that can mark a VC as
        touched this round — a VC both serviced and active is visited
        once, not three times.
        """
        vcs = self.vcs
        bits = (
            self._cbr_serviced._bits
            | self._vbr_serviced._bits
            | self._connection_active._bits
        )
        if self._columnar_enabled and bits:
            # Vectorized fold: with serviced counters about to reset, no
            # touched VC stays exhausted and the only surviving offset is
            # the precomputed excess tier — computed for all touched rows
            # at once, then mirrored back into the objects (which remain
            # authoritative for invariants, telemetry and flag flips).
            cols = self._ensure_columnar()
            idx = cols.indices_of(bits)
            offsets = cols.fold_round(idx, self._enforce)
            for vc_index, offset in zip(idx.tolist(), offsets.tolist()):
                vc = vcs[vc_index]
                vc.serviced_this_round = 0
                vc.round_offset = offset
            self._exhausted._bits &= ~bits
            self._cbr_serviced.clear_all()
            self._vbr_serviced.clear_all()
            return
        while bits:
            low = bits & -bits
            bits ^= low
            vc = vcs[low.bit_length() - 1]
            vc.serviced_this_round = 0
            self.refresh_round_state(vc)
        self._cbr_serviced.clear_all()
        self._vbr_serviced.clear_all()

    def on_flit_serviced(self, vc: VirtualChannel) -> None:
        """Account one transmitted flit against the VC's round budget."""
        vc.serviced_this_round += 1
        if vc.service_class is ServiceClass.CBR:
            if vc.allocated_cycles and vc.serviced_this_round >= vc.allocated_cycles:
                self._cbr_serviced.set(vc.index)
        elif vc.service_class is ServiceClass.VBR:
            if vc.serviced_this_round <= vc.permanent_cycles:
                self.vbr_permanent_grants += 1
            else:
                self.vbr_excess_grants += 1
            if vc.peak_cycles and vc.serviced_this_round >= vc.peak_cycles:
                self._vbr_serviced.set(vc.index)
        if self._enforce:
            self.refresh_round_state(vc)

    def refresh_round_state(self, vc: VirtualChannel) -> None:
        """Recompute the VC's exhausted bit and cached tier offset.

        Mirrors :meth:`_round_gate` exactly: ``round_budget_exhausted``
        holds the cases where the gate returns None, ``vc.round_offset``
        the offset it would return otherwise.  Called whenever an input of
        the gate changes — a flit serviced, a round boundary, a (re)bind
        or renegotiation — so the fast path never evaluates the gate.
        """
        exhausted = False
        offset = 0.0
        if self._enforce:
            service_class = vc.service_class
            if service_class is ServiceClass.CBR:
                exhausted = bool(vc.allocated_cycles) and (
                    vc.serviced_this_round >= vc.allocated_cycles
                )
            elif service_class is ServiceClass.VBR:
                if vc.serviced_this_round < vc.permanent_cycles:
                    pass
                elif vc.peak_cycles and vc.serviced_this_round >= vc.peak_cycles:
                    exhausted = True
                elif self.config.vbr_excess_discipline == "priority":
                    offset = VBR_EXCESS_OFFSET + vc.static_priority * 1e6
                else:
                    offset = VBR_EXCESS_OFFSET
        self._exhausted.assign(vc.index, exhausted)
        vc.round_offset = offset
        cols = self._columnar
        if cols is not None:
            cols.round_offset[vc.index] = offset

    # ----- candidate selection -----------------------------------------------

    def _round_gate(self, vc: VirtualChannel) -> Optional[float]:
        """Priority offset for the VC's current round tier, or None when
        the VC has exhausted its round budget."""
        if not self.config.enforce_round_budgets:
            return 0.0
        if vc.service_class is ServiceClass.CBR:
            if vc.allocated_cycles and vc.serviced_this_round >= vc.allocated_cycles:
                return None
            return 0.0
        if vc.service_class is ServiceClass.VBR:
            if vc.serviced_this_round < vc.permanent_cycles:
                return 0.0
            if vc.peak_cycles and vc.serviced_this_round >= vc.peak_cycles:
                return None
            if self.config.vbr_excess_discipline == "priority":
                # The paper's discipline: the connection's stored VBR
                # priority dominates, so one connection's excess is fully
                # drained before the next one is served.
                return VBR_EXCESS_OFFSET + vc.static_priority * 1e6
            # 'shared': excess flits keep competing under the normal
            # (aging) priority, interleaving service across connections.
            return VBR_EXCESS_OFFSET
        # Control and best-effort traffic carry no round budget; the class
        # offsets in the priority scheme place them.
        return 0.0

    def eligible_vcs(self) -> List[int]:
        """Indices of VCs passing the bit-vector schedulability test."""
        return list(self.status.eligible_for_service().indices())

    def fused_mask(self) -> int:
        """The fast path's eligibility mask as a raw integer:
        ``flits & credits & routed & ~exhausted``."""
        return (
            self._flits_available._bits
            & self._credits_available._bits
            & self._routed._bits
            & ~self._exhausted._bits
        )

    def candidates(self, now: int, limit: Optional[int] = None) -> List[Candidate]:
        """The candidate set offered to the switch scheduler this cycle."""
        if self._columnar_enabled:
            return self._candidates_columnar(now, limit)
        if not self.fast_path:
            return self._candidates_reference(now, limit)
        return self._candidates_fused(now, limit)

    def _candidates_fused(
        self, now: int, limit: Optional[int] = None
    ) -> List[Candidate]:
        """The fused bit-parallel scalar scan (the object-graph fast path)."""
        if limit is None:
            limit = self._candidate_limit
        mask = (
            self._flits_available._bits
            & self._credits_available._bits
            & self._routed._bits
            & ~self._exhausted._bits
        )
        if not mask:
            return []
        vcs = self.vcs
        port = self.port
        scheme = self.scheme
        dep = self._scheme_dep
        if self._per_output_fast:
            # Selection fused into the scan: keep only the best flit per
            # requested output while walking the mask.  An ascending-index
            # scan with strict ``>`` replacement reproduces the reference
            # ordering exactly (``sort_key`` ties on equal priority keep
            # the lowest VC index, i.e. the first one encountered).
            best: dict = {}
            count = 0
            while mask:
                low = mask & -mask
                mask ^= low
                vc_index = low.bit_length() - 1
                vc = vcs[vc_index]
                buffer = vc.buffer
                if not buffer:
                    raise RuntimeError(
                        f"status vector out of sync: vc {self.port}.{vc_index} "
                        "flagged available but empty"
                    )
                flit = buffer[0]
                if vc.prio_flit is not flit or vc.prio_conn != vc.connection_id:
                    vc.prio_base, vc.prio_div, vc.prio_key = scheme.cache_terms(
                        vc, flit
                    )
                    vc.prio_flit = flit
                    vc.prio_conn = vc.connection_id
                if dep == 1:
                    priority = vc.prio_base + (now - flit.created) / vc.prio_div
                elif dep == 0:
                    priority = vc.prio_base
                elif dep == 2:
                    priority = vc.prio_base + (
                        (vc.prio_key * 31 + now) * 2654435761 & 0xFFFFFFFF
                    ) / 2**32
                else:
                    priority = scheme.priority(vc, flit, now)
                priority += vc.round_offset
                count += 1
                output_port = vc.output_port
                incumbent = best.get(output_port)
                if incumbent is None or priority > incumbent[0]:
                    best[output_port] = (priority, vc_index, output_port)
            self.eligible_vcs_total += count
            winners = sorted(best.values(), key=_winner_sort_key)
            if len(winners) > limit:
                winners = winners[:limit]
            chosen = [
                Candidate(priority, port, vc_index, output_port)
                for priority, vc_index, output_port in winners
            ]
            self.candidates_offered += len(chosen)
            self.cycles_with_candidates += 1
            return chosen
        pool: List[Candidate] = []
        append = pool.append
        while mask:
            low = mask & -mask
            mask ^= low
            vc_index = low.bit_length() - 1
            vc = vcs[vc_index]
            buffer = vc.buffer
            if not buffer:
                raise RuntimeError(
                    f"status vector out of sync: vc {self.port}.{vc_index} "
                    "flagged available but empty"
                )
            flit = buffer[0]
            # Priority-term cache: valid while the same flit heads the VC
            # *under the same connection* (bind, release and route changes
            # reset prio_flit/prio_conn to None; the connection-id leg
            # catches contract mutations that keep the head flit parked).
            if vc.prio_flit is not flit or vc.prio_conn != vc.connection_id:
                vc.prio_base, vc.prio_div, vc.prio_key = scheme.cache_terms(
                    vc, flit
                )
                vc.prio_flit = flit
                vc.prio_conn = vc.connection_id
            if dep == 0:
                priority = vc.prio_base
            elif dep == 1:
                priority = vc.prio_base + (now - flit.created) / vc.prio_div
            elif dep == 2:
                priority = vc.prio_base + (
                    (vc.prio_key * 31 + now) * 2654435761 & 0xFFFFFFFF
                ) / 2**32
            else:
                priority = scheme.priority(vc, flit, now)
            append(
                Candidate(
                    priority + vc.round_offset, port, vc_index, vc.output_port
                )
            )
        return self._select(pool, limit)

    def _candidates_columnar(
        self, now: int, limit: Optional[int] = None
    ) -> List[Candidate]:
        """Vectorized candidate scan over the columnar state bank.

        Bit-identical to the fused scalar scan: same eligibility mask,
        same float evaluation order for the priorities, same deterministic
        tie-breaking (lowest VC index on equal priority), same counter
        updates.  Per-cycle schemes (``time_dependence == 'percycle'``)
        have no cacheable term structure, so they fall back to the scalar
        walk; the rotating and random selections reuse ``_select`` on a
        pool built from the arrays so the scan pointer and RNG draw
        stream advance exactly as in the scalar path.
        """
        if self._scheme_dep == 3:
            return (
                self._candidates_fused(now, limit)
                if self.fast_path
                else self._candidates_reference(now, limit)
            )
        if limit is None:
            limit = self._candidate_limit
        mask = (
            self._flits_available._bits
            & self._credits_available._bits
            & self._routed._bits
            & ~self._exhausted._bits
        )
        if not mask:
            return []
        cols = self._ensure_columnar()
        dirty = self._terms_dirty & mask
        if dirty:
            self._sync_terms(cols, dirty)
            self._terms_dirty &= ~dirty
        port = self.port
        if self._per_output_fast:
            # Selection runs on the output-group table: one row-wise
            # argmin/argmax finds every output's winner without sorting
            # the eligible set.  Static schemes with budgets unenforced
            # compare precomputed sortable keys (priorities cannot change
            # between term syncs); time-varying schemes evaluate the
            # whole priority column — three vector ops beat per-row
            # gathers once a meaningful slice of the bank is eligible.
            self.eligible_vcs_total += mask.bit_count()
            if self._scheme_dep == 0 and not self._enforce:
                order = cols.select_static_per_output(mask, limit)
                chosen = [
                    Candidate(priority, port, vc_index, output_port)
                    for priority, vc_index, output_port in zip(
                        cols.prio_base[order].tolist(),
                        order.tolist(),
                        cols.output_port[order].tolist(),
                    )
                ]
            else:
                full = cols.priorities_full(
                    now, self._scheme_dep, with_offset=self._enforce
                )
                rows, prs, present = cols.select_dynamic_per_output(full, mask)
                # An output's winner row already identifies its port (the
                # table row index *is* the output), so ordering and limit
                # truncation run on a plain list of at most num_ports
                # tuples — same key as the fused scan's winner sort.
                winners = [
                    (pr, row, out)
                    for out, (pr, row, ok) in enumerate(
                        zip(prs.tolist(), rows.tolist(), present.tolist())
                    )
                    if ok
                ]
                winners.sort(key=_winner_sort_key)
                if len(winners) > limit:
                    winners = winners[:limit]
                chosen = [
                    Candidate(pr, port, row, out) for pr, row, out in winners
                ]
            self.candidates_offered += len(chosen)
            self.cycles_with_candidates += 1
            return chosen
        if self._scheme_dep == 0 and not self._enforce:
            if self.selection == "priority":
                n = mask.bit_count()
                order = cols.select_static_priority(mask, n, limit)
                self.eligible_vcs_total += n
                chosen = [
                    Candidate(priority, port, vc_index, output_port)
                    for priority, vc_index, output_port in zip(
                        cols.prio_base[order].tolist(),
                        order.tolist(),
                        cols.output_port[order].tolist(),
                    )
                ]
                self.candidates_offered += len(chosen)
                self.cycles_with_candidates += 1
                return chosen
        idx = cols.indices_of(mask)
        priorities = cols.priorities(
            idx, now, self._scheme_dep, with_offset=self._enforce
        )
        out = cols.output_port[idx]
        if self.selection == "priority":
            self.eligible_vcs_total += idx.size
            order = cols.select_priority(idx, priorities, limit)
            chosen = [
                Candidate(priority, port, vc_index, output_port)
                for priority, vc_index, output_port in zip(
                    priorities[order].tolist(),
                    idx[order].tolist(),
                    out[order].tolist(),
                )
            ]
            self.candidates_offered += len(chosen)
            self.cycles_with_candidates += 1
            return chosen
        # Rotating / random: the selection itself is stateful (scan
        # pointer, RNG stream), so materialize the ascending-index pool
        # and reuse the scalar selector verbatim.
        pool = [
            Candidate(priority, port, vc_index, output_port)
            for priority, vc_index, output_port in zip(
                priorities.tolist(), idx.tolist(), out.tolist()
            )
        ]
        return self._select(pool, limit)

    def _sync_terms(self, cols: ColumnarState, bits: int) -> None:
        """Replay ``cache_terms`` for the dirty rows in ``bits``.

        Amortized exactly like the scalar cache: one scheme call per head
        flit change, not per cycle.  Updates the object-side cache too so
        the scalar and columnar engines stay interchangeable mid-run.
        """
        vcs = self.vcs
        scheme = self.scheme
        while bits:
            low = bits & -bits
            bits ^= low
            vc_index = low.bit_length() - 1
            vc = vcs[vc_index]
            buffer = vc.buffer
            if not buffer:
                raise RuntimeError(
                    f"status vector out of sync: vc {self.port}.{vc_index} "
                    "flagged available but empty"
                )
            flit = buffer[0]
            base, div, key = scheme.cache_terms(vc, flit)
            vc.prio_base, vc.prio_div, vc.prio_key = base, div, key
            vc.prio_flit = flit
            vc.prio_conn = vc.connection_id
            cols.set_terms(vc_index, base, div, key, flit.created)

    def _candidates_reference(
        self, now: int, limit: Optional[int] = None
    ) -> List[Candidate]:
        """The original per-VC candidate walk, kept as the identity oracle
        for the fused fast path (cf. the legacy kernel behind PR 1's
        ``allow_fast_forward=False``)."""
        if limit is None:
            limit = self._candidate_limit
        pool: List[Candidate] = []
        for vc_index in self._flits_available.indices():
            vc = self.vcs[vc_index]
            flit = vc.head()
            if flit is None:
                raise RuntimeError(
                    f"status vector out of sync: vc {self.port}.{vc_index} "
                    "flagged available but empty"
                )
            if vc.output_port < 0:
                # Not yet routed (a blocked best-effort packet waiting for
                # a downstream VC, §3.4): not schedulable.
                continue
            if not self.credit_check(vc.output_port, vc.output_vc):
                continue
            offset = self._round_gate(vc)
            if offset is None:
                continue
            priority = self.scheme.priority(vc, flit, now) + offset
            pool.append(Candidate(priority, self.port, vc_index, vc.output_port))
        if not pool:
            return []
        return self._select(pool, limit)

    def _select(self, pool: List[Candidate], limit: int) -> List[Candidate]:
        """Draw the offered candidate set from the eligible ``pool``."""
        self.eligible_vcs_total += len(pool)
        if len(pool) == 1 and self.selection == "priority":
            # Nothing to order or rotate; a one-flit port is the common
            # case at light load.
            chosen = pool
        elif self.selection == "random":
            chosen = (
                self.rng.sample(pool, limit) if len(pool) > limit else list(pool)
            )
            chosen.sort(key=Candidate.sort_key)
        elif self.selection == "rotating":
            chosen = self._rotating_select(pool, limit)
        elif self.selection == "per_output":
            chosen = self._per_output_select(pool, limit)
        elif len(pool) > limit:
            chosen = heapq.nsmallest(limit, pool, key=Candidate.sort_key)
        else:
            chosen = sorted(pool, key=Candidate.sort_key)
        self.candidates_offered += len(chosen)
        self.cycles_with_candidates += 1
        return chosen

    def _per_output_select(self, pool: List[Candidate], limit: int) -> List[Candidate]:
        """Best flit per requested output, then the top ``limit`` of those."""
        best_per_output: dict = {}
        for candidate in pool:
            incumbent = best_per_output.get(candidate.output_port)
            if incumbent is None or candidate.sort_key() < incumbent.sort_key():
                best_per_output[candidate.output_port] = candidate
        chosen = sorted(best_per_output.values(), key=Candidate.sort_key)
        return chosen[:limit]

    def _rotating_select(self, pool: List[Candidate], limit: int) -> List[Candidate]:
        """Round-robin scan from the rotating pointer, then priority order.

        The scan decides *which* VCs become candidates (fairly); the
        returned list is priority-sorted because downstream consumers
        (the perfect switch, greedy arbitration) treat earlier entries as
        preferred.

        The pointer advances on *every* scan, including when the whole
        pool fits within ``limit`` — a hardware rotating encoder steps
        regardless of how many requests it saw.  (It previously advanced
        only on oversubscribed scans, so after a quiet spell the scan
        resumed from a stale pointer and re-favoured the same low-index
        VCs.)
        """
        # Pool is built in ascending vc_index order; rotate it so the
        # scan starts at the pointer, then take the first ``limit``.
        start = 0
        for i, candidate in enumerate(pool):
            if candidate.vc_index >= self._scan_pointer:
                start = i
                break
        rotated = pool[start:] + pool[:start]
        chosen = rotated[:limit]
        self._scan_pointer = (chosen[-1].vc_index + 1) % self.config.vcs_per_port
        chosen.sort(key=Candidate.sort_key)
        return chosen
