"""Link scheduling (paper §4.1, §4.3, §4.4).

One link scheduler serves each physical input link.  Every flit cycle it
derives the set of schedulable virtual channels from the status bit
vectors (flits available AND credits available AND round budget not
exhausted) and offers the switch scheduler a small *candidate set* —
1 to 8 VCs in the paper's study — ordered by the active priority scheme.

Round-based accounting implements the paper's QoS discipline:

* CBR connections may consume at most their allocated flit cycles per
  round (``cbr_bandwidth_serviced`` gates them off once satisfied);
* VBR connections are served up to their permanent bandwidth at data
  priority, and between permanent and peak in a lower *excess* tier where
  connections are drained one at a time in priority order ("completely
  servicing the excess bandwidth of one connection before moving to the
  next one");
* control packets ride above all data, best-effort below.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, NamedTuple, Optional, Sequence

from ..sim.rng import SeededRng
from .config import RouterConfig
from .priority import PriorityScheme
from .status_vectors import StatusBank
from .virtual_channel import ServiceClass, VirtualChannel

# Priority offset pushing VBR excess-bandwidth service below every
# in-contract data stream but far above best-effort traffic (whose class
# offset is -1e12).
VBR_EXCESS_OFFSET = -1e9


def _winner_sort_key(winner):
    """Per-output winner order: same as ``Candidate.sort_key`` restricted
    to one input port — descending priority, then lowest VC index."""
    return (-winner[0], winner[1])


class Candidate(NamedTuple):
    """One virtual channel offered to the switch scheduler this cycle."""

    priority: float
    input_port: int
    vc_index: int
    output_port: int

    def sort_key(self):
        """Descending priority, then lowest VC index (deterministic)."""
        return (-self.priority, self.input_port, self.vc_index)


class LinkScheduler:
    """Candidate selection and round accounting for one input link."""

    def __init__(
        self,
        port: int,
        config: RouterConfig,
        vcs: Sequence[VirtualChannel],
        status: StatusBank,
        scheme: PriorityScheme,
        credit_check: Callable[[int, int], bool],
        selection: str = "priority",
        rng: Optional[SeededRng] = None,
        fast_path: bool = True,
    ) -> None:
        """``credit_check(output_port, output_vc)`` must report downstream
        credit.

        ``selection`` picks how the candidate set is drawn from the
        eligible set (the bit-vector AND of §4.1):

        * ``'rotating'`` — the MMR: a round-robin scan over eligible VCs,
          as a hardware priority encoder with a rotating start pointer
          produces.  Candidate choice is fair; the priority *scheme*
          decides conflicts.  This keeps switch utilisation insensitive to
          the priority scheme, as §5.2 observes.
        * ``'priority'`` — take the C highest-priority flits (ablation;
          with non-aging priorities a stuck flit can mask its whole port).
        * ``'random'`` — uniformly random C (the Autonet/DEC baseline).
        * ``'per_output'`` — the highest-priority eligible flit for each
          requested output link, then the top C of those.  This is the
          natural reading of the §4.1 bit-vector hardware (one vector
          per condition, grouped per output) and prevents one stuck flit
          from masking flits bound for other outputs.
        """
        if selection not in ("rotating", "priority", "random", "per_output"):
            raise ValueError(f"unknown selection mode {selection!r}")
        if selection == "random" and rng is None:
            raise ValueError("random selection requires an rng")
        self.port = port
        self.config = config
        self.vcs = vcs
        self.status = status
        self.scheme = scheme
        self.credit_check = credit_check
        self.selection = selection
        self.rng = rng
        #: Fused bit-parallel candidate walk (the default).  The reference
        #: per-VC walk is kept behind ``fast_path=False`` so perf_gate can
        #: prove the two produce bit-identical streams.
        self.fast_path = fast_path
        self.candidates_offered = 0
        self.cycles_with_candidates = 0
        # Size of the eligible set before candidate-set truncation, summed
        # per scan (sampled by the flight recorder).  Fast path counts set
        # bits in the fused mask; reference counts the pool it built —
        # provably equal while the vectors are in sync.
        self.eligible_vcs_total = 0
        # VBR service-tier accounting (§4.4): flits granted within the
        # permanent allocation vs in the excess (permanent..peak) tier.
        self.vbr_permanent_grants = 0
        self.vbr_excess_grants = 0
        # Rotating-scan start pointer (the hardware round-robin encoder).
        self._scan_pointer = 0
        # Hot-path handles: candidate selection and round accounting run
        # every busy cycle, so resolve the status vectors once.
        self._flits_available = status.vector("flits_available")
        self._credits_available = status.vector("credits_available")
        self._routed = status.vector("routed")
        self._exhausted = status.vector("round_budget_exhausted")
        self._cbr_serviced = status.vector("cbr_bandwidth_serviced")
        self._vbr_serviced = status.vector("vbr_bandwidth_serviced")
        self._connection_active = status.vector("connection_active")
        self._candidate_limit = config.candidates
        self._enforce = config.enforce_round_budgets
        # Integer dispatch code for the priority scheme's time dependence
        # (see PriorityScheme.time_dependence); keeps the fast-path inner
        # loop to an int compare instead of a string compare.
        self._scheme_dep = {"static": 0, "aging": 1, "hashed": 2}.get(
            scheme.time_dependence, 3
        )
        # The per-output mode folds its selection into the fused scan
        # (tracking the best flit per output while walking the mask)
        # instead of building the full pool and reducing it afterwards.
        self._per_output_fast = selection == "per_output"

    # ----- round accounting --------------------------------------------------

    def on_round_boundary(self) -> None:
        """Reset per-round serviced counters and the serviced bit vectors.

        One pass over the OR of the three vectors that can mark a VC as
        touched this round — a VC both serviced and active is visited
        once, not three times.
        """
        vcs = self.vcs
        bits = (
            self._cbr_serviced._bits
            | self._vbr_serviced._bits
            | self._connection_active._bits
        )
        while bits:
            low = bits & -bits
            bits ^= low
            vc = vcs[low.bit_length() - 1]
            vc.serviced_this_round = 0
            self.refresh_round_state(vc)
        self._cbr_serviced.clear_all()
        self._vbr_serviced.clear_all()

    def on_flit_serviced(self, vc: VirtualChannel) -> None:
        """Account one transmitted flit against the VC's round budget."""
        vc.serviced_this_round += 1
        if vc.service_class is ServiceClass.CBR:
            if vc.allocated_cycles and vc.serviced_this_round >= vc.allocated_cycles:
                self._cbr_serviced.set(vc.index)
        elif vc.service_class is ServiceClass.VBR:
            if vc.serviced_this_round <= vc.permanent_cycles:
                self.vbr_permanent_grants += 1
            else:
                self.vbr_excess_grants += 1
            if vc.peak_cycles and vc.serviced_this_round >= vc.peak_cycles:
                self._vbr_serviced.set(vc.index)
        if self._enforce:
            self.refresh_round_state(vc)

    def refresh_round_state(self, vc: VirtualChannel) -> None:
        """Recompute the VC's exhausted bit and cached tier offset.

        Mirrors :meth:`_round_gate` exactly: ``round_budget_exhausted``
        holds the cases where the gate returns None, ``vc.round_offset``
        the offset it would return otherwise.  Called whenever an input of
        the gate changes — a flit serviced, a round boundary, a (re)bind
        or renegotiation — so the fast path never evaluates the gate.
        """
        exhausted = False
        offset = 0.0
        if self._enforce:
            service_class = vc.service_class
            if service_class is ServiceClass.CBR:
                exhausted = bool(vc.allocated_cycles) and (
                    vc.serviced_this_round >= vc.allocated_cycles
                )
            elif service_class is ServiceClass.VBR:
                if vc.serviced_this_round < vc.permanent_cycles:
                    pass
                elif vc.peak_cycles and vc.serviced_this_round >= vc.peak_cycles:
                    exhausted = True
                elif self.config.vbr_excess_discipline == "priority":
                    offset = VBR_EXCESS_OFFSET + vc.static_priority * 1e6
                else:
                    offset = VBR_EXCESS_OFFSET
        self._exhausted.assign(vc.index, exhausted)
        vc.round_offset = offset

    # ----- candidate selection -----------------------------------------------

    def _round_gate(self, vc: VirtualChannel) -> Optional[float]:
        """Priority offset for the VC's current round tier, or None when
        the VC has exhausted its round budget."""
        if not self.config.enforce_round_budgets:
            return 0.0
        if vc.service_class is ServiceClass.CBR:
            if vc.allocated_cycles and vc.serviced_this_round >= vc.allocated_cycles:
                return None
            return 0.0
        if vc.service_class is ServiceClass.VBR:
            if vc.serviced_this_round < vc.permanent_cycles:
                return 0.0
            if vc.peak_cycles and vc.serviced_this_round >= vc.peak_cycles:
                return None
            if self.config.vbr_excess_discipline == "priority":
                # The paper's discipline: the connection's stored VBR
                # priority dominates, so one connection's excess is fully
                # drained before the next one is served.
                return VBR_EXCESS_OFFSET + vc.static_priority * 1e6
            # 'shared': excess flits keep competing under the normal
            # (aging) priority, interleaving service across connections.
            return VBR_EXCESS_OFFSET
        # Control and best-effort traffic carry no round budget; the class
        # offsets in the priority scheme place them.
        return 0.0

    def eligible_vcs(self) -> List[int]:
        """Indices of VCs passing the bit-vector schedulability test."""
        return list(self.status.eligible_for_service().indices())

    def fused_mask(self) -> int:
        """The fast path's eligibility mask as a raw integer:
        ``flits & credits & routed & ~exhausted``."""
        return (
            self._flits_available._bits
            & self._credits_available._bits
            & self._routed._bits
            & ~self._exhausted._bits
        )

    def candidates(self, now: int, limit: Optional[int] = None) -> List[Candidate]:
        """The candidate set offered to the switch scheduler this cycle."""
        if not self.fast_path:
            return self._candidates_reference(now, limit)
        if limit is None:
            limit = self._candidate_limit
        mask = (
            self._flits_available._bits
            & self._credits_available._bits
            & self._routed._bits
            & ~self._exhausted._bits
        )
        if not mask:
            return []
        vcs = self.vcs
        port = self.port
        scheme = self.scheme
        dep = self._scheme_dep
        if self._per_output_fast:
            # Selection fused into the scan: keep only the best flit per
            # requested output while walking the mask.  An ascending-index
            # scan with strict ``>`` replacement reproduces the reference
            # ordering exactly (``sort_key`` ties on equal priority keep
            # the lowest VC index, i.e. the first one encountered).
            best: dict = {}
            count = 0
            while mask:
                low = mask & -mask
                mask ^= low
                vc_index = low.bit_length() - 1
                vc = vcs[vc_index]
                buffer = vc.buffer
                if not buffer:
                    raise RuntimeError(
                        f"status vector out of sync: vc {self.port}.{vc_index} "
                        "flagged available but empty"
                    )
                flit = buffer[0]
                if vc.prio_flit is not flit:
                    vc.prio_base, vc.prio_div, vc.prio_key = scheme.cache_terms(
                        vc, flit
                    )
                    vc.prio_flit = flit
                if dep == 1:
                    priority = vc.prio_base + (now - flit.created) / vc.prio_div
                elif dep == 0:
                    priority = vc.prio_base
                elif dep == 2:
                    priority = vc.prio_base + (
                        (vc.prio_key * 31 + now) * 2654435761 & 0xFFFFFFFF
                    ) / 2**32
                else:
                    priority = scheme.priority(vc, flit, now)
                priority += vc.round_offset
                count += 1
                output_port = vc.output_port
                incumbent = best.get(output_port)
                if incumbent is None or priority > incumbent[0]:
                    best[output_port] = (priority, vc_index, output_port)
            self.eligible_vcs_total += count
            winners = sorted(best.values(), key=_winner_sort_key)
            if len(winners) > limit:
                winners = winners[:limit]
            chosen = [
                Candidate(priority, port, vc_index, output_port)
                for priority, vc_index, output_port in winners
            ]
            self.candidates_offered += len(chosen)
            self.cycles_with_candidates += 1
            return chosen
        pool: List[Candidate] = []
        append = pool.append
        while mask:
            low = mask & -mask
            mask ^= low
            vc_index = low.bit_length() - 1
            vc = vcs[vc_index]
            buffer = vc.buffer
            if not buffer:
                raise RuntimeError(
                    f"status vector out of sync: vc {self.port}.{vc_index} "
                    "flagged available but empty"
                )
            flit = buffer[0]
            # Priority-term cache: valid while the same flit heads the VC
            # (identity check doubles as the dirty bit — bind, release and
            # route changes reset prio_flit to None).
            if vc.prio_flit is not flit:
                vc.prio_base, vc.prio_div, vc.prio_key = scheme.cache_terms(
                    vc, flit
                )
                vc.prio_flit = flit
            if dep == 0:
                priority = vc.prio_base
            elif dep == 1:
                priority = vc.prio_base + (now - flit.created) / vc.prio_div
            elif dep == 2:
                priority = vc.prio_base + (
                    (vc.prio_key * 31 + now) * 2654435761 & 0xFFFFFFFF
                ) / 2**32
            else:
                priority = scheme.priority(vc, flit, now)
            append(
                Candidate(
                    priority + vc.round_offset, port, vc_index, vc.output_port
                )
            )
        return self._select(pool, limit)

    def _candidates_reference(
        self, now: int, limit: Optional[int] = None
    ) -> List[Candidate]:
        """The original per-VC candidate walk, kept as the identity oracle
        for the fused fast path (cf. the legacy kernel behind PR 1's
        ``allow_fast_forward=False``)."""
        if limit is None:
            limit = self._candidate_limit
        pool: List[Candidate] = []
        for vc_index in self._flits_available.indices():
            vc = self.vcs[vc_index]
            flit = vc.head()
            if flit is None:
                raise RuntimeError(
                    f"status vector out of sync: vc {self.port}.{vc_index} "
                    "flagged available but empty"
                )
            if vc.output_port < 0:
                # Not yet routed (a blocked best-effort packet waiting for
                # a downstream VC, §3.4): not schedulable.
                continue
            if not self.credit_check(vc.output_port, vc.output_vc):
                continue
            offset = self._round_gate(vc)
            if offset is None:
                continue
            priority = self.scheme.priority(vc, flit, now) + offset
            pool.append(Candidate(priority, self.port, vc_index, vc.output_port))
        if not pool:
            return []
        return self._select(pool, limit)

    def _select(self, pool: List[Candidate], limit: int) -> List[Candidate]:
        """Draw the offered candidate set from the eligible ``pool``."""
        self.eligible_vcs_total += len(pool)
        if len(pool) == 1 and self.selection == "priority":
            # Nothing to order or rotate; a one-flit port is the common
            # case at light load.
            chosen = pool
        elif self.selection == "random":
            chosen = (
                self.rng.sample(pool, limit) if len(pool) > limit else list(pool)
            )
            chosen.sort(key=Candidate.sort_key)
        elif self.selection == "rotating":
            chosen = self._rotating_select(pool, limit)
        elif self.selection == "per_output":
            chosen = self._per_output_select(pool, limit)
        elif len(pool) > limit:
            chosen = heapq.nsmallest(limit, pool, key=Candidate.sort_key)
        else:
            chosen = sorted(pool, key=Candidate.sort_key)
        self.candidates_offered += len(chosen)
        self.cycles_with_candidates += 1
        return chosen

    def _per_output_select(self, pool: List[Candidate], limit: int) -> List[Candidate]:
        """Best flit per requested output, then the top ``limit`` of those."""
        best_per_output: dict = {}
        for candidate in pool:
            incumbent = best_per_output.get(candidate.output_port)
            if incumbent is None or candidate.sort_key() < incumbent.sort_key():
                best_per_output[candidate.output_port] = candidate
        chosen = sorted(best_per_output.values(), key=Candidate.sort_key)
        return chosen[:limit]

    def _rotating_select(self, pool: List[Candidate], limit: int) -> List[Candidate]:
        """Round-robin scan from the rotating pointer, then priority order.

        The scan decides *which* VCs become candidates (fairly); the
        returned list is priority-sorted because downstream consumers
        (the perfect switch, greedy arbitration) treat earlier entries as
        preferred.

        The pointer advances on *every* scan, including when the whole
        pool fits within ``limit`` — a hardware rotating encoder steps
        regardless of how many requests it saw.  (It previously advanced
        only on oversubscribed scans, so after a quiet spell the scan
        resumed from a stale pointer and re-favoured the same low-index
        VCs.)
        """
        # Pool is built in ascending vc_index order; rotate it so the
        # scan starts at the pointer, then take the first ``limit``.
        start = 0
        for i, candidate in enumerate(pool):
            if candidate.vc_index >= self._scan_pointer:
                start = i
                break
        rotated = pool[start:] + pool[:start]
        chosen = rotated[:limit]
        self._scan_pointer = (chosen[-1].vc_index + 1) % self.config.vcs_per_port
        chosen.sort(key=Candidate.sort_key)
        return chosen
