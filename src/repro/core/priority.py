"""Priority schemes for link/switch scheduling (paper §4.4, §5.1).

The MMR arbitrates switch output conflicts with *dynamic priority biasing*:
the priority of the flit at the head of each input virtual channel is
recomputed every flit cycle, growing at a rate that depends on the QoS
metric of its connection.  The paper's studied scheme biases by the ratio
of the delay a flit has experienced at the switch to the inter-arrival
time of its connection, so faster connections gain priority more quickly.

The *fixed* scheme (the paper's comparison point) is the same arbitration
with the growth switched off: a flit's draws carry no memory of how long
it has waited.  Stickier non-aging variants (frozen per-flit draws,
static per-connection priorities) are provided as ablations.
"""

from __future__ import annotations

import abc

from .flit import Flit
from .virtual_channel import ServiceClass, VirtualChannel

# Traffic classes are strictly ordered: control packets above data streams,
# best-effort below (paper §3.4).  The offsets dominate any intra-class
# priority value so the ordering is absolute.
CLASS_OFFSETS = {
    ServiceClass.CONTROL: 1e12,
    ServiceClass.CBR: 0.0,
    ServiceClass.VBR: 0.0,
    ServiceClass.BEST_EFFORT: -1e12,
}


class PriorityScheme(abc.ABC):
    """Computes the scheduling priority of a head flit each flit cycle."""

    name: str = "abstract"

    #: How the priority of a fixed head flit varies with ``now``.  The
    #: link scheduler's fast path uses this to cache the flit-constant
    #: terms (via :meth:`cache_terms`) and re-derive only the time-varying
    #: part each cycle, bit-identically to :meth:`priority`:
    #:
    #: * ``"static"``  — ``base`` (constant while the flit heads the VC);
    #: * ``"aging"``   — ``base + (now - flit.created) / div``;
    #: * ``"hashed"``  — ``base + hash(key * 31 + now)`` with the Knuth
    #:   multiplicative hash of :func:`_hash_priority`;
    #: * ``"percycle"``— no cacheable structure; call :meth:`priority`.
    time_dependence: str = "percycle"

    @abc.abstractmethod
    def priority(self, vc: VirtualChannel, flit: Flit, now: int) -> float:
        """Priority of ``flit`` (head of ``vc``) at cycle ``now``.

        Larger values win arbitration.  Implementations must not mutate
        the VC or the flit.
        """

    def cache_terms(self, vc: VirtualChannel, flit: Flit):
        """``(base, div, key)`` for the fast path's cached recomputation.

        Only meaningful when :attr:`time_dependence` is not ``"percycle"``.
        The terms must reproduce :meth:`priority` exactly — same floating
        point operations in the same order — so fast-path candidate
        ordering stays bit-identical to the reference path.
        """
        return (0.0, 1.0, 0)

    def with_class_offset(self, vc: VirtualChannel, base: float) -> float:
        """Apply the absolute traffic-class ordering on top of ``base``."""
        return CLASS_OFFSETS[vc.service_class] + base

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _hash_priority(key: int) -> float:
    """Deterministic pseudo-random priority in [0, 1) from an integer key.

    Knuth multiplicative hashing: reproducible without threading an RNG
    through the data path.
    """
    return ((key * 2654435761) & 0xFFFFFFFF) / 2**32


def _flit_key(flit: Flit) -> int:
    """A run-stable identity for a flit.

    Built from (connection, sequence) rather than the global flit id so
    two simulations constructed identically draw identical priorities —
    the global id counter keeps advancing across runs in one process.
    """
    return (flit.connection_id * 1000003) ^ (flit.sequence * 7919)


class FixedPriority(PriorityScheme):
    """Un-biased priority: waiting earns a flit nothing.

    This is the paper's comparison baseline.  §4.4's taxonomy is about
    *growth*: under biasing a head flit's priority is "updated
    periodically as often as every flit cycle" at a QoS-dependent rate;
    the fixed scheme is the same arbitration with the growth switched
    off, so conflicts are settled by draws that carry no memory of how
    long a flit has waited.  Each (flit, cycle) pair hashes to a fresh
    uniform draw — starvation-free, but heavy connections receive no
    systematic preference, which is what produces the worse delay and
    jitter of Figures 3-5.
    """

    name = "fixed"
    time_dependence = "hashed"

    def priority(self, vc: VirtualChannel, flit: Flit, now: int) -> float:
        return self.with_class_offset(
            vc, _hash_priority(_flit_key(flit) * 31 + now)
        )

    def cache_terms(self, vc: VirtualChannel, flit: Flit):
        return (CLASS_OFFSETS[vc.service_class], 1.0, _flit_key(flit))


class FrozenFlitPriority(PriorityScheme):
    """Per-flit priority drawn once at arrival, frozen thereafter.

    An ablation between :class:`FixedPriority` and
    :class:`StaticConnectionPriority`: arbitration outcomes are sticky
    for a flit's whole wait, so an unlucky draw can hold a flit (and its
    FIFO successors) back indefinitely — measurably unstable at loads the
    per-cycle draw sustains.
    """

    name = "frozen"
    time_dependence = "static"

    def priority(self, vc: VirtualChannel, flit: Flit, now: int) -> float:
        return self.with_class_offset(vc, _hash_priority(_flit_key(flit)))

    def cache_terms(self, vc: VirtualChannel, flit: Flit):
        base = CLASS_OFFSETS[vc.service_class] + _hash_priority(_flit_key(flit))
        return (base, 1.0, 0)


class StaticConnectionPriority(PriorityScheme):
    """Per-connection static priority (an ablation, not in the paper).

    The harshest possible fixed scheme: one global order over connections.
    Low-priority connections sharing a loaded output can starve outright,
    which is why router designers avoid pure static priority.
    """

    name = "static"
    time_dependence = "static"

    def priority(self, vc: VirtualChannel, flit: Flit, now: int) -> float:
        return self.with_class_offset(vc, vc.static_priority)

    def cache_terms(self, vc: VirtualChannel, flit: Flit):
        return (CLASS_OFFSETS[vc.service_class] + vc.static_priority, 1.0, 0)


class BiasedPriority(PriorityScheme):
    """Delay / inter-arrival biased priority (the paper's scheme).

    priority = (cycles the head flit has waited) / (connection flit
    inter-arrival period).  A 120 Mbps connection's priority grows ~2000x
    faster than a 64 Kbps connection's, so each connection tends to be
    served within a small multiple of its own period — equalising delay
    *relative to connection rate*, which is what bounds jitter.
    """

    name = "biased"
    time_dependence = "aging"

    def priority(self, vc: VirtualChannel, flit: Flit, now: int) -> float:
        waited = now - flit.created
        return self.with_class_offset(vc, waited / vc.interarrival_cycles)

    def cache_terms(self, vc: VirtualChannel, flit: Flit):
        return (CLASS_OFFSETS[vc.service_class], vc.interarrival_cycles, 0)


class AgePriority(PriorityScheme):
    """Pure age-based priority (time spent waiting, rate-blind).

    Not in the paper's evaluation; included as an ablation between fixed
    and biased: it is dynamic but ignores the QoS metric, so slow and fast
    connections age at the same rate.
    """

    name = "age"
    time_dependence = "aging"

    def priority(self, vc: VirtualChannel, flit: Flit, now: int) -> float:
        return self.with_class_offset(vc, float(now - flit.created))

    def cache_terms(self, vc: VirtualChannel, flit: Flit):
        # waited / 1.0 == float(waited) exactly, so the aging fast path
        # reproduces priority() bit for bit.
        return (CLASS_OFFSETS[vc.service_class], 1.0, 0)


class RatePriority(PriorityScheme):
    """Static priority proportional to connection rate (rate-monotonic).

    Another ablation: like fixed, it never ages, but the static ordering
    follows connection speed rather than an arbitrary assignment.
    """

    name = "rate"
    time_dependence = "static"

    def priority(self, vc: VirtualChannel, flit: Flit, now: int) -> float:
        return self.with_class_offset(vc, 1.0 / vc.interarrival_cycles)

    def cache_terms(self, vc: VirtualChannel, flit: Flit):
        base = CLASS_OFFSETS[vc.service_class] + 1.0 / vc.interarrival_cycles
        return (base, 1.0, 0)


SCHEMES = {
    scheme.name: scheme
    for scheme in (
        FixedPriority,
        FrozenFlitPriority,
        BiasedPriority,
        AgePriority,
        RatePriority,
        StaticConnectionPriority,
    )
}


def make_priority_scheme(name: str) -> PriorityScheme:
    """Instantiate a priority scheme by name ('fixed', 'biased', ...)."""
    try:
        return SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown priority scheme {name!r}; known: {sorted(SCHEMES)}"
        ) from None
