"""Core MMR router architecture: the paper's primary contribution."""

from .admission import AdmissionController, AdmissionDecision
from .bandwidth import AllocationError, BandwidthAllocator, BandwidthRequest
from .config import RouterConfig
from .costmodel import (
    CrossbarCost,
    CrossbarOrganisation,
    arbiter_delay,
    area_ratio,
    crossbar_cost,
    multiplexor_delay,
    scheduling_rate_ns,
    vcm_cycle_budget,
)
from .crossbar import CrossbarError, MultiplexedCrossbar, PerfectSwitch
from .flit import ControlCommand, Flit, FlitType, Phit, fragment_into_phits
from .link import (
    ControlWord,
    LinkReceiver,
    LinkTimingConfig,
    LinkTransmitter,
    transfer_flit,
)
from .flow_control import CreditError, LinkFlowControl
from .link_scheduler import Candidate, LinkScheduler
from .phit_buffer import PhitBuffer
from .priority import (
    AgePriority,
    BiasedPriority,
    FixedPriority,
    PriorityScheme,
    RatePriority,
    make_priority_scheme,
)
from .rau import ChannelMapping, ChannelMappingStore, MappingError, RoutingArbitrationUnit
from .router import InputPort, Router
from .status_vectors import ActivitySet, BitVector, StatusBank
from .switch_scheduler import (
    DecScheduler,
    Grant,
    GreedyPriorityScheduler,
    PerfectSwitchScheduler,
    SwitchScheduler,
    validate_grants,
)
from .vcm import AddressGenerator, VcmGeometry, VirtualChannelMemory
from .vcm_timing import (
    AccessTimeline,
    VcmTimingConfig,
    required_modules,
    schedule_flit_stream,
    sequential_flit_addresses,
)
from .virtual_channel import ServiceClass, VirtualChannel

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AllocationError",
    "BandwidthAllocator",
    "BandwidthRequest",
    "RouterConfig",
    "CrossbarCost",
    "CrossbarOrganisation",
    "arbiter_delay",
    "area_ratio",
    "crossbar_cost",
    "multiplexor_delay",
    "scheduling_rate_ns",
    "vcm_cycle_budget",
    "CrossbarError",
    "MultiplexedCrossbar",
    "PerfectSwitch",
    "ControlCommand",
    "Flit",
    "FlitType",
    "Phit",
    "fragment_into_phits",
    "ControlWord",
    "LinkReceiver",
    "LinkTimingConfig",
    "LinkTransmitter",
    "transfer_flit",
    "CreditError",
    "LinkFlowControl",
    "Candidate",
    "LinkScheduler",
    "PhitBuffer",
    "AgePriority",
    "BiasedPriority",
    "FixedPriority",
    "PriorityScheme",
    "RatePriority",
    "make_priority_scheme",
    "ChannelMapping",
    "ChannelMappingStore",
    "MappingError",
    "RoutingArbitrationUnit",
    "InputPort",
    "Router",
    "ActivitySet",
    "BitVector",
    "StatusBank",
    "DecScheduler",
    "Grant",
    "GreedyPriorityScheduler",
    "PerfectSwitchScheduler",
    "SwitchScheduler",
    "validate_grants",
    "AddressGenerator",
    "VcmGeometry",
    "VirtualChannelMemory",
    "AccessTimeline",
    "VcmTimingConfig",
    "required_modules",
    "schedule_flit_stream",
    "sequential_flit_addresses",
    "ServiceClass",
    "VirtualChannel",
]
