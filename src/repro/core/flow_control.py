"""Link-level virtual channel flow control (paper §3.1, §4.2).

The MMR uses credit-based flow control per virtual channel: a flit may only
be forwarded when the downstream buffer for its VC has a free slot, so no
flit is ever dropped.  Flit buffers are small, so back-pressure propagates
quickly, eventually reaching the source network interface, which is how the
router exports congestion information (and how frame-abort decisions are
driven, §4.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .status_vectors import BitVector


class CreditError(RuntimeError):
    """Raised on credit protocol violations (send without credit, etc.)."""


class LinkFlowControl:
    """Credit state for one output link's downstream virtual channels.

    ``credits[vc]`` counts free flit slots in the next router's input
    buffer for that VC.  A sink link (network edge, or the single-router
    harness) is modelled with ``infinite=True``: credits never deplete.
    The ``credits_available`` bit vector mirrors the counters so the link
    scheduler can fold credit state into its bit-parallel candidate
    selection.
    """

    def __init__(
        self,
        num_vcs: int,
        buffer_depth: int,
        infinite: bool = False,
    ) -> None:
        if num_vcs <= 0:
            raise ValueError(f"num_vcs must be positive, got {num_vcs}")
        if buffer_depth <= 0:
            raise ValueError(f"buffer_depth must be positive, got {buffer_depth}")
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.infinite = infinite
        self._credits: List[int] = [buffer_depth] * num_vcs
        self.credits_available = BitVector(num_vcs)
        self.credits_available.set_all()
        # Invoked as listener(vc, available) on every 0<->1 credit
        # transition, so the owning router can mirror downstream credit
        # state into the input port's ``credits_available`` status vector
        # instead of polling per scheduling decision.
        self.availability_listener: Optional[Callable[[int, bool], None]] = None
        # Stall accounting: how often a scheduling decision was blocked on
        # credits (useful for diagnosing back-pressure).
        self.credit_stalls = 0

    def credits(self, vc: int) -> int:
        """Remaining credits for ``vc``."""
        self._check(vc)
        return self._credits[vc]

    def has_credit(self, vc: int) -> bool:
        """True when a flit may be sent on ``vc`` right now."""
        self._check(vc)
        return self.infinite or self._credits[vc] > 0

    def consume(self, vc: int) -> None:
        """Spend one credit: a flit was forwarded downstream on ``vc``."""
        self._check(vc)
        if self.infinite:
            return
        if self._credits[vc] <= 0:
            raise CreditError(
                f"flit sent on vc {vc} without credit: protocol violation"
            )
        self._credits[vc] -= 1
        if self._credits[vc] == 0:
            self.credits_available.clear(vc)
            if self.availability_listener is not None:
                self.availability_listener(vc, False)

    def replenish(self, vc: int) -> None:
        """Return one credit: downstream freed a buffer slot on ``vc``."""
        self._check(vc)
        if self.infinite:
            return
        if self._credits[vc] >= self.buffer_depth:
            raise CreditError(
                f"credit overflow on vc {vc}: more credits returned than "
                f"buffer slots ({self.buffer_depth})"
            )
        was_blocked = self._credits[vc] == 0
        self._credits[vc] += 1
        if was_blocked:
            # The availability bit only changes on the 0 -> 1 transition;
            # skipping the redundant set keeps this per-flit path off the
            # wide bit vector (one big-int allocation per call at high VC
            # counts).
            self.credits_available.set(vc)
            if self.availability_listener is not None:
                self.availability_listener(vc, True)

    def note_stall(self) -> None:
        """Record that scheduling skipped a flit for lack of credit."""
        self.credit_stalls += 1

    def in_flight(self, vc: int) -> int:
        """Flits sent but not yet acknowledged as drained downstream."""
        self._check(vc)
        if self.infinite:
            return 0
        return self.buffer_depth - self._credits[vc]

    def _check(self, vc: int) -> None:
        if not 0 <= vc < self.num_vcs:
            raise IndexError(f"vc {vc} out of range [0, {self.num_vcs})")
