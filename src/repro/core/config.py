"""Router configuration: the paper's quantitative design parameters.

Section 2 of the paper lists the quantitative parameters a designer must
fix: network size, link bandwidth, router degree, clock frequency, buffer
size and number of virtual channels.  :class:`RouterConfig` gathers them in
one validated, immutable place and derives the timing quantities the
evaluation section reports in (flit cycles and microseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RouterConfig:
    """Static configuration of one MMR router.

    Defaults reproduce the evaluation configuration of the paper: an 8x8
    router with 256 virtual channels per input port, 1.24 Gbps physical
    links and 128-bit flits (flit cycle ~103 ns).
    """

    num_ports: int = 8
    vcs_per_port: int = 256
    link_rate_bps: float = 1.24e9
    flit_size_bits: int = 128
    phit_size_bits: int = 16
    # Depth of each virtual channel buffer, in flits.  The paper argues for
    # small fixed-size buffers per VC.
    vc_buffer_flits: int = 4
    # Number of interleaved RAM modules forming the virtual channel memory.
    memory_modules: int = 8
    # Round (frame) length factor: a round is ``round_factor * vcs_per_port``
    # flit cycles (paper: K > 1).
    round_factor: int = 2
    # Candidate set size the link scheduler offers the switch scheduler
    # (paper studies 1, 2, 4 and 8).
    candidates: int = 8
    # VBR admission concurrency factor (paper §4.2): the sum of peak
    # bandwidths may exceed a round by this factor.
    vbr_concurrency_factor: float = 2.0
    # Fraction of each round reserved for best-effort traffic to prevent
    # starvation (paper §4.2, optional).
    best_effort_reserved_fraction: float = 0.0
    # Internal data path width in bits (word-level pipelining, §3.1).
    datapath_width_bits: int = 64
    # VBR excess-bandwidth service discipline (§4.3).  'priority' is the
    # paper's choice: "completely servicing the excess bandwidth of one
    # connection before moving to the next one", highest priority first.
    # 'shared' is the alternative the paper alludes to ("other service
    # disciplines are possible"): excess flits compete under the normal
    # aging priority, interleaving service across connections.
    vbr_excess_discipline: str = "priority"
    # Enforce per-round bandwidth budgets in the link scheduler (§4.3).
    # The paper's preliminary CBR experiments (§5.1) use "a simple link
    # scheduling algorithm" driven purely by priorities, so the evaluation
    # harness disables the caps; QoS/VBR scenarios enable them.
    enforce_round_budgets: bool = True

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ValueError(f"num_ports must be positive, got {self.num_ports}")
        if self.vcs_per_port <= 0:
            raise ValueError(f"vcs_per_port must be positive, got {self.vcs_per_port}")
        if self.link_rate_bps <= 0:
            raise ValueError(f"link_rate_bps must be positive, got {self.link_rate_bps}")
        if self.flit_size_bits <= 0:
            raise ValueError(f"flit_size_bits must be positive, got {self.flit_size_bits}")
        if self.phit_size_bits <= 0 or self.phit_size_bits > self.flit_size_bits:
            raise ValueError(
                "phit_size_bits must be in (0, flit_size_bits]: "
                f"{self.phit_size_bits} vs {self.flit_size_bits}"
            )
        if self.flit_size_bits % self.phit_size_bits:
            raise ValueError(
                "flit size must be a whole number of phits: "
                f"{self.flit_size_bits} / {self.phit_size_bits}"
            )
        if self.vc_buffer_flits <= 0:
            raise ValueError(f"vc_buffer_flits must be positive, got {self.vc_buffer_flits}")
        if self.memory_modules <= 0:
            raise ValueError(f"memory_modules must be positive, got {self.memory_modules}")
        if self.round_factor < 1:
            raise ValueError(
                f"round_factor must be >= 1 (paper uses K > 1), got {self.round_factor}"
            )
        if self.candidates <= 0:
            raise ValueError(f"candidates must be positive, got {self.candidates}")
        if self.vbr_concurrency_factor < 1.0:
            raise ValueError(
                "vbr_concurrency_factor must be >= 1, got "
                f"{self.vbr_concurrency_factor}"
            )
        if not 0.0 <= self.best_effort_reserved_fraction < 1.0:
            raise ValueError(
                "best_effort_reserved_fraction must be in [0, 1), got "
                f"{self.best_effort_reserved_fraction}"
            )
        if self.vbr_excess_discipline not in ("priority", "shared"):
            raise ValueError(
                "vbr_excess_discipline must be 'priority' or 'shared', got "
                f"{self.vbr_excess_discipline!r}"
            )

    # ----- derived timing quantities -------------------------------------

    @property
    def flit_cycle_seconds(self) -> float:
        """Duration of one flit cycle: flit size over link rate.

        For the paper's configuration this is 128 / 1.24e9 ~= 103 ns, the
        time to transmit one flit across the router or a link.
        """
        return self.flit_size_bits / self.link_rate_bps

    @property
    def flit_cycle_ns(self) -> float:
        """Flit cycle duration in nanoseconds."""
        return self.flit_cycle_seconds * 1e9

    @property
    def phits_per_flit(self) -> int:
        """Number of phits making up one flit."""
        return self.flit_size_bits // self.phit_size_bits

    @property
    def round_length(self) -> int:
        """Flit cycles per round: K * V (paper §4.1)."""
        return self.round_factor * self.vcs_per_port

    @property
    def total_vcs(self) -> int:
        """Virtual channels across all input ports."""
        return self.num_ports * self.vcs_per_port

    @property
    def aggregate_bandwidth_bps(self) -> float:
        """Total switch bandwidth demanded at 100% offered load."""
        return self.num_ports * self.link_rate_bps

    # ----- conversions -----------------------------------------------------

    def cycles_to_us(self, cycles: float) -> float:
        """Convert flit cycles to microseconds."""
        return cycles * self.flit_cycle_seconds * 1e6

    def rate_to_interarrival_cycles(self, rate_bps: float) -> float:
        """Flit inter-arrival period, in flit cycles, of a ``rate_bps`` stream.

        A connection at the full link rate delivers one flit per cycle;
        slower connections scale inversely.
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        return self.link_rate_bps / rate_bps

    def rate_to_cycles_per_round(self, rate_bps: float) -> int:
        """Flit cycles per round a ``rate_bps`` connection must be granted.

        Bandwidth is allocated as an integer number of flit cycles per
        round (paper §4.1), rounded up so the allocation never undershoots
        the requested rate.
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        exact = rate_bps / self.link_rate_bps * self.round_length
        allocation = int(exact)
        if allocation < exact:
            allocation += 1
        return max(allocation, 1)

    def with_(self, **overrides) -> "RouterConfig":
        """Functional update helper (configs are frozen)."""
        return replace(self, **overrides)
