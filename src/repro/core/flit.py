"""Flow-control units: flits, phits, packets and control words.

The MMR organises all data as a sequence of flits (flow control digits).
Multimedia streams travel as bare data flits over established connections
(pipelined circuit switching); control and best-effort traffic travel as
single-flit packets using virtual cut-through — the paper fixes packet size
equal to flit size so PCS and VCT share one flow-control unit size.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_flit_ids = itertools.count()


class FlitType(enum.Enum):
    """The kinds of flow-control units the router distinguishes."""

    DATA = "data"  # payload flit of an established connection (PCS)
    PROBE = "probe"  # connection-establishment routing probe
    BACKTRACK = "backtrack"  # probe returning over a failed branch
    ACK = "ack"  # connection-establishment acknowledgment
    TEARDOWN = "teardown"  # connection release
    CONTROL = "control"  # short control packet (VCT, high priority)
    BEST_EFFORT = "best_effort"  # best-effort packet (VCT, low priority)


# Flit types that are routed immediately by the routing-and-arbitration unit
# rather than waiting for synchronous flit-cycle scheduling.
IMMEDIATE_TYPES = frozenset(
    {FlitType.PROBE, FlitType.BACKTRACK, FlitType.ACK, FlitType.TEARDOWN, FlitType.CONTROL}
)


class ControlCommand(enum.Enum):
    """Commands carried by control words along a connection (paper §4.3).

    Control words let the source interface dynamically manage an
    established connection without tearing it down.
    """

    SET_BANDWIDTH = "set_bandwidth"  # renegotiate flit-cycles/round
    SET_PRIORITY = "set_priority"  # change the VBR scheduling priority
    ABORT_FRAME = "abort_frame"  # drop the in-flight (video) frame
    LIMIT_INJECTION = "limit_injection"  # throttle the source


@dataclass(slots=True)
class Flit:
    """One flow-control digit.

    ``ready_time`` is stamped when the flit reaches the head of its virtual
    channel and is eligible for switch traversal; ``depart_time`` when it
    actually crosses the switch.  Their difference is the paper's *delay*
    metric.
    """

    flit_type: FlitType
    connection_id: int = -1
    created: int = 0
    flit_id: int = field(default_factory=_flit_ids.__next__)
    # Set by the router as the flit moves through it.
    ready_time: Optional[int] = None
    depart_time: Optional[int] = None
    # Payload fields for control traffic.
    command: Optional[ControlCommand] = None
    argument: int = 0
    # Sequence number within the connection (for jitter bookkeeping and
    # in-order checks).
    sequence: int = 0
    # Marks the final flit of a VCT packet / of a stream burst.
    is_tail: bool = True

    @property
    def is_data(self) -> bool:
        """True for payload flits of an established connection."""
        return self.flit_type is FlitType.DATA

    @property
    def is_immediate(self) -> bool:
        """True for flits the RAU forwards asynchronously when possible."""
        return self.flit_type in IMMEDIATE_TYPES

    def switch_delay(self) -> int:
        """Total delay: from ready (arrival per the connection's schedule)
        to leaving the switch (paper §5).

        ``created`` is stamped when the source makes the flit available,
        so the delay includes any time spent queued behind predecessors or
        held back by flow control — the paper's fixed-priority results
        (multi-microsecond delays) are only explicable if queueing counts.
        """
        if self.depart_time is None:
            raise ValueError("flit has not traversed the switch yet")
        return self.depart_time - self.created

    def head_wait(self) -> int:
        """Cycles spent at the head of a VC (requires both timestamps)."""
        if self.ready_time is None or self.depart_time is None:
            raise ValueError("flit has not traversed the switch yet")
        return self.depart_time - self.ready_time

    def __repr__(self) -> str:
        return (
            f"Flit({self.flit_type.value}, conn={self.connection_id}, "
            f"seq={self.sequence}, id={self.flit_id})"
        )


@dataclass
class Phit:
    """A physical transfer digit: the slice of a flit moved per link clock.

    Phits exist only at link level; the VCM reassembles them into flits.
    ``index`` counts the phit's position within its flit.
    """

    flit_id: int
    index: int
    total: int

    @property
    def is_last(self) -> bool:
        """True when this phit completes its flit."""
        return self.index == self.total - 1


def fragment_into_phits(flit: Flit, phits_per_flit: int) -> list:
    """Split ``flit`` into its constituent phits for link transmission."""
    if phits_per_flit <= 0:
        raise ValueError(f"phits_per_flit must be positive, got {phits_per_flit}")
    return [Phit(flit.flit_id, i, phits_per_flit) for i in range(phits_per_flit)]
