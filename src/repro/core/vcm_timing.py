"""Pipelined VCM timing model (paper §3.2).

"The number of memory modules and flit size must be selected to balance
memory access time, link speed, and crossbar switching delay, while
masking flow control and scheduling delays. ... By designing pipelined
memory buffer systems we can match increasing external link speeds to
decreasing intra-router delays."

This model answers the sizing question in time units: given module access
time, module count and the interleaving, it schedules each phit access on
its module's timeline and reports whether the memory sustains link rate —
and if not, where the bank conflicts pile up.  It complements the
structural :class:`~repro.core.vcm.VirtualChannelMemory` (which proves
FIFO correctness) and :func:`~repro.core.costmodel.vcm_cycle_budget`
(which gives the closed-form average); this is the cycle-accurate check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .vcm import AddressGenerator, VcmGeometry


@dataclass(frozen=True)
class VcmTimingConfig:
    """Timing parameters of the memory system."""

    geometry: VcmGeometry
    #: One module's access (cycle) time, in phit times on the link.
    access_phit_times: float
    #: Pipeline depth: accesses a module can have in flight.  1 models a
    #: plain SRAM; >1 models the paper's pipelined memory buffers.
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        if self.access_phit_times <= 0:
            raise ValueError(
                f"access_phit_times must be positive, got {self.access_phit_times}"
            )
        if self.pipeline_depth <= 0:
            raise ValueError(
                f"pipeline_depth must be positive, got {self.pipeline_depth}"
            )

    @property
    def module_throughput(self) -> float:
        """Phits per phit-time one module sustains."""
        return self.pipeline_depth / self.access_phit_times

    @property
    def array_throughput(self) -> float:
        """Phits per phit-time the whole module array sustains."""
        return self.module_throughput * self.geometry.num_modules

    @property
    def sustains_link_rate(self) -> bool:
        """Can the array absorb one phit per phit time indefinitely?"""
        return self.array_throughput >= 1.0


@dataclass
class AccessTimeline:
    """Result of scheduling a phit stream against the module array."""

    #: Completion time (in phit times) of the last access.
    finish_time: float
    #: Phits that had to wait on a busy module.
    conflicts: int
    #: Largest single wait, in phit times.
    worst_wait: float
    #: Phits scheduled.
    accesses: int

    @property
    def slowdown(self) -> float:
        """finish_time over the ideal (1 phit per phit time)."""
        return self.finish_time / self.accesses if self.accesses else 0.0


def schedule_flit_stream(
    config: VcmTimingConfig,
    flit_addresses: Sequence[Tuple[int, int]],
) -> AccessTimeline:
    """Schedule whole-flit writes arriving back to back at link rate.

    ``flit_addresses`` lists (vc, slot) per flit; phits arrive one per
    phit time and are dispatched to their interleaved module, queueing
    when the module's pipeline is full.
    """
    generator = AddressGenerator(config.geometry)
    # Each module's pipeline: completion times of in-flight accesses.
    in_flight: List[List[float]] = [[] for _ in range(config.geometry.num_modules)]
    time = 0.0
    conflicts = 0
    worst_wait = 0.0
    accesses = 0
    for vc, slot in flit_addresses:
        for phit in range(config.geometry.phits_per_flit):
            arrival = float(accesses)  # one phit per phit time off the link
            module, _ = generator.map(vc, slot, phit)
            pipeline = in_flight[module]
            # Retire finished accesses.
            pipeline[:] = [t for t in pipeline if t > arrival]
            start = arrival
            if len(pipeline) >= config.pipeline_depth:
                # Must wait for the oldest in-flight access to retire.
                start = min(pipeline)
                conflicts += 1
                worst_wait = max(worst_wait, start - arrival)
                pipeline.remove(min(pipeline))
            finish = start + config.access_phit_times
            pipeline.append(finish)
            time = max(time, finish)
            accesses += 1
    return AccessTimeline(time, conflicts, worst_wait, accesses)


def sequential_flit_addresses(
    geometry: VcmGeometry, num_flits: int
) -> List[Tuple[int, int]]:
    """A round-robin (vc, slot) pattern: the steady-state arrival mix."""
    if num_flits <= 0:
        raise ValueError(f"num_flits must be positive, got {num_flits}")
    out = []
    for i in range(num_flits):
        vc = i % geometry.num_vcs
        slot = (i // geometry.num_vcs) % geometry.flits_per_vc
        out.append((vc, slot))
    return out


def required_modules(
    access_phit_times: float, pipeline_depth: int = 1
) -> int:
    """Fewest modules that sustain link rate at the given access time.

    The §3.2 sizing rule solved for the module count: the array must
    complete one access per phit time.
    """
    if access_phit_times <= 0:
        raise ValueError(
            f"access_phit_times must be positive, got {access_phit_times}"
        )
    if pipeline_depth <= 0:
        raise ValueError(f"pipeline_depth must be positive, got {pipeline_depth}")
    needed = access_phit_times / pipeline_depth
    modules = int(needed)
    if modules < needed:
        modules += 1
    return max(1, modules)
