"""Routing and arbitration unit (paper §3.5).

The RAU executes the routing algorithm for probes and best-effort packets
and keeps the *channel mapping* between input and output virtual channels
for established connections.  Direct mappings forward data flits; reverse
mappings carry backtracking probes and acknowledgments toward the source;
both are used to propagate status information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# A virtual channel is identified by (physical link, VC on that link).
ChannelId = Tuple[int, int]


class MappingError(RuntimeError):
    """Raised on inconsistent channel-mapping operations."""


@dataclass(frozen=True)
class ChannelMapping:
    """One established connection's pass through this router."""

    connection_id: int
    input_channel: ChannelId
    output_channel: ChannelId


class ChannelMappingStore:
    """Direct and reverse channel mappings (paper §3.5).

    Both directions are kept consistent at all times: every direct entry
    has exactly one reverse entry and vice versa.
    """

    def __init__(self) -> None:
        self._direct: Dict[ChannelId, ChannelMapping] = {}
        self._reverse: Dict[ChannelId, ChannelMapping] = {}

    def __len__(self) -> int:
        return len(self._direct)

    def add(
        self,
        connection_id: int,
        input_channel: ChannelId,
        output_channel: ChannelId,
    ) -> ChannelMapping:
        """Record a newly reserved hop of a connection."""
        if input_channel in self._direct:
            raise MappingError(
                f"input channel {input_channel} already mapped to "
                f"{self._direct[input_channel].output_channel}"
            )
        if output_channel in self._reverse:
            raise MappingError(
                f"output channel {output_channel} already mapped from "
                f"{self._reverse[output_channel].input_channel}"
            )
        mapping = ChannelMapping(connection_id, input_channel, output_channel)
        self._direct[input_channel] = mapping
        self._reverse[output_channel] = mapping
        return mapping

    def forward(self, input_channel: ChannelId) -> Optional[ChannelMapping]:
        """Direct lookup: where do data flits on this input channel go?"""
        return self._direct.get(input_channel)

    def backward(self, output_channel: ChannelId) -> Optional[ChannelMapping]:
        """Reverse lookup: where did this output channel's stream enter?"""
        return self._reverse.get(output_channel)

    def remove_by_input(self, input_channel: ChannelId) -> ChannelMapping:
        """Tear down the hop entered through ``input_channel``."""
        mapping = self._direct.pop(input_channel, None)
        if mapping is None:
            raise MappingError(f"no mapping for input channel {input_channel}")
        del self._reverse[mapping.output_channel]
        return mapping

    def remove_by_connection(self, connection_id: int) -> int:
        """Remove every mapping of ``connection_id``; returns count removed."""
        doomed = [
            mapping
            for mapping in self._direct.values()
            if mapping.connection_id == connection_id
        ]
        for mapping in doomed:
            del self._direct[mapping.input_channel]
            del self._reverse[mapping.output_channel]
        return len(doomed)

    def mappings(self):
        """Iterate over all direct mappings (stable order by input channel)."""
        for key in sorted(self._direct):
            yield self._direct[key]

    def check_consistency(self) -> None:
        """Invariant: direct and reverse stores are mirror images."""
        if len(self._direct) != len(self._reverse):
            raise MappingError(
                f"store sizes diverged: {len(self._direct)} direct vs "
                f"{len(self._reverse)} reverse"
            )
        for input_channel, mapping in self._direct.items():
            mirrored = self._reverse.get(mapping.output_channel)
            if mirrored is not mapping:
                raise MappingError(
                    f"reverse store does not mirror {input_channel}"
                )


class RoutingArbitrationUnit:
    """Per-router RAU: mapping store plus probe/packet bookkeeping.

    Path selection itself is pluggable (see :mod:`repro.routing`); the RAU
    owns the state that must live inside the router: channel mappings and
    counters for the control traffic it forwards during reconfiguration
    gaps (§3.4).
    """

    def __init__(self, num_ports: int) -> None:
        if num_ports <= 0:
            raise ValueError(f"num_ports must be positive, got {num_ports}")
        self.num_ports = num_ports
        self.mappings = ChannelMappingStore()
        self.probes_processed = 0
        self.immediate_forwards = 0
        self.buffered_control = 0

    def register_connection(
        self,
        connection_id: int,
        input_port: int,
        input_vc: int,
        output_port: int,
        output_vc: int,
    ) -> ChannelMapping:
        """Install the direct/reverse mappings for one reserved hop."""
        self._check_port(input_port)
        self._check_port(output_port)
        return self.mappings.add(
            connection_id, (input_port, input_vc), (output_port, output_vc)
        )

    def release_connection(self, connection_id: int) -> int:
        """Drop every mapping of a torn-down connection."""
        return self.mappings.remove_by_connection(connection_id)

    def next_hop(self, input_port: int, input_vc: int) -> Optional[ChannelId]:
        """Output channel for data flits entering on (port, vc)."""
        mapping = self.mappings.forward((input_port, input_vc))
        return mapping.output_channel if mapping else None

    def previous_hop(self, output_port: int, output_vc: int) -> Optional[ChannelId]:
        """Input channel feeding (port, vc) — the backtrack/ack direction."""
        mapping = self.mappings.backward((output_port, output_vc))
        return mapping.input_channel if mapping else None

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise IndexError(f"port {port} out of range [0, {self.num_ports})")
