"""Crossbar switch organisations (paper §3.3).

The MMR uses a *multiplexed* crossbar: one switch port per physical link,
so all virtual channels of a link share its port and arbitration is needed
whenever the link switches between VCs.  The alternatives — partially
multiplexed (a port per VC group) and fully de-multiplexed (a port per VC)
— buy contention-free switching with silicon area growing by factors of V
and V^2; :mod:`repro.core.costmodel` quantifies that trade.

This module models the *data path*: a crossbar holds a configuration
(input port -> output port matching) and moves one flit per configured
pair per flit cycle.  The perfect switch used as the evaluation's lower
bound accepts any number of flits per output per cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class CrossbarError(RuntimeError):
    """Raised when a configuration violates crossbar constraints."""


class MultiplexedCrossbar:
    """N x N crossbar with one port per physical link.

    A configuration is a partial matching: each input connects to at most
    one output and vice versa.  Reconfiguration models the paper's
    one-clock-cycle switch setup (hidden by overlap with transmission at
    flit-cycle granularity, but counted for reporting).
    """

    def __init__(self, num_ports: int) -> None:
        if num_ports <= 0:
            raise ValueError(f"num_ports must be positive, got {num_ports}")
        self.num_ports = num_ports
        self._input_to_output: Dict[int, int] = {}
        self.reconfigurations = 0
        self.flits_switched = 0

    @property
    def configuration(self) -> Dict[int, int]:
        """Copy of the current input -> output matching."""
        return dict(self._input_to_output)

    def configure(self, matching: Dict[int, int]) -> None:
        """Install a new configuration (validating the matching property)."""
        outputs_seen = set()
        for in_port, out_port in matching.items():
            self._check_port(in_port)
            self._check_port(out_port)
            if out_port in outputs_seen:
                raise CrossbarError(
                    f"output port {out_port} assigned to multiple inputs"
                )
            outputs_seen.add(out_port)
        if matching != self._input_to_output:
            self.reconfigurations += 1
        self._input_to_output = dict(matching)

    def install(self, matching: Dict[int, int]) -> None:
        """Install a pre-validated matching, taking ownership of the dict.

        The router's tick path uses this for grant sets that already
        passed ``validate_grants`` (or came from a scheduler that
        guarantees the matching property): it skips the per-port checks
        and the defensive copy of :meth:`configure` but keeps the
        reconfiguration count exact.  Callers must not mutate
        ``matching`` afterwards.
        """
        if matching != self._input_to_output:
            self.reconfigurations += 1
            self._input_to_output = matching

    def teardown(self) -> None:
        """Drop the configuration; counts one reconfiguration if one was set.

        Equivalent to ``configure({})`` without the empty-matching
        validation — the hot path for a router going idle.
        """
        if self._input_to_output:
            self.reconfigurations += 1
            self._input_to_output = {}

    def output_for(self, in_port: int) -> Optional[int]:
        """Output currently connected to ``in_port`` (None when idle)."""
        self._check_port(in_port)
        return self._input_to_output.get(in_port)

    def transmit(self, in_port: int) -> int:
        """Move one flit from ``in_port``; returns the output port used."""
        out_port = self._input_to_output.get(in_port)
        if out_port is None:
            raise CrossbarError(f"input port {in_port} is not configured")
        self.flits_switched += 1
        return out_port

    def max_flits_per_output(self) -> int:
        """Output-port concurrency limit: 1 for a real crossbar."""
        return 1

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise CrossbarError(
                f"port {port} out of range [0, {self.num_ports})"
            )


class PerfectSwitch(MultiplexedCrossbar):
    """Idealised switch: internal bandwidth N times the link bandwidth.

    When several inputs request one output they are all served in the same
    flit cycle, so there are no port conflicts and no switch scheduling
    overhead (paper §5.1).  Inputs remain limited to one flit per cycle —
    that is the physical link's constraint, not the switch's.
    """

    def configure(self, matching: Dict[int, int]) -> None:
        # No matching property to enforce: outputs accept unlimited flits.
        for in_port, out_port in matching.items():
            self._check_port(in_port)
            self._check_port(out_port)
        if matching != self._input_to_output:
            self.reconfigurations += 1
        self._input_to_output = dict(matching)

    def max_flits_per_output(self) -> int:
        """Every input may deliver to the same output simultaneously."""
        return self.num_ports
