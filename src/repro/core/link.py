"""Phit-level link reception path (paper §3.2, §3.4).

Between two routers a flit is physically a *control word* naming the
virtual channel, followed by the flit's phits.  On the receive side the
phits land in a small phit buffer while the control word is decoded and
the VCM write address generated; the phits then stream into the
interleaved memory.

The performance-path simulator delivers whole flits per flit cycle (the
two are equivalent at flit-cycle granularity, which this module's tests
prove); :class:`LinkReceiver` exists to validate the §3.2 sizing rules —
phit-buffer depth vs decode latency, module count vs link rate — at phit
granularity, and to model the §3.4 framing: "all the input links with
ready flits start by transmitting a control word containing the
identifier of the virtual channel to which the next flit belongs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .flit import Flit, Phit, fragment_into_phits
from .phit_buffer import PhitBuffer
from .vcm import VcmGeometry, VirtualChannelMemory


@dataclass(frozen=True)
class ControlWord:
    """The per-flit framing word: which VC the following phits belong to."""

    vc_index: int

    def __post_init__(self) -> None:
        if self.vc_index < 0:
            raise ValueError(f"vc_index must be >= 0, got {self.vc_index}")


@dataclass(frozen=True)
class LinkTimingConfig:
    """Receive-side timing, in phit times."""

    #: Phit times to decode a control word and generate the VCM address.
    decode_phit_times: int = 2

    def __post_init__(self) -> None:
        if self.decode_phit_times < 0:
            raise ValueError(
                f"decode_phit_times must be >= 0, got {self.decode_phit_times}"
            )


class LinkTransmitter:
    """Serialises flits into (control word, phits...) frames."""

    def __init__(self, phits_per_flit: int) -> None:
        if phits_per_flit <= 0:
            raise ValueError(
                f"phits_per_flit must be positive, got {phits_per_flit}"
            )
        self.phits_per_flit = phits_per_flit
        self.flits_sent = 0

    def frame(self, flit: Flit, vc_index: int) -> Tuple[ControlWord, List[Phit]]:
        """One link frame for ``flit`` bound to ``vc_index``."""
        self.flits_sent += 1
        return ControlWord(vc_index), fragment_into_phits(flit, self.phits_per_flit)


class LinkReceiver:
    """Phit-level receive pipeline: phit buffer -> decode -> VCM write.

    Drive it one phit time at a time with :meth:`push_control` /
    :meth:`push_phit` / :meth:`idle`; completed flits land in the VCM and
    are reported by :meth:`completed`.
    """

    def __init__(
        self,
        geometry: VcmGeometry,
        timing: LinkTimingConfig = LinkTimingConfig(),
        phit_buffer_depth: Optional[int] = None,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        if phit_buffer_depth is None:
            # The paper's sizing rule: deep enough for a decode period.
            phit_buffer_depth = PhitBuffer.required_depth(timing.decode_phit_times)
        self.phit_buffer = PhitBuffer(phit_buffer_depth)
        self.vcm = VirtualChannelMemory(geometry)
        self._decoding_until = 0
        self._current_vc: Optional[int] = None
        self._current_flit_id: Optional[int] = None
        self._phits_received = 0
        self._payload: Optional[Flit] = None
        self.now = 0
        self._completed: List[Tuple[int, Flit]] = []
        self.flits_received = 0

    # ----- per-phit-time inputs ------------------------------------------------

    def push_control(self, word: ControlWord, flit: Flit) -> None:
        """A control word arrives: decode starts, phits will follow."""
        if self._current_vc is not None and self._phits_received:
            raise RuntimeError("control word arrived mid-flit")
        if not 0 <= word.vc_index < self.geometry.num_vcs:
            raise ValueError(
                f"control word names vc {word.vc_index}, have "
                f"{self.geometry.num_vcs}"
            )
        self._current_vc = word.vc_index
        self._current_flit_id = flit.flit_id
        self._payload = flit
        self._phits_received = 0
        self._decoding_until = self.now + self.timing.decode_phit_times
        self._advance()

    def push_phit(self, phit: Phit) -> None:
        """One phit arrives off the wire this phit time."""
        if self._current_vc is None:
            raise RuntimeError("phit arrived with no control word decoded")
        if phit.flit_id != self._current_flit_id:
            raise RuntimeError(
                f"phit of flit {phit.flit_id} arrived while receiving "
                f"{self._current_flit_id}"
            )
        self.phit_buffer.push(phit)
        self._advance()

    def idle(self) -> None:
        """Nothing on the wire this phit time (drain continues)."""
        self._advance()

    def _advance(self) -> None:
        """One phit time passes: drain the buffer into the VCM if decoded."""
        self.now += 1
        if self._current_vc is None or self.now <= self._decoding_until:
            return
        while not self.phit_buffer.is_empty:
            phit = self.phit_buffer.pop()
            self._phits_received += 1
            if phit.is_last:
                self.vcm.write_flit(self._current_vc, self._payload)
                self._completed.append((self._current_vc, self._payload))
                self.flits_received += 1
                self._current_vc = None
                self._current_flit_id = None
                self._payload = None
                self._phits_received = 0
                break

    # ----- outputs ------------------------------------------------------------------

    def completed(self) -> List[Tuple[int, Flit]]:
        """(vc, flit) pairs fully received since the last call."""
        out = self._completed
        self._completed = []
        return out

    @property
    def peak_buffer_occupancy(self) -> int:
        """High-water mark of the phit buffer (validates §3.2 sizing)."""
        return self.phit_buffer.max_occupancy


def transfer_flit(
    transmitter: LinkTransmitter,
    receiver: LinkReceiver,
    flit: Flit,
    vc_index: int,
) -> int:
    """Send one flit end to end at one phit per phit time.

    Returns the number of phit times consumed (control word + phits +
    any residual drain).
    """
    word, phits = transmitter.frame(flit, vc_index)
    start = receiver.now
    receiver.push_control(word, flit)
    for phit in phits:
        receiver.push_phit(phit)
    # Drain whatever decode latency still hides buffered phits.
    guard = 0
    while receiver.vcm.is_empty(vc_index) or receiver._current_vc is not None:
        if not receiver.vcm.is_empty(vc_index) and receiver._current_vc is None:
            break
        receiver.idle()
        guard += 1
        if guard > 10 * len(phits) + 100:
            raise RuntimeError("flit never completed: receiver wedged")
    return receiver.now - start
