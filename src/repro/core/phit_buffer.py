"""Phit buffers (paper §3.2).

Small FIFOs sit between each physical link and the virtual channel memory.
They are deep enough to hold the phits that arrive while the control word
is decoded and the VCM write address computed, and they give probes,
acknowledgments and uncontended VCT packets a low-latency path that skips
the VCM entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .flit import Phit


class PhitBuffer:
    """A small FIFO of phits in front of (or behind) the crossbar."""

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError(f"phit buffer depth must be positive, got {depth}")
        self.depth = depth
        self._fifo: Deque[Phit] = deque()
        # High-water mark, to validate sizing against the decode period.
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def is_full(self) -> bool:
        """True when another phit would overflow the buffer."""
        return len(self._fifo) >= self.depth

    @property
    def is_empty(self) -> bool:
        """True when no phits are buffered."""
        return not self._fifo

    def push(self, phit: Phit) -> None:
        """Accept one phit from the link."""
        if self.is_full:
            raise RuntimeError(
                "phit buffer overflow: buffer sized smaller than the decode "
                f"period (depth={self.depth})"
            )
        self._fifo.append(phit)
        if len(self._fifo) > self.max_occupancy:
            self.max_occupancy = len(self._fifo)

    def pop(self) -> Phit:
        """Drain the oldest phit toward the VCM (or straight to the switch)."""
        if not self._fifo:
            raise RuntimeError("phit buffer underflow")
        return self._fifo.popleft()

    def peek(self) -> Optional[Phit]:
        """Oldest phit without removing it, or None when empty."""
        return self._fifo[0] if self._fifo else None

    def publish_telemetry(self, hub, now: float, name: str = "phit_buffer") -> None:
        """Sample current depth and high-water mark into a telemetry hub.

        ``hub`` is duck-typed (``sample(name, time, value)``); the sizing
        argument of §3.2 is checked by comparing the high-water channel
        against :meth:`required_depth`.
        """
        hub.sample(f"{name}.occupancy", now, len(self._fifo))
        hub.sample(f"{name}.max_occupancy", now, self.max_occupancy)

    @staticmethod
    def required_depth(decode_cycles: int, phits_per_cycle: int = 1) -> int:
        """Depth needed to absorb arrivals during a decode period.

        The paper sizes phit buffers "deep enough to store all the phits
        that arrive during a decoding period"; one extra slot covers the
        phit in flight when decode starts.
        """
        if decode_cycles < 0:
            raise ValueError(f"decode_cycles must be >= 0, got {decode_cycles}")
        if phits_per_cycle <= 0:
            raise ValueError(
                f"phits_per_cycle must be positive, got {phits_per_cycle}"
            )
        return decode_cycles * phits_per_cycle + 1
