"""Virtual channel state.

Each input port of the MMR hosts a large set of virtual channels (256 in
the evaluation).  A virtual channel holds a small fixed-size flit buffer
plus the per-connection scheduling state the link scheduler consults:
service class, allocated bandwidth, dynamic priority, and round-serviced
accounting.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from .flit import Flit


class ServiceClass(enum.Enum):
    """Traffic classes the scheduler distinguishes (paper §2, §3.4)."""

    CBR = "cbr"  # constant bit rate connection (PCS)
    VBR = "vbr"  # variable bit rate connection (PCS)
    CONTROL = "control"  # control packets: above data streams
    BEST_EFFORT = "best_effort"  # below data streams


class VirtualChannel:
    """One virtual channel: a bounded flit FIFO plus scheduling state.

    ``ready_time`` is stamped on a flit when it becomes the channel head:
    the head flit of a VC is what competes for the switch, so the paper's
    delay metric starts counting from that moment.
    """

    __slots__ = (
        "port",
        "index",
        "capacity",
        "buffer",
        "connection_id",
        "service_class",
        "output_port",
        "output_vc",
        "allocated_cycles",
        "permanent_cycles",
        "peak_cycles",
        "static_priority",
        "interarrival_cycles",
        "serviced_this_round",
        "round_offset",
        "prio_flit",
        "prio_conn",
        "prio_base",
        "prio_div",
        "prio_key",
        "history",
    )

    def __init__(self, port: int, index: int, capacity: int) -> None:
        self.port = port
        self.index = index
        self.capacity = capacity
        self.buffer: Deque[Flit] = deque()
        # Connection binding (None when the VC is free).
        self.connection_id: Optional[int] = None
        self.service_class: ServiceClass = ServiceClass.BEST_EFFORT
        self.output_port: int = -1
        self.output_vc: int = -1
        # Bandwidth state (flit cycles per round).
        self.allocated_cycles: int = 0  # CBR allocation / VBR not used
        self.permanent_cycles: int = 0  # VBR permanent bandwidth
        self.peak_cycles: int = 0  # VBR peak bandwidth
        # Priorities.
        self.static_priority: float = 0.0
        # Mean flit inter-arrival period, in cycles (drives biased priority).
        self.interarrival_cycles: float = 1.0
        # Flit cycles consumed in the current round.
        self.serviced_this_round: int = 0
        # Cached priority offset of the VC's current round tier (0.0 in
        # contract, the VBR excess offset beyond it); owned by
        # LinkScheduler.refresh_round_state.
        self.round_offset: float = 0.0
        # Priority-term cache for the scheduling fast path: valid while
        # ``prio_flit`` is the current head flit (identity check) *and*
        # ``prio_conn`` matches the bound connection, so terms never
        # survive a rebind or contract change; the scheme's cache_terms()
        # fills base/div/key.
        self.prio_flit: Optional[Flit] = None
        self.prio_conn: Optional[int] = None
        self.prio_base: float = 0.0
        self.prio_div: float = 1.0
        self.prio_key: int = 0
        # Output links already probed from this VC (EPB history store, §3.5).
        self.history: set = set()

    # ----- connection binding ---------------------------------------------

    @property
    def is_free(self) -> bool:
        """True when no connection is bound and the buffer is empty."""
        return self.connection_id is None and not self.buffer

    def bind(
        self,
        connection_id: int,
        service_class: ServiceClass,
        output_port: int,
        output_vc: int = -1,
    ) -> None:
        """Reserve this VC for a connection."""
        if self.connection_id is not None:
            raise RuntimeError(
                f"VC {self.port}.{self.index} already bound to connection "
                f"{self.connection_id}"
            )
        self.connection_id = connection_id
        self.service_class = service_class
        self.output_port = output_port
        self.output_vc = output_vc
        self.prio_flit = None
        self.prio_conn = None

    def release(self) -> None:
        """Free the VC (connection torn down or packet fully sent)."""
        if self.buffer:
            raise RuntimeError(
                f"cannot release VC {self.port}.{self.index}: "
                f"{len(self.buffer)} flits still buffered"
            )
        self.connection_id = None
        self.service_class = ServiceClass.BEST_EFFORT
        self.output_port = -1
        self.output_vc = -1
        self.allocated_cycles = 0
        self.permanent_cycles = 0
        self.peak_cycles = 0
        self.static_priority = 0.0
        self.interarrival_cycles = 1.0
        self.serviced_this_round = 0
        self.round_offset = 0.0
        self.prio_flit = None
        self.prio_conn = None
        self.history.clear()

    # ----- buffer operations -----------------------------------------------

    @property
    def occupancy(self) -> int:
        """Flits currently buffered."""
        return len(self.buffer)

    @property
    def is_full(self) -> bool:
        """True when the buffer cannot accept another flit."""
        return len(self.buffer) >= self.capacity

    def enqueue(self, flit: Flit, now: int) -> None:
        """Accept an arriving flit; stamps ready_time if it becomes head."""
        if self.is_full:
            raise RuntimeError(
                f"VC {self.port}.{self.index} overflow: flow control failed"
            )
        if not self.buffer:
            flit.ready_time = now
        self.buffer.append(flit)

    def head(self) -> Optional[Flit]:
        """The flit competing for the switch, or None."""
        return self.buffer[0] if self.buffer else None

    def dequeue(self, now: int) -> Flit:
        """Remove the head flit (it won switch arbitration at ``now``)."""
        if not self.buffer:
            raise RuntimeError(f"VC {self.port}.{self.index} empty")
        flit = self.buffer.popleft()
        if self.buffer:
            successor = self.buffer[0]
            # The next flit becomes head now; it cannot have been ready
            # before it arrived, nor before its predecessor left.
            if successor.ready_time is None:
                successor.ready_time = now
        return flit

    def __repr__(self) -> str:
        return (
            f"VirtualChannel(port={self.port}, index={self.index}, "
            f"conn={self.connection_id}, class={self.service_class.value}, "
            f"occupancy={self.occupancy}/{self.capacity})"
        )
