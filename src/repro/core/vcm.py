"""Virtual channel memory: interleaved RAM modules (paper §3.2, Figure 2).

The MMR abandons the traditional queues-plus-multiplexor VC organisation
(too slow and too large for 256 VCs) in favour of a set of low-order
interleaved RAM modules.  Each flit is striped phit-by-phit across the
modules; flits of the same virtual channel occupy adjacent slot groups.
The link scheduler supplies read addresses, the flow-control circuitry
supplies write addresses (the VC identifier carried by the control word).

This module is a faithful structural model used to validate the
addressing, bank-conflict and capacity properties; the performance-path
router keeps flits in :class:`~repro.core.virtual_channel.VirtualChannel`
deques, whose FIFO semantics this memory is shown (by tests) to match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class VcmGeometry:
    """Dimensions of one port's virtual channel memory."""

    num_vcs: int
    flits_per_vc: int
    phits_per_flit: int
    num_modules: int

    def __post_init__(self) -> None:
        if self.num_vcs <= 0:
            raise ValueError(f"num_vcs must be positive, got {self.num_vcs}")
        if self.flits_per_vc <= 0:
            raise ValueError(f"flits_per_vc must be positive, got {self.flits_per_vc}")
        if self.phits_per_flit <= 0:
            raise ValueError(
                f"phits_per_flit must be positive, got {self.phits_per_flit}"
            )
        if self.num_modules <= 0:
            raise ValueError(f"num_modules must be positive, got {self.num_modules}")

    @property
    def words_per_module(self) -> int:
        """Capacity of each RAM module, in phit-sized words.

        Total phit capacity divided across modules, rounded up so every
        (vc, slot, phit) coordinate has a home even when the phit count is
        not a multiple of the module count.
        """
        total_phits = self.num_vcs * self.flits_per_vc * self.phits_per_flit
        return -(-total_phits // self.num_modules)

    @property
    def total_flit_capacity(self) -> int:
        """Total flits the memory can hold."""
        return self.num_vcs * self.flits_per_vc


class AddressGenerator:
    """Maps (vc, flit slot, phit index) to (module, word address).

    Low-order interleaving: consecutive phits of a flit land in consecutive
    modules, so a whole flit can be streamed at one phit per module per
    access cycle.  Flits of one VC occupy adjacent slot groups, matching
    Figure 2 of the paper.
    """

    def __init__(self, geometry: VcmGeometry) -> None:
        self.geometry = geometry

    def linear_index(self, vc: int, slot: int, phit: int) -> int:
        """Global phit index of coordinate (vc, slot, phit)."""
        g = self.geometry
        if not 0 <= vc < g.num_vcs:
            raise IndexError(f"vc {vc} out of range [0, {g.num_vcs})")
        if not 0 <= slot < g.flits_per_vc:
            raise IndexError(f"slot {slot} out of range [0, {g.flits_per_vc})")
        if not 0 <= phit < g.phits_per_flit:
            raise IndexError(f"phit {phit} out of range [0, {g.phits_per_flit})")
        return (vc * g.flits_per_vc + slot) * g.phits_per_flit + phit

    def map(self, vc: int, slot: int, phit: int) -> Tuple[int, int]:
        """(module, word address) for a phit coordinate (low-order interleave)."""
        index = self.linear_index(vc, slot, phit)
        return index % self.geometry.num_modules, index // self.geometry.num_modules

    def modules_for_flit(self, vc: int, slot: int) -> List[int]:
        """Modules touched when streaming the whole flit at (vc, slot)."""
        return [
            self.map(vc, slot, phit)[0]
            for phit in range(self.geometry.phits_per_flit)
        ]


class VirtualChannelMemory:
    """One input port's VCM: interleaved modules + per-VC circular slots.

    Stores opaque payloads (the simulator stores flit ids) phit-by-phit.
    Writes and reads are whole-flit operations, as in the MMR, where the
    address generator produces the per-module burst.
    """

    def __init__(self, geometry: VcmGeometry) -> None:
        self.geometry = geometry
        self.address_generator = AddressGenerator(geometry)
        self._modules: List[Dict[int, object]] = [
            {} for _ in range(geometry.num_modules)
        ]
        # Per-VC circular FIFO pointers over the flit slots.
        self._head = [0] * geometry.num_vcs
        self._count = [0] * geometry.num_vcs
        # Bank-conflict accounting: accesses per module.
        self.module_accesses = [0] * geometry.num_modules

    # ----- occupancy ------------------------------------------------------

    def occupancy(self, vc: int) -> int:
        """Flits currently stored for ``vc``."""
        return self._count[vc]

    def is_full(self, vc: int) -> bool:
        """True when ``vc`` has no free flit slot."""
        return self._count[vc] >= self.geometry.flits_per_vc

    def is_empty(self, vc: int) -> bool:
        """True when ``vc`` holds no flits."""
        return self._count[vc] == 0

    def total_occupancy(self) -> int:
        """Flits stored across every VC."""
        return sum(self._count)

    # ----- whole-flit transfers ---------------------------------------------

    def write_flit(self, vc: int, payload: object) -> int:
        """Store one flit's phits into ``vc``'s next free slot.

        Returns the slot used.  Raises when the VC is full — upstream flow
        control must prevent that (it is a protocol violation, not an
        expected runtime condition).
        """
        if self.is_full(vc):
            raise RuntimeError(f"VCM overflow on vc {vc}: flow control failed")
        slot = (self._head[vc] + self._count[vc]) % self.geometry.flits_per_vc
        for phit in range(self.geometry.phits_per_flit):
            module, word = self.address_generator.map(vc, slot, phit)
            self._modules[module][word] = (payload, phit)
            self.module_accesses[module] += 1
        self._count[vc] += 1
        return slot

    def read_flit(self, vc: int) -> object:
        """Retrieve (and remove) the oldest flit of ``vc``."""
        if self.is_empty(vc):
            raise RuntimeError(f"VCM underflow on vc {vc}")
        slot = self._head[vc]
        payload: Optional[object] = None
        for phit in range(self.geometry.phits_per_flit):
            module, word = self.address_generator.map(vc, slot, phit)
            stored, stored_phit = self._modules[module].pop(word)
            if stored_phit != phit:
                raise RuntimeError(
                    f"VCM corruption at vc {vc} slot {slot}: phit {stored_phit} "
                    f"found where {phit} expected"
                )
            payload = stored
            self.module_accesses[module] += 1
        self._head[vc] = (slot + 1) % self.geometry.flits_per_vc
        self._count[vc] -= 1
        return payload

    def peek_flit(self, vc: int) -> object:
        """The oldest flit of ``vc`` without removing it."""
        if self.is_empty(vc):
            raise RuntimeError(f"VCM underflow on vc {vc}")
        slot = self._head[vc]
        module, word = self.address_generator.map(vc, slot, 0)
        payload, _ = self._modules[module][word]
        return payload

    # ----- analysis ----------------------------------------------------------

    def publish_telemetry(self, hub, now: float, name: str = "vcm") -> None:
        """Sample occupancy and interleave balance into a telemetry hub.

        ``hub`` is duck-typed (anything with ``sample(name, time, value)``,
        normally a :class:`repro.obs.timeseries.TelemetryHub`), so the
        structural model stays import-independent of the obs package.
        """
        hub.sample(f"{name}.occupancy", now, self.total_occupancy())
        hub.sample(f"{name}.access_balance", now, self.access_balance())

    def access_balance(self) -> float:
        """Ratio of the busiest to the average module access count.

        1.0 means perfectly balanced interleaving; large values indicate
        bank hot-spots.  Returns 0.0 before any access.
        """
        total = sum(self.module_accesses)
        if total == 0:
            return 0.0
        average = total / len(self.module_accesses)
        return max(self.module_accesses) / average
