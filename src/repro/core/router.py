"""The MMR router top level (paper Figure 1).

A :class:`Router` assembles the architecture of Figure 1: per-input-port
virtual channel memories and link schedulers, a multiplexed crossbar, the
switch scheduler, the routing-and-arbitration unit, per-output credit
flow control and bandwidth-allocation registers.

Operation follows §3.4: flit transmission is organised as synchronous flit
cycles.  During each cycle the link schedulers offer candidate sets, the
switch scheduler computes the next matching, the crossbar is reconfigured
and one flit per granted port crosses the switch.  Control packets
(probes, acks, control words) cut through asynchronously when their output
link is idle; otherwise they are buffered in a virtual channel and
scheduled synchronously with data, above data-stream priority.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..obs.recorder import NULL_RECORDER
from ..sim.engine import Simulator
from ..sim.stats import ConnectionStats, Histogram, StatsRegistry
from ..sim.trace import NullTracer
from .admission import AdmissionController
from .bandwidth import BandwidthRequest
from .config import RouterConfig
from .crossbar import MultiplexedCrossbar, PerfectSwitch
from .flit import IMMEDIATE_TYPES, Flit, FlitType
from .flow_control import LinkFlowControl
from .link_scheduler import LinkScheduler
from .priority import PriorityScheme
from .rau import RoutingArbitrationUnit
from .status_vectors import ActivitySet, StatusBank
from .switch_scheduler import (
    Grant,
    PerfectSwitchScheduler,
    SwitchScheduler,
    validate_grants,
)
from .virtual_channel import ServiceClass, VirtualChannel

# Service classes whose packets release their VC at the tail flit (§3.4).
_PACKET_CLASSES = frozenset((ServiceClass.CONTROL, ServiceClass.BEST_EFFORT))

# Handler invoked when a flit leaves through an output port:
# handler(flit, output_vc).  None means the port drains to a sink.
OutputHandler = Callable[[Flit, int], None]
# Handler invoked when an input VC frees a buffer slot (credit return):
# handler(vc_index).
CreditReturnHandler = Callable[[int], None]


class InputPort:
    """One physical input link: its virtual channels and status bank."""

    def __init__(self, port: int, config: RouterConfig) -> None:
        self.port = port
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(port, index, config.vc_buffer_flits)
            for index in range(config.vcs_per_port)
        ]
        self.status = StatusBank(config.vcs_per_port)
        self._free_vcs = set(range(config.vcs_per_port))

    def find_free_vc(self) -> Optional[int]:
        """Lowest-numbered free virtual channel, or None."""
        return min(self._free_vcs) if self._free_vcs else None

    def free_vc_count(self) -> int:
        """How many VCs are unbound."""
        return len(self._free_vcs)

    def mark_bound(self, vc_index: int) -> None:
        """Remove a VC from the free pool (it was just bound)."""
        self._free_vcs.discard(vc_index)

    def mark_free(self, vc_index: int) -> None:
        """Return a VC to the free pool."""
        self._free_vcs.add(vc_index)


class _CreditListener:
    """Mirrors one output link's 0<->1 credit transitions into the input
    ports' ``credits_available`` status vectors.

    A class (rather than a closure over the router's dict and vector
    list) so routers are picklable for checkpointing; it shares the
    router's live ``_downstream_users`` dict and vector list by
    reference, which pickle preserves within one snapshot.
    """

    __slots__ = ("users", "vectors", "output_port")

    def __init__(self, users: Dict[tuple, tuple], vectors: list, output_port: int) -> None:
        self.users = users
        self.vectors = vectors
        self.output_port = output_port

    def __call__(self, output_vc: int, available: bool) -> None:
        user = self.users.get((self.output_port, output_vc))
        if user is not None:
            self.vectors[user[0]].assign(user[1], available)


class Router:
    """A single MMR router instance driven by a shared simulator clock."""

    def __init__(
        self,
        config: RouterConfig,
        scheme: PriorityScheme,
        switch_scheduler: SwitchScheduler,
        sim: Simulator,
        name: str = "router",
        selection: str = "priority",
        rng=None,
        sink_outputs: bool = True,
        checked: bool = False,
        tracer=None,
        delay_histogram_bins: int = 0,
        recorder=None,
        scheduler_fast_path: bool = True,
        columnar_state: bool = False,
    ) -> None:
        """``sink_outputs=True`` models the single-router evaluation: output
        links drain into ideal sinks with unlimited downstream credit.  A
        network embeds the router with ``sink_outputs=False`` and wires
        output handlers and real credit state per link.

        ``columnar_state=True`` switches the link schedulers to the
        vectorized columnar engine (requires the NumPy ``[fast]`` extra;
        raises :class:`~repro.core.columnar.ColumnarUnavailableError`
        otherwise).  Bit-identical to the object-graph paths and
        flippable mid-run via :meth:`set_columnar_state`."""
        self.config = config
        self.scheme = scheme
        self.switch_scheduler = switch_scheduler
        self.sim = sim
        self.name = name
        self.checked = checked
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Flight recorder (see :mod:`repro.obs.recorder`).  Every hot-path
        #: emission guards on ``recorder.enabled`` so the default
        #: NULL_RECORDER costs one attribute read per site.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        # Optional per-flit delay histogram (cycles), for tail metrics.
        self.delay_histogram: Optional[Histogram] = (
            Histogram(0.0, 4096.0, delay_histogram_bins)
            if delay_histogram_bins
            else None
        )

        self.input_ports = [InputPort(p, config) for p in range(config.num_ports)]
        self.output_flow = [
            LinkFlowControl(
                config.vcs_per_port, config.vc_buffer_flits, infinite=sink_outputs
            )
            for _ in range(config.num_ports)
        ]
        self.link_schedulers = [
            LinkScheduler(
                port,
                config,
                self.input_ports[port].vcs,
                self.input_ports[port].status,
                scheme,
                self._credit_check,
                selection=selection,
                rng=rng.spawn(f"link{port}") if rng is not None else None,
                fast_path=scheduler_fast_path,
                columnar=columnar_state,
            )
            for port in range(config.num_ports)
        ]
        self.columnar_state = columnar_state
        # Fast-path credit mirroring: each (output_port, output_vc) in use
        # maps to the single input VC bound to it; the output links'
        # availability listeners push downstream 0<->1 credit transitions
        # into that VC's ``credits_available`` status bit.
        self._downstream_users: Dict[tuple, tuple] = {}
        self._credits_vectors = [
            port.status.vector("credits_available") for port in self.input_ports
        ]
        self._routed_vectors = [
            port.status.vector("routed") for port in self.input_ports
        ]
        for output_port, flow in enumerate(self.output_flow):
            flow.availability_listener = self._make_credit_listener(output_port)
        perfect = isinstance(switch_scheduler, PerfectSwitchScheduler)
        self.crossbar = (
            PerfectSwitch(config.num_ports)
            if perfect
            else MultiplexedCrossbar(config.num_ports)
        )
        self.rau = RoutingArbitrationUnit(config.num_ports)
        self.admission = AdmissionController(config)
        self.stats = StatsRegistry()
        self.connection_stats: Dict[int, ConnectionStats] = {}
        self.output_handlers: List[Optional[OutputHandler]] = [None] * config.num_ports
        self.credit_return_handlers: List[Optional[CreditReturnHandler]] = (
            [None] * config.num_ports
        )
        # Outputs/inputs consumed by asynchronous VCT cut-through during the
        # current flit cycle (§3.4): busy for the next arbitration.
        self._immediate_busy_outputs = set()
        # Activity published to the kernel: one bit per input port (flits
        # buffered), one for a cut-through in flight, one while the
        # crossbar still holds a configuration (it must be torn down by a
        # tick before the router can go idle).
        self._act_immediate = config.num_ports
        self._act_crossbar = config.num_ports + 1
        self.activity = ActivitySet(config.num_ports + 2)
        self._flits_available = [
            port.status.vector("flits_available") for port in self.input_ports
        ]
        self._input_buffer_full = [
            port.status.vector("input_buffer_full") for port in self.input_ports
        ]
        # Hot-path caches: the tick/transmit/deliver pipeline runs hundreds
        # of thousands of times per experiment.
        self._round_length = config.round_length
        self._port_mask = (1 << config.num_ports) - 1
        self._output_flit_keys = [
            f"output{p}_flits" for p in range(config.num_ports)
        ]
        # Candidate lists are never mutated by schedulers, so idle ports
        # can all share one empty list; busy cycles start from a copy of
        # the all-idle template and fill in only the active ports.
        self._no_candidates: List = []
        self._no_candidate_lists: List[List] = [
            self._no_candidates for _ in range(config.num_ports)
        ]
        # The legacy (seed) kernel polls every port every cycle; the
        # activity kernel polls only ports whose activity bit is set.
        self._legacy_kernel = not sim.allow_fast_forward
        self.sim.add_ticker(
            self.tick,
            activity=self.activity,
            on_skip=self.account_idle_cycles,
            name=name,
            on_restore=self.rebuild_derived_state,
        )

    # ----- wiring ------------------------------------------------------------

    def set_output_handler(self, port: int, handler: OutputHandler) -> None:
        """Connect output ``port`` to a downstream consumer."""
        self.output_handlers[port] = handler

    def set_credit_return_handler(self, port: int, handler: CreditReturnHandler) -> None:
        """Register the upstream credit-return path for input ``port``."""
        self.credit_return_handlers[port] = handler

    def _credit_check(self, output_port: int, output_vc: int) -> bool:
        if output_vc < 0:
            # Sink binding (single-router mode): always room downstream.
            return True
        return self.output_flow[output_port].has_credit(output_vc)

    def _make_credit_listener(self, output_port: int) -> "_CreditListener":
        return _CreditListener(
            self._downstream_users, self._credits_vectors, output_port
        )

    # ----- columnar engine ---------------------------------------------------

    def set_columnar_state(self, enabled: bool) -> None:
        """Flip the columnar scheduling engine on or off mid-run.

        Free in both directions: the object graph stays authoritative
        while columnar is on, so enabling rebuilds the array mirror from
        it and disabling simply drops the arrays.  Raises
        ``ColumnarUnavailableError`` when enabling without NumPy.
        """
        for scheduler in self.link_schedulers:
            scheduler.set_columnar(enabled)
        self.columnar_state = enabled

    def rebuild_derived_state(self) -> None:
        """Rebuild non-pickled derived state after a checkpoint restore.

        Invoked by ``Simulator.restore`` through the ticker's
        ``on_restore`` hook.  The columnar array banks are deliberately
        dropped from checkpoints (see ``LinkScheduler.__getstate__``);
        rebuilding them eagerly here keeps the first post-restore cycle
        off the allocation path and surfaces a missing-NumPy error at
        restore time instead of mid-run.
        """
        if self.columnar_state:
            for scheduler in self.link_schedulers:
                scheduler._ensure_columnar()

    def invalidate_priority_cache(self, input_port: int, vc_index: int) -> None:
        """Drop one VC's cached priority terms (object and columnar).

        Must be called after mutating any input of the priority
        computation outside the router's own APIs — e.g. the connection
        manager rewriting ``static_priority`` or a bandwidth
        renegotiation rewriting ``interarrival_cycles`` while a head
        flit sits parked on the VC.  Without it the scheduling fast
        paths keep serving the stale terms until the head flit drains.
        """
        vc = self.input_ports[input_port].vcs[vc_index]
        self.link_schedulers[input_port].invalidate_vc(vc)

    # ----- route state (fast-path vector maintenance) -----------------------

    def _register_route_state(
        self, input_port: int, vc_index: int, output_port: int, output_vc: int
    ) -> None:
        """Mirror a VC's freshly resolved route into the status vectors."""
        if output_port < 0:
            return
        self._routed_vectors[input_port].set(vc_index)
        if output_vc >= 0:
            key = (output_port, output_vc)
            if key in self._downstream_users:
                raise RuntimeError(
                    f"{self.name}: downstream vc {output_port}.{output_vc} "
                    f"already driven by input vc "
                    f"{self._downstream_users[key][0]}."
                    f"{self._downstream_users[key][1]}"
                )
            self._downstream_users[key] = (input_port, vc_index)
            self._credits_vectors[input_port].assign(
                vc_index, self.output_flow[output_port].has_credit(output_vc)
            )
        else:
            # Sink binding: downstream credit can never block.
            self._credits_vectors[input_port].set(vc_index)

    def _release_route_state(self, vc: VirtualChannel) -> None:
        """Drop a VC's route mirroring (teardown or re-route)."""
        input_port = vc.port
        self._routed_vectors[input_port].clear(vc.index)
        # Unbound/unrouted VCs park with credits available (the vector's
        # idle default), so a future binding starts from a known state.
        self._credits_vectors[input_port].set(vc.index)
        if vc.output_port >= 0 and vc.output_vc >= 0:
            self._downstream_users.pop((vc.output_port, vc.output_vc), None)

    def scrub_vc_scheduling_state(self, input_port: int, vc_index: int) -> None:
        """Reset a VC's fast-path scheduling bits ahead of its release.

        Must run while the VC still holds its route (the downstream-user
        map is keyed by it).  Clears the routed/credits mirroring and the
        per-round serviced/exhausted bits so a future occupant of the VC
        inherits nothing — a stale ``round_budget_exhausted`` bit would
        silently mask the next connection until a round boundary.
        """
        port = self.input_ports[input_port]
        vc = port.vcs[vc_index]
        self._release_route_state(vc)
        status = port.status
        status.vector("cbr_bandwidth_serviced").clear(vc_index)
        status.vector("vbr_bandwidth_serviced").clear(vc_index)
        status.vector("round_budget_exhausted").clear(vc_index)
        self.link_schedulers[input_port].invalidate_vc(vc)

    def assign_route(
        self, input_port: int, vc_index: int, output_port: int, output_vc: int = -1
    ) -> None:
        """Resolve (or change) the route of an already-bound VC.

        The only supported way to set ``vc.output_port``/``vc.output_vc``
        after binding: it keeps the ``routed`` and ``credits_available``
        status vectors and the downstream-user map in sync, which the
        scheduling fast path depends on.  Used by best-effort routing
        (a blocked packet routed once a downstream VC frees up, §3.4) and
        by probe-driven connection establishment (§3.5).
        """
        vc = self.input_ports[input_port].vcs[vc_index]
        if vc.connection_id is None:
            raise RuntimeError(
                f"{self.name}: cannot route unbound VC {input_port}.{vc_index}"
            )
        if vc.output_port >= 0 or vc.output_vc >= 0:
            self._release_route_state(vc)
        vc.output_port = output_port
        vc.output_vc = output_vc
        self._register_route_state(input_port, vc_index, output_port, output_vc)
        # Route context feeds the cached priority terms (class offsets,
        # interarrival) and the columnar output column — invalidate so
        # the next scan recomputes and resyncs.
        self.link_schedulers[input_port].invalidate_vc(vc)

    # ----- connection management ------------------------------------------------

    def open_connection(
        self,
        connection_id: int,
        input_port: int,
        output_port: int,
        request: BandwidthRequest,
        service_class: ServiceClass = ServiceClass.CBR,
        interarrival_cycles: float = 1.0,
        static_priority: float = 0.0,
        output_vc: int = -1,
    ) -> Optional[int]:
        """Admit and install a connection through this router.

        Returns the reserved input VC index, or None when admission fails
        (bandwidth exhausted or no free VC).  This is the local slice of
        PCS establishment; multi-hop establishment drives it per router
        (see :mod:`repro.network.connection`).
        """
        port = self.input_ports[input_port]
        vc_index = port.find_free_vc()
        decision = self.admission.admit(
            input_port, output_port, request, input_vc_free=vc_index is not None
        )
        if not decision:
            self.stats.counter("connections_refused")
            return None
        vc = port.vcs[vc_index]
        vc.bind(connection_id, service_class, output_port, output_vc)
        vc.interarrival_cycles = interarrival_cycles
        vc.static_priority = static_priority
        if service_class is ServiceClass.CBR:
            vc.allocated_cycles = request.permanent_cycles
            port.status.vector("cbr_service_requested").set(vc_index)
        elif service_class is ServiceClass.VBR:
            vc.permanent_cycles = request.permanent_cycles
            vc.peak_cycles = request.effective_peak
            port.status.vector("vbr_service_requested").set(vc_index)
        port.status.vector("connection_active").set(vc_index)
        port.mark_bound(vc_index)
        self._register_route_state(input_port, vc_index, output_port, output_vc)
        scheduler = self.link_schedulers[input_port]
        scheduler.refresh_round_state(vc)
        scheduler.invalidate_vc(vc)
        if output_vc >= 0:
            # A real downstream VC exists: record the direct/reverse channel
            # mappings.  Sink outputs (single-router mode) have no channel
            # identity to map.
            self.rau.register_connection(
                connection_id, input_port, vc_index, output_port, output_vc
            )
        self.connection_stats[connection_id] = ConnectionStats()
        self.stats.counter("connections_admitted")
        self.tracer.record(
            self.sim.now,
            "connection",
            f"open {input_port}.{vc_index} -> {output_port}",
            connection_id=connection_id,
        )
        if self.recorder.enabled:
            self.recorder.connection_open(
                self.sim.now, connection_id, input_port, vc_index
            )
        return vc_index

    def open_packet_vc(
        self,
        input_port: int,
        output_port: int,
        service_class: ServiceClass,
        connection_id: int,
        output_vc: int = -1,
        interarrival_cycles: float = 1.0,
    ) -> Optional[int]:
        """Grab a free VC for a VCT packet (control or best-effort, §3.4).

        Packets reserve no bandwidth — best-effort uses whatever is left
        over, control rides above data — so this bypasses admission.  The
        VC is released automatically when the packet's tail flit crosses
        the switch.  Returns the VC index, or None when the port has no
        free VC (the packet blocks upstream).
        """
        if service_class not in (ServiceClass.CONTROL, ServiceClass.BEST_EFFORT):
            raise ValueError(
                f"open_packet_vc is for packet classes, got {service_class}"
            )
        port = self.input_ports[input_port]
        vc_index = port.find_free_vc()
        if vc_index is None:
            self.stats.counter("packet_vc_blocked")
            return None
        vc = port.vcs[vc_index]
        vc.bind(connection_id, service_class, output_port, output_vc)
        vc.interarrival_cycles = interarrival_cycles
        port.status.vector("connection_active").set(vc_index)
        port.mark_bound(vc_index)
        self._register_route_state(input_port, vc_index, output_port, output_vc)
        scheduler = self.link_schedulers[input_port]
        scheduler.refresh_round_state(vc)
        scheduler.invalidate_vc(vc)
        if connection_id not in self.connection_stats:
            self.connection_stats[connection_id] = ConnectionStats()
        self.stats.counter("packet_vcs_opened")
        return vc_index

    def close_connection(
        self,
        connection_id: int,
        input_port: int,
        vc_index: int,
        output_port: int,
        request: BandwidthRequest,
    ) -> None:
        """Tear down a connection and return its resources."""
        port = self.input_ports[input_port]
        vc = port.vcs[vc_index]
        if vc.connection_id != connection_id:
            raise RuntimeError(
                f"VC {input_port}.{vc_index} bound to {vc.connection_id}, "
                f"not {connection_id}"
            )
        self.scrub_vc_scheduling_state(input_port, vc_index)
        vc.release()
        port.status.vector("cbr_service_requested").clear(vc_index)
        port.status.vector("vbr_service_requested").clear(vc_index)
        port.status.vector("connection_active").clear(vc_index)
        port.mark_free(vc_index)
        self.rau.release_connection(connection_id)
        self.admission.release(input_port, output_port, request)
        self.stats.counter("connections_closed")
        self.tracer.record(
            self.sim.now,
            "connection",
            f"close {input_port}.{vc_index}",
            connection_id=connection_id,
        )
        if self.recorder.enabled:
            self.recorder.connection_close(
                self.sim.now, connection_id, input_port, vc_index
            )

    def renegotiate_connection(
        self,
        input_port: int,
        vc_index: int,
        old: BandwidthRequest,
        new: BandwidthRequest,
    ) -> bool:
        """Apply a SET_BANDWIDTH control word to an established connection.

        Atomically swaps the reservation on both links; on success the
        VC's round budget follows the new contract.
        """
        vc = self.input_ports[input_port].vcs[vc_index]
        if vc.connection_id is None:
            raise RuntimeError(f"VC {input_port}.{vc_index} has no connection")
        output_port = vc.output_port
        if not self.admission.outputs[output_port].renegotiate(old, new):
            return False
        if not self.admission.inputs[input_port].renegotiate(old, new):
            # Roll the output side back to the old contract.
            if not self.admission.outputs[output_port].renegotiate(new, old):
                raise RuntimeError("renegotiation rollback failed")
            return False
        if vc.service_class is ServiceClass.CBR:
            vc.allocated_cycles = new.permanent_cycles
        else:
            vc.permanent_cycles = new.permanent_cycles
            vc.peak_cycles = new.effective_peak
        # The new contract may change which round tier the VC sits in
        # right now (e.g. a raised allocation un-exhausts it mid-round)
        # and feeds the cached priority terms and columnar columns.
        scheduler = self.link_schedulers[input_port]
        scheduler.refresh_round_state(vc)
        scheduler.invalidate_vc(vc)
        self.stats.counter("renegotiations")
        return True

    # ----- flit path ----------------------------------------------------------

    def inject(self, input_port: int, vc_index: int, flit: Flit) -> bool:
        """Deliver a fully received flit into an input virtual channel.

        Returns False (without enqueuing) when the VC buffer is full —
        the caller models upstream flow control and must retry after a
        credit returns.  Control-class flits attempt asynchronous VCT
        cut-through first (§3.4).
        """
        vc = self.input_ports[input_port].vcs[vc_index]
        if flit.flit_type in IMMEDIATE_TYPES and self._try_immediate_cut_through(
            input_port, vc, flit
        ):
            return True
        if vc.is_full:
            self._input_buffer_full[input_port].set(vc_index)
            self.stats.counter("inject_blocked")
            return False
        vc.enqueue(flit, self.sim.now)
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                self.sim.now,
                "inject",
                f"port {input_port} vc {vc_index}",
                connection_id=flit.connection_id,
                flit_id=flit.flit_id,
            )
        recorder = self.recorder
        if recorder.enabled:
            recorder.flit_inject(
                self.sim.now, input_port, vc_index, flit.connection_id, flit.flit_id
            )
        self._flits_available[input_port].set(vc_index)
        self.activity.set(input_port)
        if len(vc.buffer) == 1:
            # The flit became head: its priority terms need (re)caching.
            # Maintained unconditionally (one int OR) so the columnar
            # engine's dirty mask is current even before it is enabled.
            self.link_schedulers[input_port]._terms_dirty |= 1 << vc_index
        if vc.is_full:
            self._input_buffer_full[input_port].set(vc_index)
        return True

    def _try_immediate_cut_through(
        self, input_port: int, vc: VirtualChannel, flit: Flit
    ) -> bool:
        """Forward a control flit now if its output link is idle (§3.4)."""
        output_port = vc.output_port
        if output_port < 0:
            return False
        if output_port in self._immediate_busy_outputs:
            return False
        if self.crossbar.output_for(input_port) is not None:
            # The input's switch port is mid-transmission this cycle.
            return False
        if any(
            out == output_port for out in self.crossbar.configuration.values()
        ):
            return False
        if vc.buffer:
            # Flits already queued on this VC must stay ordered.
            return False
        if vc.output_vc >= 0 and not self.output_flow[output_port].has_credit(
            vc.output_vc
        ):
            return False
        flit.ready_time = self.sim.now
        # The cut-through event must precede the deliver event it causes.
        if self.recorder.enabled:
            self.recorder.cut_through(
                self.sim.now,
                input_port,
                output_port,
                flit.connection_id,
                flit.flit_id,
            )
        self._deliver(flit, vc, output_port, depart_time=self.sim.now)
        self._immediate_busy_outputs.add(output_port)
        self.activity.set(self._act_immediate)
        self.rau.immediate_forwards += 1
        self.stats.counter("immediate_cut_throughs")
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now,
                "cutthrough",
                f"port {input_port} -> {output_port}",
                connection_id=flit.connection_id,
                flit_id=flit.flit_id,
            )
        return True

    def tick(self, cycle: int) -> None:
        """One flit cycle: schedule, reconfigure, transmit, account.

        Under the legacy (seed) kernel every link scheduler is polled every
        cycle, exactly as the seed engine did.  Under the activity kernel
        the per-port activity bits — which mirror ``flits_available`` —
        gate the polling: an idle port contributes an empty candidate set
        either way, so the short-circuit is behaviour-preserving.  A cycle
        with no buffered flits and no cut-through anywhere skips switch
        scheduling entirely (the schedulers grant nothing and draw no
        random state on all-empty candidate sets); only the crossbar
        teardown and the cycle accounting remain.
        """
        activity = self.activity
        busy_outputs = self._immediate_busy_outputs
        port_bits = activity.as_int() & self._port_mask
        if self._legacy_kernel or port_bits or busy_outputs:
            if self._legacy_kernel:
                candidate_lists = []
                for scheduler in self.link_schedulers:
                    candidates = scheduler.candidates(cycle)
                    if busy_outputs:
                        candidates = [
                            c
                            for c in candidates
                            if c.output_port not in busy_outputs
                        ]
                    candidate_lists.append(candidates)
            else:
                candidate_lists = self._no_candidate_lists.copy()
                bits = port_bits
                while bits:
                    low = bits & -bits
                    bits ^= low
                    port = low.bit_length() - 1
                    candidates = self.link_schedulers[port].candidates(cycle)
                    if busy_outputs:
                        candidates = [
                            c
                            for c in candidates
                            if c.output_port not in busy_outputs
                        ]
                    candidate_lists[port] = candidates
            switch_scheduler = self.switch_scheduler
            grants = switch_scheduler.schedule(candidate_lists, cycle)
            switch_scheduler.schedule_calls += 1
            if grants:
                switch_scheduler.grants_issued += len(grants)
            if self.checked:
                validate_grants(
                    grants,
                    self.config.num_ports,
                    self.switch_scheduler.output_concurrency,
                )
            if grants:
                # The grant set satisfies the matching property by
                # construction (and validate_grants just proved it when
                # checking is on), so skip configure()'s re-validation.
                self.crossbar.install(
                    {grant.input_port: grant.output_port for grant in grants}
                )
                for grant in grants:
                    self._transmit(grant, cycle)
                flits = len(grants)
            else:
                self.crossbar.configure({})
                flits = 0
        else:
            self.crossbar.teardown()
            flits = 0
        self.stats.counter("cycles")
        self.stats.counter("flits_switched", flits)
        if busy_outputs:
            busy_outputs.clear()
            activity.clear(self._act_immediate)
        # Keep the router active while the crossbar holds a configuration:
        # the tick after the last transmission tears it down (and counts
        # the reconfiguration) exactly as the always-ticking kernel did.
        activity.assign(self._act_crossbar, flits != 0)
        if (cycle + 1) % self._round_length == 0:
            recorder = self.recorder
            if recorder.enabled:
                # Sample *before* the schedulers reset their round
                # accounting so consumed-vs-reserved reflects this round.
                recorder.sample_round(self, cycle)
            for scheduler in self.link_schedulers:
                scheduler.on_round_boundary()
            tracer = self.tracer
            if tracer.enabled:
                tracer.record(cycle, "round", "round boundary")

    def account_idle_cycles(self, start: int, count: int) -> None:
        """Bookkeeping for cycles the kernel skipped this router's tick.

        Called by the simulator (see ``Simulator.add_ticker``) for idle
        cycles, either one at a time while other components stay busy or
        in bulk when the whole simulation fast-forwards.  Replays exactly
        what :meth:`tick` does on a cycle with no flits buffered: advance
        the cycle counters and process any round boundary in the span
        (resetting per-round service state is idempotent while no flit
        moves, so the skipped boundaries collapse losslessly).
        """
        # Counter updates written out longhand: this runs once per skipped
        # span, which at light load is once per flit period.
        scalars = self.stats.scalars
        scalars["cycles"] = scalars.get("cycles", 0.0) + count
        scalars.setdefault("flits_switched", 0.0)
        round_length = self._round_length
        # Boundary cycles c satisfy (c + 1) % round_length == 0; find the
        # first at or after ``start``, then stride.  Most skipped spans are
        # shorter than a round and contain no boundary at all.
        first = start + (round_length - 1 - start % round_length)
        if first < start + count:
            recorder = self.recorder
            for cycle in range(first, start + count, round_length):
                if recorder.enabled:
                    recorder.sample_round(self, cycle)
                for scheduler in self.link_schedulers:
                    scheduler.on_round_boundary()
                if self.tracer.enabled:
                    self.tracer.record(cycle, "round", "round boundary")

    def _transmit(self, grant: Grant, cycle: int) -> None:
        input_port = grant.input_port
        vc_index = grant.vc_index
        vc = self.input_ports[input_port].vcs[vc_index]
        self.crossbar.transmit(input_port)
        flit = vc.dequeue(cycle + 1)
        scheduler = self.link_schedulers[input_port]
        if vc.buffer:
            # The successor became head: mark its terms dirty for the
            # columnar engine (the object path re-checks head identity).
            scheduler._terms_dirty |= 1 << vc_index
        else:
            flits_available = self._flits_available[input_port]
            flits_available.clear(vc_index)
            if not flits_available.any():
                self.activity.clear(input_port)
        self._input_buffer_full[input_port].clear(vc_index)
        recorder = self.recorder
        if recorder.enabled:
            recorder.flit_grant(
                cycle, input_port, vc_index, flit.connection_id, flit.flit_id
            )
        scheduler.on_flit_serviced(vc)
        handler = self.credit_return_handlers[input_port]
        if handler is not None:
            handler(vc_index)
        self._deliver(flit, vc, grant.output_port, cycle + 1)

    def _deliver(
        self, flit: Flit, vc: VirtualChannel, output_port: int, depart_time: int
    ) -> None:
        flit.depart_time = depart_time
        delay = depart_time - flit.created
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                depart_time,
                "deliver",
                f"output {output_port} delay {delay}",
                connection_id=flit.connection_id,
                flit_id=flit.flit_id,
            )
        recorder = self.recorder
        if recorder.enabled:
            recorder.flit_deliver(
                depart_time, output_port, delay, flit.connection_id, flit.flit_id
            )
        stats = self.connection_stats.get(flit.connection_id)
        if stats is not None:
            stats.record_flit(delay)
        self.stats.observe("switch_delay", delay)
        if self.delay_histogram is not None:
            self.delay_histogram.add(delay)
        self.stats.counter(self._output_flit_keys[output_port])
        output_vc = vc.output_vc
        if output_vc >= 0:
            self.output_flow[output_port].consume(output_vc)
        handler = self.output_handlers[output_port]
        if handler is not None:
            handler(flit, output_vc)
        # VCT packets release their virtual channel once fully sent (§3.4).
        if (
            vc.service_class in _PACKET_CLASSES
            and flit.is_tail
            and not vc.buffer
            and vc.connection_id is not None
        ):
            self._release_packet_vc(vc)

    def _release_packet_vc(self, vc: VirtualChannel) -> None:
        port = self.input_ports[vc.port]
        connection_id = vc.connection_id
        self.scrub_vc_scheduling_state(vc.port, vc.index)
        vc.release()
        port.status.vector("connection_active").clear(vc.index)
        port.mark_free(vc.index)
        if self.rau.mappings.forward((vc.port, vc.index)) is not None:
            self.rau.mappings.remove_by_input((vc.port, vc.index))
        self.stats.counter("packet_vcs_released")
        # Packet connection stats stay: the id may be reused for reporting.
        del connection_id

    # ----- reporting --------------------------------------------------------

    def reset_statistics(self) -> None:
        """Discard warm-up statistics; connection bindings are untouched.

        The paper gathers statistics "until steady state was reached";
        harnesses call this at the end of the warm-up window.
        """
        self.stats = StatsRegistry()
        for connection_id in list(self.connection_stats):
            self.connection_stats[connection_id] = ConnectionStats()
        if self.delay_histogram is not None:
            self.delay_histogram = Histogram(
                self.delay_histogram.low,
                self.delay_histogram.high,
                self.delay_histogram.bins,
            )
        self.crossbar.reconfigurations = 0
        self.crossbar.flits_switched = 0
        for scheduler in self.link_schedulers:
            scheduler.candidates_offered = 0
            scheduler.cycles_with_candidates = 0
            scheduler.eligible_vcs_total = 0
            scheduler.vbr_permanent_grants = 0
            scheduler.vbr_excess_grants = 0
        self.switch_scheduler.grants_issued = 0
        self.switch_scheduler.schedule_calls = 0

    def check_invariants(self) -> None:
        """Validate cross-structure consistency (tests/checked mode).

        * ``flits_available`` mirrors VC buffer occupancy exactly;
        * ``input_buffer_full`` is only set on genuinely full VCs;
        * the free-VC pools mirror connection bindings;
        * ``connection_active`` matches bound VCs;
        * the fast-path vectors hold: ``routed`` mirrors resolved output
          ports, ``credits_available`` mirrors :meth:`_credit_check` on
          routed VCs, and ``round_budget_exhausted`` plus the cached
          ``round_offset`` reproduce the reference round gate;
        * the published activity bits mirror ``flits_available`` per port
          (a desync here would let the kernel skip a busy router);
        * the RAU's direct/reverse stores are mirror images.

        Raises ``AssertionError`` on the first violation.
        """
        for port in self.input_ports:
            status = port.status
            scheduler = self.link_schedulers[port.port]
            for vc in port.vcs:
                has_flits = status.vector("flits_available").test(vc.index)
                assert has_flits == (vc.occupancy > 0), (
                    f"{self.name}: flits_available desync at "
                    f"{port.port}.{vc.index}"
                )
                if status.vector("input_buffer_full").test(vc.index):
                    assert vc.is_full, (
                        f"{self.name}: input_buffer_full set on non-full "
                        f"{port.port}.{vc.index}"
                    )
                bound = vc.connection_id is not None
                assert status.vector("connection_active").test(vc.index) == bound, (
                    f"{self.name}: connection_active desync at "
                    f"{port.port}.{vc.index}"
                )
                assert (vc.index in port._free_vcs) == (not bound), (
                    f"{self.name}: free pool desync at {port.port}.{vc.index}"
                )
                routed = bound and vc.output_port >= 0
                assert status.vector("routed").test(vc.index) == routed, (
                    f"{self.name}: routed desync at {port.port}.{vc.index}"
                )
                credits_bit = status.vector("credits_available").test(vc.index)
                if routed:
                    assert credits_bit == self._credit_check(
                        vc.output_port, vc.output_vc
                    ), (
                        f"{self.name}: credits_available desync at "
                        f"{port.port}.{vc.index}"
                    )
                else:
                    assert credits_bit, (
                        f"{self.name}: credits_available not parked at "
                        f"{port.port}.{vc.index}"
                    )
                gate = scheduler._round_gate(vc) if bound else 0.0
                exhausted = status.vector("round_budget_exhausted").test(vc.index)
                assert exhausted == (gate is None), (
                    f"{self.name}: round_budget_exhausted desync at "
                    f"{port.port}.{vc.index}"
                )
                if gate is not None:
                    assert vc.round_offset == gate, (
                        f"{self.name}: round_offset desync at "
                        f"{port.port}.{vc.index}: "
                        f"{vc.round_offset} != {gate}"
                    )
            assert self.activity.test(port.port) == status.vector(
                "flits_available"
            ).any(), f"{self.name}: activity bit desync at port {port.port}"
        self.rau.mappings.check_consistency()

    def utilisation(self) -> float:
        """Delivered fraction of aggregate switch bandwidth so far."""
        cycles = self.stats.get_counter("cycles")
        if not cycles:
            return 0.0
        return self.stats.get_counter("flits_switched") / (
            cycles * self.config.num_ports
        )

    def buffered_flits(self) -> int:
        """Flits currently waiting in input VCs (for drain checks)."""
        return sum(
            vc.occupancy for port in self.input_ports for vc in port.vcs
        )
