"""Switch scheduling (paper §4.4, §5.1).

The switch scheduler decides, every flit cycle, which input port connects
to which output port.  The MMR is *input-driven*: each link scheduler
offers a candidate set, and output conflicts are resolved by priority.
Three schedulers cover the evaluation:

* :class:`GreedyPriorityScheduler` — the MMR's scheme: all ports scheduled
  concurrently; conflicts arbitrated by (dynamically biased or fixed)
  priority, highest first.
* :class:`DecScheduler` — the Autonet/DEC comparison point [2, 24]:
  candidates chosen and conflicts arbitrated by random selection through
  parallel iterative request/grant/accept rounds (PIM).
* :class:`PerfectSwitchScheduler` — the lower-bound switch with N-times
  internal bandwidth: every input transmits its best candidate, outputs
  never conflict.
"""

from __future__ import annotations

import abc
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..sim.rng import SeededRng
from .link_scheduler import Candidate


class Grant(NamedTuple):
    """One scheduled transmission: input port, VC and output port."""

    input_port: int
    vc_index: int
    output_port: int


class SwitchScheduler(abc.ABC):
    """Turns per-input candidate sets into a set of grants."""

    name: str = "abstract"
    #: True when the backing switch can accept several flits per output
    #: per cycle (only the perfect switch).
    output_concurrency: int = 1
    #: Matching accounting, maintained by the router around each
    #: ``schedule`` call (class-level defaults; incremented per instance).
    grants_issued: int = 0
    schedule_calls: int = 0

    @abc.abstractmethod
    def schedule(
        self, candidate_lists: Sequence[List[Candidate]], now: int
    ) -> List[Grant]:
        """Compute the grants for this flit cycle.

        ``candidate_lists[p]`` is input port ``p``'s candidate set, in the
        link scheduler's preference order.  Every returned grant must use
        each input port at most once and respect the output concurrency.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GreedyPriorityScheduler(SwitchScheduler):
    """The MMR input-driven scheme: global priority-ordered matching.

    All candidates from all ports are considered together, highest
    priority first; a candidate is granted when both its input port and
    its output port are still free.  This models concurrent per-output
    arbiters with priority selection, resolved consistently.
    """

    name = "greedy"

    def schedule(
        self, candidate_lists: Sequence[List[Candidate]], now: int
    ) -> List[Grant]:
        contributing = [candidates for candidates in candidate_lists if candidates]
        if not contributing:
            return []
        if len(contributing) == 1:
            # Every candidate shares one input port, so the full greedy
            # pass grants exactly the top-priority candidate and skips the
            # rest (input constraint).  This is the common case at light
            # load, where a single port has flits buffered in a cycle.
            candidates = contributing[0]
            best = (
                candidates[0]
                if len(candidates) == 1
                else min(candidates, key=Candidate.sort_key)
            )
            return [Grant(best.input_port, best.vc_index, best.output_port)]
        merged: List[Candidate] = []
        for candidates in contributing:
            merged.extend(candidates)
        # Each per-input list is already in sort_key order, so Timsort's
        # run detection makes this close to a k-way merge.
        merged.sort(key=Candidate.sort_key)
        grants: List[Grant] = []
        inputs_used = set()
        outputs_used = set()
        unmatched = len(contributing)
        for candidate in merged:
            if candidate.input_port in inputs_used:
                continue
            if candidate.output_port in outputs_used:
                continue
            inputs_used.add(candidate.input_port)
            outputs_used.add(candidate.output_port)
            grants.append(
                Grant(candidate.input_port, candidate.vc_index, candidate.output_port)
            )
            unmatched -= 1
            if not unmatched:
                # Every contributing input holds a grant; the remaining
                # tail cannot add one (input constraint), so stop walking.
                break
        return grants


class DecScheduler(SwitchScheduler):
    """Autonet/DEC-style scheduling: parallel iterative random matching.

    Anderson et al.'s high-speed switch scheduling for the DEC AN2
    (the Autonet successor) performs repeated request/grant/accept rounds
    with uniformly random selections.  Priorities are ignored entirely —
    the scheme optimises matching size, not QoS.
    """

    name = "dec"

    def __init__(self, rng: SeededRng, iterations: int = 4) -> None:
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.rng = rng
        self.iterations = iterations

    def schedule(
        self, candidate_lists: Sequence[List[Candidate]], now: int
    ) -> List[Grant]:
        # Remaining candidate sets per unmatched input.
        remaining: Dict[int, List[Candidate]] = {
            port: list(candidates)
            for port, candidates in enumerate(candidate_lists)
            if candidates
        }
        grants: List[Grant] = []
        outputs_used = set()
        for _ in range(self.iterations):
            if not remaining:
                break
            # Request phase: each input requests every free output it has a
            # candidate for.
            requests: Dict[int, List[Candidate]] = {}
            for candidates in remaining.values():
                for candidate in candidates:
                    if candidate.output_port not in outputs_used:
                        requests.setdefault(candidate.output_port, []).append(
                            candidate
                        )
            if not requests:
                break
            # Grant phase: each output grants one random request.
            granted: Dict[int, List[Candidate]] = {}
            for output_port, reqs in requests.items():
                choice = self.rng.choice(reqs)
                granted.setdefault(choice.input_port, []).append(choice)
            # Accept phase: each input accepts one random grant.
            for input_port, offers in granted.items():
                if input_port not in remaining:
                    continue
                accepted = self.rng.choice(offers)
                grants.append(
                    Grant(accepted.input_port, accepted.vc_index, accepted.output_port)
                )
                outputs_used.add(accepted.output_port)
                del remaining[input_port]
        return grants


class PerfectSwitchScheduler(SwitchScheduler):
    """Lower bound: outputs accept any number of flits per cycle.

    Each input simply transmits its highest-preference candidate; only the
    one-flit-per-input (link bandwidth) constraint remains.
    """

    name = "perfect"

    def __init__(self, num_ports: int) -> None:
        if num_ports <= 0:
            raise ValueError(f"num_ports must be positive, got {num_ports}")
        self.output_concurrency = num_ports

    def schedule(
        self, candidate_lists: Sequence[List[Candidate]], now: int
    ) -> List[Grant]:
        grants: List[Grant] = []
        for candidates in candidate_lists:
            if candidates:
                best = candidates[0]
                grants.append(Grant(best.input_port, best.vc_index, best.output_port))
        return grants


def validate_grants(
    grants: Sequence[Grant], num_ports: int, output_concurrency: int = 1
) -> None:
    """Assert the structural invariants every scheduler must uphold.

    Used by tests and (cheaply) by the router in checked mode: each input
    port appears at most once, each output port at most
    ``output_concurrency`` times, all ports in range.
    """
    inputs_seen = set()
    outputs_count: Dict[int, int] = {}
    for grant in grants:
        if not 0 <= grant.input_port < num_ports:
            raise ValueError(f"grant input port {grant.input_port} out of range")
        if not 0 <= grant.output_port < num_ports:
            raise ValueError(f"grant output port {grant.output_port} out of range")
        if grant.input_port in inputs_seen:
            raise ValueError(f"input port {grant.input_port} granted twice")
        inputs_seen.add(grant.input_port)
        outputs_count[grant.output_port] = outputs_count.get(grant.output_port, 0) + 1
        if outputs_count[grant.output_port] > output_concurrency:
            raise ValueError(
                f"output port {grant.output_port} over-committed "
                f"({outputs_count[grant.output_port]} > {output_concurrency})"
            )
