"""Per-output-link bandwidth allocation registers (paper §4.2).

Bandwidth is allocated in flit cycles per round.  Each output link keeps:

* a register accumulating the flit cycles/round committed to CBR
  connections plus the *permanent* bandwidth of VBR connections, and
* a second register accumulating the *peak* bandwidth of VBR connections.

A CBR request is admitted while register 1 stays within the round; a VBR
request additionally requires register 2 to stay within round x
concurrency-factor.  The concurrency factor is the paper's knob trading
QoS strength against connection count and link utilisation.  Optionally a
fraction of each round is reserved for best-effort traffic to prevent its
starvation.
"""

from __future__ import annotations

from dataclasses import dataclass


class AllocationError(RuntimeError):
    """Raised when releasing bandwidth that was never allocated."""


@dataclass(frozen=True)
class BandwidthRequest:
    """A connection's bandwidth demand, in flit cycles per round.

    CBR connections set ``permanent_cycles`` only (their peak equals their
    permanent rate); VBR connections set both.
    """

    permanent_cycles: int
    peak_cycles: int = 0

    def __post_init__(self) -> None:
        if self.permanent_cycles <= 0:
            raise ValueError(
                f"permanent_cycles must be positive, got {self.permanent_cycles}"
            )
        peak = self.peak_cycles or self.permanent_cycles
        if peak < self.permanent_cycles:
            raise ValueError(
                f"peak ({self.peak_cycles}) below permanent "
                f"({self.permanent_cycles})"
            )

    @property
    def effective_peak(self) -> int:
        """Peak demand; defaults to the permanent demand for CBR."""
        return self.peak_cycles or self.permanent_cycles

    @property
    def is_vbr(self) -> bool:
        """True when the peak exceeds the permanent demand."""
        return self.effective_peak > self.permanent_cycles


class BandwidthAllocator:
    """The two admission registers of one output link."""

    def __init__(
        self,
        round_length: int,
        concurrency_factor: float = 2.0,
        best_effort_reserved_fraction: float = 0.0,
    ) -> None:
        if round_length <= 0:
            raise ValueError(f"round_length must be positive, got {round_length}")
        if concurrency_factor < 1.0:
            raise ValueError(
                f"concurrency_factor must be >= 1, got {concurrency_factor}"
            )
        if not 0.0 <= best_effort_reserved_fraction < 1.0:
            raise ValueError(
                "best_effort_reserved_fraction must be in [0, 1), got "
                f"{best_effort_reserved_fraction}"
            )
        self.round_length = round_length
        self.concurrency_factor = concurrency_factor
        self.best_effort_reserved = int(round_length * best_effort_reserved_fraction)
        # Register 1: CBR allocations + VBR permanent bandwidth.
        self.allocated_cycles = 0
        # Register 2: sum of VBR peak bandwidths.
        self.peak_cycles = 0
        self.active_connections = 0

    # ----- admission ------------------------------------------------------

    @property
    def allocatable_cycles(self) -> int:
        """Flit cycles per round available to connections (round minus the
        best-effort reservation)."""
        return self.round_length - self.best_effort_reserved

    @property
    def peak_budget(self) -> float:
        """Ceiling for register 2: round length x concurrency factor."""
        return self.allocatable_cycles * self.concurrency_factor

    def can_allocate(self, request: BandwidthRequest) -> bool:
        """Would ``request`` be admitted on this link right now?"""
        if self.allocated_cycles + request.permanent_cycles > self.allocatable_cycles:
            return False
        if request.is_vbr:
            if self.peak_cycles + request.effective_peak > self.peak_budget:
                return False
        return True

    def allocate(self, request: BandwidthRequest) -> bool:
        """Admit ``request`` if possible; returns success."""
        if not self.can_allocate(request):
            return False
        self.allocated_cycles += request.permanent_cycles
        if request.is_vbr:
            self.peak_cycles += request.effective_peak
        self.active_connections += 1
        return True

    def release(self, request: BandwidthRequest) -> None:
        """Return the bandwidth of a departing connection."""
        if self.allocated_cycles < request.permanent_cycles:
            raise AllocationError(
                f"releasing {request.permanent_cycles} cycles but only "
                f"{self.allocated_cycles} allocated"
            )
        self.allocated_cycles -= request.permanent_cycles
        if request.is_vbr:
            if self.peak_cycles < request.effective_peak:
                raise AllocationError(
                    f"releasing peak {request.effective_peak} but only "
                    f"{self.peak_cycles} accounted"
                )
            self.peak_cycles -= request.effective_peak
        if self.active_connections <= 0:
            raise AllocationError("releasing a connection on an idle link")
        self.active_connections -= 1

    def renegotiate(
        self, old: BandwidthRequest, new: BandwidthRequest
    ) -> bool:
        """Atomically swap ``old`` for ``new`` (dynamic bandwidth, §4.3).

        Either both registers are updated or neither.  Returns success.
        """
        self.release(old)
        if self.allocate(new):
            return True
        # Roll back: re-admitting the old request cannot fail because we
        # just freed exactly its footprint.
        if not self.allocate(old):
            raise AllocationError("rollback of renegotiation failed")
        return False

    # ----- reporting --------------------------------------------------------

    @property
    def utilisation(self) -> float:
        """Committed fraction of the round (register 1 over round length)."""
        return self.allocated_cycles / self.round_length

    @property
    def peak_oversubscription(self) -> float:
        """Register 2 over the round length: >1 means peaks overlap."""
        return self.peak_cycles / self.round_length

    def __repr__(self) -> str:
        return (
            f"BandwidthAllocator(allocated={self.allocated_cycles}/"
            f"{self.allocatable_cycles}, peak={self.peak_cycles}/"
            f"{self.peak_budget:.0f}, connections={self.active_connections})"
        )
