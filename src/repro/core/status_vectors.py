"""Status bit vectors (paper §4.1).

The MMR trades silicon for scheduling speed: per-virtual-channel conditions
(``flits_available``, ``input_buffer_full``, ``cbr_service_requested``, ...)
are kept as bit vectors so the set of channels satisfying a compound
condition falls out of wide AND/OR operations in one step.

We model a vector as an arbitrary-precision Python integer bitmask, which
gives exactly the same bulk-parallel semantics (``&``, ``|``, ``~``) the
hardware exploits.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional


class BitVector:
    """A fixed-width vector of per-virtual-channel status bits."""

    __slots__ = ("width", "_bits", "_mask")

    def __init__(self, width: int, bits: int = 0) -> None:
        if width <= 0:
            raise ValueError(f"BitVector width must be positive, got {width}")
        self.width = width
        self._mask = (1 << width) - 1
        if bits & ~self._mask:
            raise ValueError(f"bits 0x{bits:x} exceed width {width}")
        self._bits = bits

    # ----- single-bit operations ----------------------------------------

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        self._check(index)
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        self._check(index)
        self._bits &= ~(1 << index)

    def assign(self, index: int, value: bool) -> None:
        """Set bit ``index`` to ``value``."""
        if value:
            self.set(index)
        else:
            self.clear(index)

    def test(self, index: int) -> bool:
        """Read bit ``index``."""
        self._check(index)
        return bool(self._bits >> index & 1)

    def _check(self, index: int) -> None:
        if not 0 <= index < self.width:
            raise IndexError(f"bit {index} out of range [0, {self.width})")

    # ----- bulk operations ------------------------------------------------

    def clear_all(self) -> None:
        """Reset every bit to 0."""
        self._bits = 0

    def set_all(self) -> None:
        """Set every bit to 1."""
        self._bits = self._mask

    def count(self) -> int:
        """Population count."""
        return self._bits.bit_count()

    def any(self) -> bool:
        """True when at least one bit is set."""
        return self._bits != 0

    def indices(self) -> Iterator[int]:
        """Yield the set-bit indices in ascending order.

        Walks only the set bits: ``bits & -bits`` isolates the lowest
        set bit (two's complement), ``bit_length() - 1`` names it, and
        xor clears it, so the cost is proportional to the population
        count, not the width — important when scanning 256-wide vectors
        every flit cycle.  Microbench (CPython 3.11, 16 of 256 bits
        set): ~2.9µs per walk vs ~18.6µs for the naive test-every-index
        scan, ~6.5x; the gap widens with sparser vectors and vanishes
        only near full occupancy.  ``tests/test_status_vectors.py``
        property-tests this walk against the naive scan on random
        vectors.
        """
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def first_set(self) -> int:
        """Lowest set-bit index, or -1 when empty (a priority encoder)."""
        if not self._bits:
            return -1
        return (self._bits & -self._bits).bit_length() - 1

    def as_int(self) -> int:
        """Raw mask value."""
        return self._bits

    # ----- combinational logic ---------------------------------------------

    def _coerce(self, other: "BitVector") -> int:
        if self.width != other.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width}"
            )
        return other._bits

    def __and__(self, other: "BitVector") -> "BitVector":
        return BitVector(self.width, self._bits & self._coerce(other))

    def __or__(self, other: "BitVector") -> "BitVector":
        return BitVector(self.width, self._bits | self._coerce(other))

    def __xor__(self, other: "BitVector") -> "BitVector":
        return BitVector(self.width, self._bits ^ self._coerce(other))

    def __invert__(self) -> "BitVector":
        return BitVector(self.width, ~self._bits & self._mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.width == other.width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self.width, self._bits))

    def __repr__(self) -> str:
        return f"BitVector(width={self.width}, bits=0x{self._bits:x})"


class ActivitySet:
    """A component's activity bits, backed by a :class:`BitVector`.

    The simulation kernel asks each ticker "do you have work this cycle?"
    every flit cycle, so the answer must be O(1).  An ``ActivitySet`` gives
    a component one bit per activity source (a port with flits buffered, a
    pending crossbar teardown, an asynchronous cut-through in flight ...);
    sources set and clear their bit as state changes, and ``active()`` is a
    single integer test — the same trade of state for scheduling speed the
    paper's status vectors make (§4.1).

    Pass the set (or its bound ``active`` method) as the ``activity``
    argument of :meth:`repro.sim.engine.Simulator.add_ticker`.

    ``on_wake``, when set, is invoked on every idle-to-busy transition
    (the whole set going from zero to nonzero).  The network arena uses
    it as its per-router wake mask: a sleeping router's first new
    activity bit re-enters it into the arena's stepped set without the
    arena polling every router every cycle.
    """

    __slots__ = ("_bits", "on_wake")

    def __init__(self, width: int) -> None:
        self._bits = BitVector(width)
        self.on_wake: Optional[Callable[[], None]] = None

    def set(self, index: int) -> None:
        """Mark activity source ``index`` busy."""
        vec = self._bits
        if vec._bits == 0:
            vec.set(index)
            # ``getattr`` with a default: instances unpickled from
            # snapshots that predate the hook have no ``on_wake`` slot.
            hook = getattr(self, "on_wake", None)
            if hook is not None:
                hook()
        else:
            vec.set(index)

    def clear(self, index: int) -> None:
        """Mark activity source ``index`` idle."""
        self._bits.clear(index)

    def assign(self, index: int, busy: bool) -> None:
        """Set activity source ``index`` to ``busy``."""
        if busy:
            self.set(index)
        else:
            self._bits.clear(index)

    def test(self, index: int) -> bool:
        """Read activity source ``index``."""
        return self._bits.test(index)

    def active(self) -> bool:
        """True while any activity source is busy (one integer test)."""
        # Reaches through the BitVector: this is the kernel's per-ticker
        # per-cycle poll, the single hottest call in the simulator.
        return self._bits._bits != 0

    def as_int(self) -> int:
        """Raw mask of busy sources (for masked multi-bit reads)."""
        return self._bits._bits

    def __bool__(self) -> bool:
        return self._bits._bits != 0

    def __repr__(self) -> str:
        return f"ActivitySet(width={self._bits.width}, bits=0x{self._bits.as_int():x})"


class StatusBank:
    """The named status vectors associated with one physical link.

    The paper's examples include ``flits_available``, ``input_buffer_full``,
    ``CBR_service_requested``, ``CBR_bandwidth_serviced`` and
    ``VBR_bandwidth_serviced``; further conditions can be added with
    :meth:`register`.  All vectors in a bank share one width (the VC
    count).
    """

    STANDARD_VECTORS = (
        "flits_available",
        "credits_available",
        "input_buffer_full",
        "cbr_service_requested",
        "cbr_bandwidth_serviced",
        "vbr_service_requested",
        "vbr_bandwidth_serviced",
        "connection_active",
        # Fast-path vectors (see DESIGN.md "scheduling fast path"): a VC's
        # output port is resolved / its round budget is spent, maintained
        # incrementally so candidate selection is one fused AND.
        "routed",
        "round_budget_exhausted",
    )

    def __init__(self, width: int) -> None:
        self.width = width
        self._vectors: Dict[str, BitVector] = {
            name: BitVector(width) for name in self.STANDARD_VECTORS
        }
        # Credits start available: an idle downstream buffer is empty.
        self._vectors["credits_available"].set_all()

    def vector(self, name: str) -> BitVector:
        """Fetch the vector called ``name``.

        ``name`` must be a standard vector or one previously added with
        :meth:`register`; unknown names raise ``KeyError``.  (Auto-creating
        on first use turned every typo — ``"flit_available"`` for
        ``"flits_available"`` — into a permanently empty vector that made
        its condition silently unsatisfiable.)
        """
        try:
            return self._vectors[name]
        except KeyError:
            raise KeyError(
                f"unknown status vector {name!r}; register it explicitly "
                f"(known: {', '.join(sorted(self._vectors))})"
            ) from None

    def register(self, name: str) -> BitVector:
        """Add (or fetch, when already present) a custom vector ``name``."""
        if name not in self._vectors:
            self._vectors[name] = BitVector(self.width)
        return self._vectors[name]

    def names(self) -> List[str]:
        """All registered vector names."""
        return sorted(self._vectors)

    def eligible_for_service(self) -> BitVector:
        """VCs with flits to send and downstream credit — the basic
        schedulable set, computed as one wide AND (paper §4.1)."""
        return self._vectors["flits_available"] & self._vectors["credits_available"]

    def schedulable(self) -> BitVector:
        """The fused fast-path mask: flits AND credits AND routed AND NOT
        round-budget-exhausted.  This is the exact eligibility set
        :meth:`repro.core.link_scheduler.LinkScheduler.candidates` walks —
        one wide boolean expression instead of per-VC Python checks."""
        return (
            self._vectors["flits_available"]
            & self._vectors["credits_available"]
            & self._vectors["routed"]
            & ~self._vectors["round_budget_exhausted"]
        )

    def cbr_candidates(self) -> BitVector:
        """The paper's worked example: channels with flits available,
        credits available, CBR service requested and not yet completely
        serviced this round."""
        return (
            self._vectors["flits_available"]
            & self._vectors["credits_available"]
            & self._vectors["cbr_service_requested"]
            & ~self._vectors["cbr_bandwidth_serviced"]
        )
