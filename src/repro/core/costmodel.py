"""Analytic silicon-area / delay cost model (paper §3.2–§3.3).

Section 3.3 argues the multiplexed crossbar "reduces silicon area by V and
V^2, respectively, with respect to a partially multiplexed and a fully
de-multiplexed crossbar, where V is the number of virtual channels per
link", and §3.2 cites Chien's router cost model [8] for the observation
that multiplexor and VC-controller delays grow with the VC count.  This
module encodes those analytic relations so the design-space benchmarks can
regenerate the area argument quantitatively.

Units are normalised: one crossbar crosspoint = 1 area unit; delays follow
Chien's log-depth tree model in gate-delay units.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class CrossbarOrganisation(enum.Enum):
    """The three organisations §3.3 compares (after Dally [9])."""

    MULTIPLEXED = "multiplexed"  # one port per physical link
    PARTIALLY_MULTIPLEXED = "partially_multiplexed"  # a port per VC group
    FULLY_DEMULTIPLEXED = "fully_demultiplexed"  # a port per VC


@dataclass(frozen=True)
class CrossbarCost:
    """Area and arbitration properties of one organisation."""

    organisation: CrossbarOrganisation
    ports_per_link: int
    crosspoints: int
    needs_output_arbitration: bool
    needs_input_vc_arbitration: bool


def crossbar_cost(
    organisation: CrossbarOrganisation,
    num_links: int,
    vcs_per_link: int,
    group_size: int = 4,
) -> CrossbarCost:
    """Crosspoint area of an ``organisation`` for the given router shape.

    * multiplexed: N x N crosspoints — arbitration on both sides.
    * partially multiplexed: (N * V/g) squared, g = ``group_size``.
    * fully de-multiplexed: (N * V) squared — no VC arbitration at all.
    """
    if num_links <= 0:
        raise ValueError(f"num_links must be positive, got {num_links}")
    if vcs_per_link <= 0:
        raise ValueError(f"vcs_per_link must be positive, got {vcs_per_link}")
    if group_size <= 0 or group_size > vcs_per_link:
        raise ValueError(
            f"group_size must be in [1, vcs_per_link], got {group_size}"
        )
    if organisation is CrossbarOrganisation.MULTIPLEXED:
        ports_per_link = 1
    elif organisation is CrossbarOrganisation.PARTIALLY_MULTIPLEXED:
        ports_per_link = -(-vcs_per_link // group_size)
    else:
        ports_per_link = vcs_per_link
    ports = num_links * ports_per_link
    return CrossbarCost(
        organisation=organisation,
        ports_per_link=ports_per_link,
        crosspoints=ports * ports,
        needs_output_arbitration=organisation
        is not CrossbarOrganisation.FULLY_DEMULTIPLEXED,
        needs_input_vc_arbitration=organisation
        is CrossbarOrganisation.MULTIPLEXED,
    )


def area_ratio(
    baseline: CrossbarOrganisation,
    other: CrossbarOrganisation,
    num_links: int,
    vcs_per_link: int,
    group_size: int = 4,
) -> float:
    """Crosspoint-area ratio other/baseline.

    For the paper's argument: fully de-multiplexed over multiplexed is
    V^2; partially multiplexed over multiplexed is (V/g)^2 (the paper's
    "V" factor corresponds to per-side port growth).
    """
    base = crossbar_cost(baseline, num_links, vcs_per_link, group_size)
    alt = crossbar_cost(other, num_links, vcs_per_link, group_size)
    return alt.crosspoints / base.crosspoints


def multiplexor_delay(vcs: int, fanin_per_stage: int = 4) -> float:
    """Gate delays through a V-to-1 multiplexor tree (Chien's model [8]).

    Depth is logarithmic in the VC count; this is the §3.2 observation
    that "router delays can increase substantially when a large number of
    virtual channels are multiplexed onto physical links".
    """
    if vcs <= 0:
        raise ValueError(f"vcs must be positive, got {vcs}")
    if fanin_per_stage < 2:
        raise ValueError(f"fanin_per_stage must be >= 2, got {fanin_per_stage}")
    if vcs == 1:
        return 0.0
    return math.ceil(math.log(vcs, fanin_per_stage))


def arbiter_delay(requests: int, fanin_per_stage: int = 4) -> float:
    """Gate delays through a priority-encoding arbiter over ``requests``."""
    return multiplexor_delay(requests, fanin_per_stage)


def vcm_cycle_budget(
    link_rate_bps: float,
    phit_size_bits: int,
    memory_access_ns: float,
    num_modules: int,
) -> float:
    """How many phits arrive during one memory access, per module.

    §3.2: "the number of memory modules and flit size must be selected to
    balance memory access time, link speed, and crossbar switching delay".
    A value <= 1.0 means the interleaved memory keeps up with the link;
    above 1.0 the link outruns the memory and phit buffers overflow.
    """
    if link_rate_bps <= 0 or phit_size_bits <= 0:
        raise ValueError("link rate and phit size must be positive")
    if memory_access_ns <= 0 or num_modules <= 0:
        raise ValueError("memory access time and module count must be positive")
    phit_time_ns = phit_size_bits / link_rate_bps * 1e9
    # Each module serves one phit per access; the module array serves
    # num_modules phits per access time.
    return memory_access_ns / (phit_time_ns * num_modules)


def serialization_factor(datapath_width_bits: int, phit_size_bits: int) -> int:
    """Link cycles to serialise one internal word onto the link (§3.3).

    "Serialization is required if internal data paths are wider than
    physical links": a W-bit word leaves a P-bit link over ceil(W/P)
    phit times (1 when the link is at least as wide as the data path).
    """
    if datapath_width_bits <= 0 or phit_size_bits <= 0:
        raise ValueError("widths must be positive")
    return max(1, -(-datapath_width_bits // phit_size_bits))


def flit_pipeline_stages(
    flit_size_bits: int, datapath_width_bits: int
) -> int:
    """Internal transfers to move one flit across the datapath (§3.1).

    Word-level pipelining: a flit crosses the router as
    ceil(flit/word) back-to-back word transfers.
    """
    if flit_size_bits <= 0 or datapath_width_bits <= 0:
        raise ValueError("widths must be positive")
    return -(-flit_size_bits // datapath_width_bits)


def scheduling_rate_ns(link_rate_bps: float, flit_size_bits: int) -> float:
    """Time budget to compute one switch setting (paper §6).

    "Targeting 1-2 Gbps links and 128-bit flit sizes, the crossbar must be
    capable of computing switch settings at a rate of 64 ns-128 ns."
    """
    if link_rate_bps <= 0 or flit_size_bits <= 0:
        raise ValueError("link rate and flit size must be positive")
    return flit_size_bits / link_rate_bps * 1e9
