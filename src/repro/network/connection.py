"""PCS connection management over a network (paper §3.1, §4.2).

Connection establishment sends a routing probe that walks the network
under exhaustive profitable backtracking, reserving a virtual channel and
link bandwidth at every hop; if the probe reaches the destination an
acknowledgment returns along the reverse mappings and the connection
opens.  If the search exhausts the minimal paths the probe backtracks to
the source and the request fails with all partial reservations released.

The probe walk is executed as a control-plane search against live router
state (admission registers, VC occupancy); its cost — links searched,
backtracks, hops — drives the establishment-latency model: the source may
start injecting only after ``probe cost + ack return`` cycles, matching
the PCS pipeline.  Data flits and credits then move cycle-accurately.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.bandwidth import BandwidthRequest
from ..core.virtual_channel import ServiceClass
from ..routing.epb import ProbeResult, epb_search
from .network import Network


@dataclass
class NetworkConnection:
    """An established multi-hop connection."""

    connection_id: int
    source: int
    destination: int
    request: BandwidthRequest
    service_class: ServiceClass
    #: Router path source..destination.
    path: List[int]
    #: Output port used at each router on the path.
    ports: List[int]
    #: Input VC index reserved at each router on the path.
    vcs: List[int]
    #: Input port at each router on the path (host port at the source).
    entry_ports: List[int]
    #: Cycle at which the source may start injecting (probe + ack).
    ready_at: int
    interarrival_cycles: float = 1.0
    probe: Optional[ProbeResult] = None
    closed: bool = False

    @property
    def hops(self) -> int:
        """Number of routers traversed."""
        return len(self.path)

    @property
    def source_vc(self) -> int:
        """The VC the source interface injects into."""
        return self.vcs[0]

    @property
    def source_entry_port(self) -> int:
        """The host input port at the source router."""
        return self.entry_ports[0]


@dataclass
class EstablishmentStats:
    """Aggregate probe statistics for reporting."""

    attempts: int = 0
    established: int = 0
    failed: int = 0
    links_searched: int = 0
    backtracks: int = 0
    setup_cycles: int = 0

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of attempts that produced a connection."""
        return self.established / self.attempts if self.attempts else 0.0


class ConnectionManager:
    """Establishes, renegotiates and tears down PCS connections."""

    #: Cycles a probe spends per link it examines (decode + header route).
    PROBE_CYCLES_PER_LINK = 2
    #: Cycles the returning acknowledgment spends per hop.
    ACK_CYCLES_PER_HOP = 1

    def __init__(self, network: Network, path_search=None) -> None:
        """``path_search`` selects the probe algorithm: any callable with
        the :func:`~repro.routing.epb.epb_search` signature
        ``(topology, source, destination, admissible) -> ProbeResult``,
        e.g. :func:`~repro.routing.dimension_order.dimension_order_search`
        for grid topologies.  Defaults to the EPB backtracking probe."""
        self.network = network
        self.path_search = epb_search if path_search is None else path_search
        self.stats = EstablishmentStats()
        self.connections: Dict[int, NetworkConnection] = {}
        self._ids = itertools.count(1)

    # ----- establishment ----------------------------------------------------

    def establish(
        self,
        source: int,
        destination: int,
        request: BandwidthRequest,
        service_class: ServiceClass = ServiceClass.CBR,
        interarrival_cycles: float = 1.0,
        static_priority: float = 0.0,
    ) -> Optional[NetworkConnection]:
        """Attempt to open a connection; returns it or None on failure."""
        if source == destination:
            raise ValueError("source and destination routers must differ")
        self.stats.attempts += 1
        if not self.feasible_endpoints(source, destination, request):
            # The source interface knows its own link and the destination
            # directory its egress; a probe is not even launched.
            self.stats.failed += 1
            return None
        connection_id = next(self._ids)
        # getattr: managers unpickled from checkpoints that predate the
        # pluggable probe fall back to the EPB default.
        search = getattr(self, "path_search", epb_search)
        probe = search(
            self.network.topology,
            source,
            destination,
            self._admissible(request),
        )
        self.stats.links_searched += probe.links_searched
        self.stats.backtracks += probe.backtracks
        if not probe.success:
            self.stats.failed += 1
            return None
        connection = self._reserve_path(
            connection_id,
            probe,
            request,
            service_class,
            interarrival_cycles,
            static_priority,
        )
        if connection is None:
            self.stats.failed += 1
            return None
        self.stats.established += 1
        self.stats.setup_cycles += connection.ready_at - self.network.sim.now
        self.connections[connection_id] = connection
        return connection

    def feasible_endpoints(
        self, source: int, destination: int, request: BandwidthRequest
    ) -> bool:
        """Can the host links at both ends carry this connection?

        Checks the source router's host-port ingress (register + free VC)
        and the destination router's host-port egress — the two hops a
        path-search predicate never sees.
        """
        topology = self.network.topology
        source_router = self.network.routers[source]
        host_in = topology.host_port(source)
        if source_router.input_ports[host_in].free_vc_count() == 0:
            return False
        if not source_router.admission.inputs[host_in].can_allocate(request):
            return False
        destination_router = self.network.routers[destination]
        host_out = topology.host_port(destination)
        return destination_router.admission.outputs[host_out].can_allocate(request)

    def _admissible(self, request: BandwidthRequest):
        network = self.network

        def check(node: int, out_port: int, next_node: int) -> bool:
            router = network.routers[node]
            if not router.admission.outputs[out_port].can_allocate(request):
                return False
            entry = network.topology.port_of(next_node, node)
            downstream = network.routers[next_node]
            if downstream.input_ports[entry].free_vc_count() == 0:
                return False
            return downstream.admission.inputs[entry].can_allocate(request)

        return check

    def _reserve_path(
        self,
        connection_id: int,
        probe: ProbeResult,
        request: BandwidthRequest,
        service_class: ServiceClass,
        interarrival_cycles: float,
        static_priority: float,
    ) -> Optional[NetworkConnection]:
        """Install reservations at every router on the probed path.

        Reservation proceeds destination-first so each router knows the
        downstream VC index when it installs its channel mapping — the
        order the returning acknowledgment establishes state in hardware.
        """
        topology = self.network.topology
        path = probe.path
        entry_ports = [topology.host_port(path[0])] + [
            topology.port_of(path[i], path[i - 1]) for i in range(1, len(path))
        ]
        out_ports = list(probe.ports) + [topology.host_port(path[-1])]
        reserved_vcs: List[Optional[int]] = [None] * len(path)
        downstream_vc = -1  # destination host port drains to the interface
        opened: List[int] = []
        for i in range(len(path) - 1, -1, -1):
            router = self.network.routers[path[i]]
            vc_index = router.open_connection(
                connection_id,
                entry_ports[i],
                out_ports[i],
                request,
                service_class=service_class,
                interarrival_cycles=interarrival_cycles,
                static_priority=static_priority,
                output_vc=downstream_vc,
            )
            if vc_index is None:
                # Raced against a concurrent reservation: roll back.
                for j in opened:
                    self.network.routers[path[j]].close_connection(
                        connection_id, entry_ports[j], reserved_vcs[j],
                        out_ports[j], request,
                    )
                return None
            reserved_vcs[i] = vc_index
            opened.append(i)
            downstream_vc = vc_index
        setup_cycles = (
            probe.links_searched * self.PROBE_CYCLES_PER_LINK
            + probe.hops * self.ACK_CYCLES_PER_HOP
        )
        return NetworkConnection(
            connection_id=connection_id,
            source=path[0],
            destination=path[-1],
            request=request,
            service_class=service_class,
            path=list(path),
            ports=out_ports,
            vcs=[vc for vc in reserved_vcs if vc is not None],
            entry_ports=entry_ports,
            ready_at=self.network.sim.now + setup_cycles,
            interarrival_cycles=interarrival_cycles,
            probe=probe,
        )

    # ----- teardown -------------------------------------------------------------

    def teardown(self, connection: NetworkConnection) -> None:
        """Release every hop of a connection (buffers must have drained)."""
        if connection.closed:
            raise RuntimeError(f"connection {connection.connection_id} already closed")
        for i, node in enumerate(connection.path):
            self.network.routers[node].close_connection(
                connection.connection_id,
                connection.entry_ports[i],
                connection.vcs[i],
                connection.ports[i],
                connection.request,
            )
        connection.closed = True
        self.connections.pop(connection.connection_id, None)

    # ----- dynamic bandwidth management (§4.3) ------------------------------------

    def renegotiate(
        self, connection: NetworkConnection, new_request: BandwidthRequest
    ) -> bool:
        """Apply a SET_BANDWIDTH control word along the whole path.

        All hops accept or the old contract stays everywhere (the control
        word would be NACKed where capacity is missing).
        """
        if connection.closed:
            raise RuntimeError("cannot renegotiate a closed connection")
        applied: List[int] = []
        for i, node in enumerate(connection.path):
            router = self.network.routers[node]
            ok = router.renegotiate_connection(
                connection.entry_ports[i],
                connection.vcs[i],
                connection.request,
                new_request,
            )
            if not ok:
                for j in applied:
                    back = self.network.routers[connection.path[j]]
                    if not back.renegotiate_connection(
                        connection.entry_ports[j],
                        connection.vcs[j],
                        new_request,
                        connection.request,
                    ):
                        raise RuntimeError("renegotiation rollback failed")
                return False
            applied.append(i)
        connection.request = new_request
        return True

    def set_priority(self, connection: NetworkConnection, priority: float) -> None:
        """Apply a SET_PRIORITY control word along the whole path."""
        for i, node in enumerate(connection.path):
            router = self.network.routers[node]
            entry_port = connection.entry_ports[i]
            vc_index = connection.vcs[i]
            router.input_ports[entry_port].vcs[
                vc_index
            ].static_priority = priority
            # Without this a parked head flit keeps its pre-change
            # priority terms until it drains (stale-cache bug).
            router.invalidate_priority_cache(entry_port, vc_index)
