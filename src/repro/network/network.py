"""Multi-router MMR network (paper §1, §3.5).

Routers are instantiated per topology node and wired link-by-link:

* a flit leaving router ``u`` through port ``p`` arrives, after the link
  latency, in the matching virtual channel of router ``v``'s input port;
* credits flow the other way when the downstream VC frees a slot;
* host ports connect to :class:`~repro.network.interface.NetworkInterface`
  objects that inject traffic and collect end-to-end statistics.

Best-effort packets are routed hop by hop with the adaptive algorithm
(minimal adaptive hops with an up*/down* escape), reserving a virtual
channel at the next router before forwarding, exactly as §3.4 describes
("If the requested output link has free virtual channels at the next
router, a virtual channel is reserved ... otherwise the packet is
blocked").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.arena import NetworkArena
from ..core.config import RouterConfig
from ..core.flit import Flit, FlitType
from ..core.priority import PriorityScheme
from ..core.router import Router
from ..core.switch_scheduler import GreedyPriorityScheduler, SwitchScheduler
from ..core.virtual_channel import ServiceClass
from ..routing.adaptive import AdaptiveRouter
from ..routing.dimension_order import DimensionOrderRouter
from ..sim.engine import Simulator
from ..sim.rng import SeededRng
from ..sim.stats import StatsRegistry
from .topology import Topology

# Callback for flits reaching a host port: (node, host_port, flit).
HostDelivery = Callable[[int, int, Flit], None]


class _LinkOutput:
    """Output handler for a router-to-router link.

    A class (not a closure) so networks are picklable for checkpointing;
    the flit-in-flight itself travels as an event payload for the same
    reason.
    """

    __slots__ = ("network", "node", "port", "neighbor", "remote_port")

    def __init__(
        self, network: "Network", node: int, port: int, neighbor: int
    ) -> None:
        self.network = network
        self.node = node
        self.port = port
        self.neighbor = neighbor
        self.remote_port = network.topology.port_of(neighbor, node)

    def __call__(self, flit: Flit, output_vc: int) -> None:
        if output_vc < 0:
            raise RuntimeError(
                f"flit left router {self.node} port {self.port} without a "
                "downstream VC binding"
            )
        network = self.network
        network.stats.counter("link_flits")
        arena = network.arena
        if arena is not None:
            # Arena link plane: one ring-buffer append instead of a heap
            # push + Event allocation; drained in one sweep at the due
            # cycle in the same relative order the heap would fire.
            arena.push_arrival(
                network.sim.now + network.link_latency,
                self.neighbor,
                self.remote_port,
                output_vc,
                flit,
            )
            return
        network.sim.schedule(
            network.link_latency,
            network._arrive_event,
            (self.neighbor, self.remote_port, output_vc, flit),
        )


class _CreditReturn:
    """Credit-return handler for the upstream side of a link (picklable)."""

    __slots__ = ("network", "neighbor", "upstream_port")

    def __init__(self, network: "Network", neighbor: int, upstream_port: int) -> None:
        self.network = network
        self.neighbor = neighbor
        self.upstream_port = upstream_port

    def __call__(self, vc_index: int) -> None:
        network = self.network
        arena = network.arena
        if arena is not None:
            arena.push_credit(
                network.sim.now + network.link_latency,
                self.neighbor,
                self.upstream_port,
                vc_index,
            )
            return
        network.sim.schedule(
            network.link_latency,
            network._replenish_event,
            (self.neighbor, self.upstream_port, vc_index),
        )


class _HostOutput:
    """Output handler for a host port: hands flits to the attached
    network interface (picklable)."""

    __slots__ = ("network", "node", "port")

    def __init__(self, network: "Network", node: int, port: int) -> None:
        self.network = network
        self.node = node
        self.port = port

    def __call__(self, flit: Flit, output_vc: int) -> None:
        network = self.network
        network.stats.counter("host_deliveries")
        handler = network._host_delivery.get((self.node, self.port))
        if handler is not None:
            handler(self.node, self.port, flit)


class Network:
    """A cluster of MMR routers over a :class:`Topology`."""

    # Class-level fallbacks so networks unpickled from checkpoints that
    # predate the arena / routing-mode features read as "feature off"
    # instead of raising AttributeError on the hot paths.
    arena: Optional[NetworkArena] = None
    dimension_order: Optional[DimensionOrderRouter] = None
    routing: str = "adaptive"

    def __init__(
        self,
        topology: Topology,
        config: RouterConfig,
        scheme: PriorityScheme,
        sim: Simulator,
        rng: SeededRng,
        scheduler_factory: Optional[Callable[[int], SwitchScheduler]] = None,
        link_latency: int = 1,
        selection: str = "per_output",
        recorder=None,
        scheduler_fast_path: bool = True,
        columnar_state: bool = False,
        network_arena: bool = False,
        routing: str = "adaptive",
    ) -> None:
        """``recorder`` (a :class:`repro.obs.FlightRecorder`) is shared by
        every router; its telemetry channels are namespaced by router name
        (``router3.link_utilisation``) so per-node series stay separate.

        ``network_arena=True`` enables the batched arena engine (see
        :mod:`repro.core.arena`); ``routing`` selects the best-effort and
        connection routing discipline: ``"adaptive"`` (minimal adaptive +
        up*/down* escape, the default) or ``"dimension_order"`` (XY, grid
        topologies only)."""
        if link_latency < 1:
            raise ValueError(f"link_latency must be >= 1, got {link_latency}")
        if config.num_ports < topology.num_ports:
            raise ValueError(
                f"router has {config.num_ports} ports but topology needs "
                f"{topology.num_ports}"
            )
        self.topology = topology
        self.config = config
        self.sim = sim
        self.rng = rng
        self.link_latency = link_latency
        self.stats = StatsRegistry()
        self.adaptive = AdaptiveRouter(topology)
        if routing not in ("adaptive", "dimension_order"):
            raise ValueError(f"unknown routing discipline {routing!r}")
        self.routing = routing
        self.dimension_order = (
            DimensionOrderRouter(topology) if routing == "dimension_order" else None
        )
        # The arena ticker is registered *before* the routers so that,
        # with the arena on, the ring drain plus router stepping happen
        # in the slot ahead of where the (suspended) router tickers
        # would run — the cycle-internal order matches the baseline.
        # It is a permanent no-op while ``self.arena`` is None.
        self.arena: Optional[NetworkArena] = None
        sim.add_ticker(
            self._arena_tick, activity=self._arena_activity, name="network-arena"
        )
        if scheduler_factory is None:
            scheduler_factory = lambda node: GreedyPriorityScheduler()  # noqa: E731
        self.routers: List[Router] = [
            Router(
                config,
                scheme,
                scheduler_factory(node),
                sim,
                name=f"router{node}",
                selection=selection,
                rng=rng.spawn(f"router{node}"),
                sink_outputs=False,
                recorder=recorder,
                scheduler_fast_path=scheduler_fast_path,
                columnar_state=columnar_state,
            )
            for node in range(topology.num_nodes)
        ]
        self.recorder = recorder
        if recorder is not None:
            recorder.attach(sim)
        self._host_delivery: Dict[Tuple[int, int], HostDelivery] = {}
        # Pending unrouted best-effort packets per router: (port, vc_index).
        self._unrouted: Dict[int, List[Tuple[int, int]]] = {}
        self._wire()
        if network_arena:
            self.set_network_arena(True)

    # ----- arena ------------------------------------------------------------

    @property
    def network_arena(self) -> bool:
        """True while the batched arena engine is stepping this network."""
        return self.arena is not None

    def set_network_arena(self, enabled: bool) -> None:
        """Flip the arena engine on or off mid-run.

        Both directions splice bit-exactly: the object graph is always
        authoritative, pending ring records migrate back to heap events
        on disable, and lazily-deferred idle accounting is flushed
        before router tickers resume.  Raises
        :class:`~repro.core.columnar.ColumnarUnavailableError` when
        enabling without NumPy.
        """
        if enabled == (self.arena is not None):
            return
        router_ticks = [router.tick for router in self.routers]
        if enabled:
            arena = NetworkArena(self)
            arena.install()
            self.sim.suspend_tickers(router_ticks)
            self.arena = arena
        else:
            arena = self.arena
            arena.flush(self.sim.now)
            arena.uninstall()
            self.sim.resume_tickers(router_ticks)
            self.arena = None

    def flush_arena_accounting(self) -> None:
        """Flush lazily-deferred idle accounting (no-op without arena).

        Call before reading router cycle counters or round statistics
        while the arena is enabled.
        """
        arena = self.arena
        if arena is not None:
            arena.flush(self.sim.now)

    def _arena_tick(self, cycle: int) -> None:
        arena = self.arena
        if arena is not None:
            arena.tick(cycle)

    def _arena_activity(self) -> bool:
        arena = self.arena
        return arena is not None and arena.active()

    # ----- wiring -----------------------------------------------------------

    def _wire(self) -> None:
        for node in range(self.topology.num_nodes):
            router = self.routers[node]
            for port in range(self.config.num_ports):
                neighbor = self.topology.neighbor_on_port(node, port)
                if neighbor is not None:
                    router.set_output_handler(
                        port, _LinkOutput(self, node, port, neighbor)
                    )
                    # Credits for router ``node``'s input port ``port``
                    # return to the upstream router's output flow control
                    # for the reverse direction.
                    router.set_credit_return_handler(
                        port,
                        _CreditReturn(
                            self, neighbor, self.topology.port_of(neighbor, node)
                        ),
                    )
                else:
                    router.set_output_handler(port, _HostOutput(self, node, port))

    def _arrive_event(self, payload: Tuple[int, int, int, Flit]) -> None:
        """Event trampoline: a flit finished crossing a link."""
        neighbor, remote_port, output_vc, flit = payload
        self._arrive(self.routers[neighbor], neighbor, remote_port, output_vc, flit)

    def _replenish_event(self, payload: Tuple[int, int, int]) -> None:
        """Event trampoline: a credit finished crossing a link upstream."""
        neighbor, upstream_port, vc_index = payload
        self.routers[neighbor].output_flow[upstream_port].replenish(vc_index)

    def set_host_delivery(self, node: int, port: int, handler: HostDelivery) -> None:
        """Attach a consumer (network interface) to a host port."""
        if self.topology.neighbor_on_port(node, port) is not None:
            raise ValueError(f"port {port} of node {node} is a link port")
        self._host_delivery[(node, port)] = handler

    # ----- arrivals -----------------------------------------------------------

    def _arrive(
        self, router: Router, node: int, port: int, vc_index: int, flit: Flit
    ) -> None:
        """A flit finished crossing a link into ``router``."""
        if flit.flit_type is FlitType.BEST_EFFORT:
            # Route the packet now (§3.4): its VC was reserved by the
            # upstream router with no output assigned yet.
            accepted = router.inject(port, vc_index, flit)
            if not accepted:
                raise RuntimeError(
                    f"credited flit refused at router {node} port {port}"
                )
            self._route_best_effort(node, port, vc_index)
            return
        accepted = router.inject(port, vc_index, flit)
        if not accepted:
            raise RuntimeError(
                f"credited flit refused at router {node} port {port} "
                f"vc {vc_index}"
            )

    # ----- best-effort routing -------------------------------------------------

    def inject_best_effort(
        self, node: int, host_port: int, flit: Flit, destination: int
    ) -> bool:
        """Inject a best-effort packet at a host port; returns acceptance.

        The packet takes a free VC on the host input port and is routed
        immediately.  Returns False when no VC is free (the interface must
        retry — back-pressure to the host).
        """
        router = self.routers[node]
        vc_index = router.open_packet_vc(
            host_port, -1, ServiceClass.BEST_EFFORT, flit.connection_id
        )
        if vc_index is None:
            return False
        flit.argument = destination  # destination rides in the header field
        accepted = router.inject(host_port, vc_index, flit)
        if not accepted:
            raise RuntimeError("freshly opened packet VC refused its flit")
        self._route_best_effort(node, host_port, vc_index)
        return True

    def _route_best_effort(self, node: int, port: int, vc_index: int) -> None:
        """Assign an output (and downstream VC) to an unrouted packet."""
        router = self.routers[node]
        vc = router.input_ports[port].vcs[vc_index]
        flit = vc.head()
        if flit is None:
            return  # already forwarded (e.g. cut through) — nothing to do
        if vc.output_port >= 0:
            return  # already routed; a stale retry must not re-reserve
        destination = flit.argument
        if destination == node:
            # Deliver locally through the (first) host port.
            router.assign_route(port, vc_index, self.topology.host_port(node))
            return
        arrived_up = None
        neighbor = self.topology.neighbor_on_port(node, port)
        if neighbor is not None:
            arrived_up = self.adaptive.updown.is_up(neighbor, node)
        chooser = self.dimension_order or self.adaptive
        for choice in chooser.choices(node, destination, arrived_up):
            next_router = self.routers[choice.next_node]
            entry_port = self.topology.port_of(choice.next_node, node)
            reserved = next_router.open_packet_vc(
                entry_port, -1, ServiceClass.BEST_EFFORT, flit.connection_id
            )
            if reserved is None:
                continue
            router.assign_route(port, vc_index, choice.output_port, reserved)
            self.stats.counter("be_hops_routed")
            return
        # Blocked: every candidate next router is out of VCs.  Retry next
        # cycle — the packet stays buffered in its VC (§3.4).
        self.stats.counter("be_blocked")
        self.sim.schedule(1, self._route_best_effort_event, (node, port, vc_index))

    def _route_best_effort_event(self, payload: Tuple[int, int, int]) -> None:
        """Event trampoline: retry routing a blocked best-effort packet."""
        self._route_best_effort(*payload)

    # ----- reporting --------------------------------------------------------------

    def total_buffered(self) -> int:
        """Flits buffered across every router (drain checks)."""
        return sum(router.buffered_flits() for router in self.routers)

    def aggregate_utilisation(self) -> float:
        """Mean switch utilisation across routers."""
        if not self.routers:
            return 0.0
        return sum(r.utilisation() for r in self.routers) / len(self.routers)
