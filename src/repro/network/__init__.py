"""Multi-router networks: topologies, wiring, connections, interfaces."""

from .connection import ConnectionManager, EstablishmentStats, NetworkConnection
from .interface import NetworkInterface, OpenStream
from .network import Network
from .policing import PolicerReport, TokenBucket, report
from .probe_protocol import CONTROL_HOP_CYCLES, ProbeProtocol, ProbeSession
from .topology import (
    Topology,
    TopologyError,
    hypercube,
    irregular,
    mesh,
    ring,
    torus,
)

__all__ = [
    "ConnectionManager",
    "EstablishmentStats",
    "NetworkConnection",
    "NetworkInterface",
    "OpenStream",
    "Network",
    "PolicerReport",
    "CONTROL_HOP_CYCLES",
    "ProbeProtocol",
    "ProbeSession",
    "TokenBucket",
    "report",
    "Topology",
    "TopologyError",
    "hypercube",
    "irregular",
    "mesh",
    "ring",
    "torus",
]
