"""Network interfaces: where hosts meet the MMR fabric (paper §4.2-4.3).

The interface owns everything the paper pushes out of the router to keep
the chip small: injection policing, connection bookkeeping, dynamic
bandwidth/priority renegotiation, frame aborts, and end-to-end statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..core.bandwidth import BandwidthRequest
from ..core.flit import Flit, FlitType
from ..core.virtual_channel import ServiceClass
from ..sim.rng import SeededRng
from ..sim.stats import ConnectionStats
from ..traffic.cbr import CbrSource
from ..traffic.vbr import MpegProfile, VbrSource
from .connection import ConnectionManager, NetworkConnection
from .network import Network
from .policing import TokenBucket


@dataclass
class OpenStream:
    """A connection this interface sources, with its traffic generator."""

    connection: NetworkConnection
    source: object  # CbrSource or VbrSource
    policer: Optional[TokenBucket] = None


class NetworkInterface:
    """One host port's interface: injection, policing, delivery stats."""

    def __init__(
        self,
        network: Network,
        manager: ConnectionManager,
        node: int,
        host_port: Optional[int] = None,
        rng: Optional[SeededRng] = None,
    ) -> None:
        self.network = network
        self.manager = manager
        self.node = node
        self.host_port = (
            host_port if host_port is not None else network.topology.host_port(node)
        )
        self.rng = rng if rng is not None else SeededRng(0, f"ni{node}")
        network.set_host_delivery(node, self.host_port, self._on_delivery)
        #: End-to-end latency/jitter per connection delivered *to* this host.
        self.end_to_end: Dict[int, ConnectionStats] = {}
        self.flits_received = 0
        self.packets_received = 0
        self.streams: Dict[int, OpenStream] = {}
        # Best-effort injection with retry-on-blocked.
        self._be_pending: Deque[Tuple[Flit, int]] = deque()
        self._be_retry_scheduled = False
        self.be_sent = 0
        self._be_ids = 0

    # ----- delivery side --------------------------------------------------------

    def _on_delivery(self, node: int, port: int, flit: Flit) -> None:
        latency = self.network.sim.now - flit.created
        stats = self.end_to_end.setdefault(flit.connection_id, ConnectionStats())
        stats.record_flit(latency)
        self.flits_received += 1
        if flit.flit_type is FlitType.BEST_EFFORT:
            self.packets_received += 1

    # ----- connection-oriented streams ---------------------------------------------

    def open_cbr(
        self,
        destination: int,
        rate_bps: float,
        static_priority: float = 0.0,
        police: bool = True,
        stop_time: Optional[int] = None,
    ) -> Optional[OpenStream]:
        """Establish a CBR connection and start its source.

        Returns None when establishment fails (no admissible minimal
        path).  Injection begins once the probe/ack setup completes.
        """
        config = self.network.config
        request = BandwidthRequest(config.rate_to_cycles_per_round(rate_bps))
        interarrival = config.rate_to_interarrival_cycles(rate_bps)
        connection = self.manager.establish(
            self.node,
            destination,
            request,
            service_class=ServiceClass.CBR,
            interarrival_cycles=interarrival,
            static_priority=static_priority,
        )
        if connection is None:
            return None
        source = CbrSource(
            self.network.sim,
            self.network.routers[self.node],
            connection.connection_id,
            connection.source_entry_port,
            connection.source_vc,
            rate_bps,
            config,
            phase=connection.ready_at
            - self.network.sim.now
            + self.rng.uniform(0.0, interarrival),
            stop_time=stop_time,
        )
        source.start()
        policer = None
        if police:
            policer = TokenBucket(1.0 / interarrival, burst=2.0)
        stream = OpenStream(connection, source, policer)
        self.streams[connection.connection_id] = stream
        return stream

    def open_vbr(
        self,
        destination: int,
        profile: MpegProfile,
        static_priority: float = 0.0,
        peak_quantile_sigma: float = 2.0,
        stop_time: Optional[int] = None,
    ) -> Optional[OpenStream]:
        """Establish a VBR connection (permanent = mean, peak estimated
        from the profile) and start its MPEG source."""
        config = self.network.config
        permanent = config.rate_to_cycles_per_round(profile.mean_rate_bps)
        peak = config.rate_to_cycles_per_round(
            profile.peak_rate_bps(peak_quantile_sigma)
        )
        request = BandwidthRequest(permanent, max(peak, permanent))
        interarrival = config.rate_to_interarrival_cycles(profile.mean_rate_bps)
        connection = self.manager.establish(
            self.node,
            destination,
            request,
            service_class=ServiceClass.VBR,
            interarrival_cycles=interarrival,
            static_priority=static_priority,
        )
        if connection is None:
            return None
        source = VbrSource(
            self.network.sim,
            self.network.routers[self.node],
            connection.connection_id,
            connection.source_entry_port,
            connection.source_vc,
            profile,
            config,
            self.rng.spawn(f"vbr{connection.connection_id}"),
            phase=connection.ready_at - self.network.sim.now,
            stop_time=stop_time,
        )
        source.start()
        stream = OpenStream(connection, source)
        self.streams[connection.connection_id] = stream
        return stream

    def close(self, stream: OpenStream) -> None:
        """Tear the stream's connection down (its buffers must be empty)."""
        self.manager.teardown(stream.connection)
        self.streams.pop(stream.connection.connection_id, None)

    # ----- dynamic management (§4.3) -------------------------------------------------

    def renegotiate_bandwidth(self, stream: OpenStream, new_rate_bps: float) -> bool:
        """Send a SET_BANDWIDTH control word along the connection."""
        config = self.network.config
        new_request = BandwidthRequest(config.rate_to_cycles_per_round(new_rate_bps))
        if not self.manager.renegotiate(stream.connection, new_request):
            return False
        interarrival = config.rate_to_interarrival_cycles(new_rate_bps)
        stream.connection.interarrival_cycles = interarrival
        source = stream.source
        if isinstance(source, CbrSource):
            source.interarrival = interarrival
            source.rate_bps = new_rate_bps
        if stream.policer is not None:
            stream.policer.set_rate(1.0 / interarrival, now=self.network.sim.now)
        # Update the per-hop VC state the biased priority consults, and
        # drop the cached priority terms: a head flit parked on the VC
        # would otherwise keep competing under the old rate's bias until
        # it drains.
        for i, node in enumerate(stream.connection.path):
            router = self.network.routers[node]
            entry_port = stream.connection.entry_ports[i]
            vc_index = stream.connection.vcs[i]
            router.input_ports[entry_port].vcs[
                vc_index
            ].interarrival_cycles = interarrival
            router.invalidate_priority_cache(entry_port, vc_index)
        return True

    def set_priority(self, stream: OpenStream, priority: float) -> None:
        """Send a SET_PRIORITY control word along the connection."""
        self.manager.set_priority(stream.connection, priority)

    # ----- best-effort ------------------------------------------------------------------

    def send_best_effort(self, destination: int) -> None:
        """Queue one best-effort packet toward ``destination``'s host."""
        self._be_ids += 1
        flit = Flit(
            FlitType.BEST_EFFORT,
            # Distinct id space per interface so receive stats separate.
            connection_id=-(self.node * 1000000 + self._be_ids),
            created=self.network.sim.now,
            is_tail=True,
        )
        self._be_pending.append((flit, destination))
        self._drain_best_effort()

    def _drain_best_effort(self) -> None:
        while self._be_pending:
            flit, destination = self._be_pending[0]
            if not self.network.inject_best_effort(
                self.node, self.host_port, flit, destination
            ):
                self._schedule_be_retry()
                return
            self._be_pending.popleft()
            self.be_sent += 1

    def _schedule_be_retry(self) -> None:
        if not self._be_retry_scheduled:
            self._be_retry_scheduled = True
            self.network.sim.schedule(1, self._be_retry)

    def _be_retry(self) -> None:
        self._be_retry_scheduled = False
        self._drain_best_effort()
