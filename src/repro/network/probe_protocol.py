"""Cycle-accurate PCS establishment: probes, backtracks, acks (§3.4-3.5).

:class:`~repro.network.connection.ConnectionManager` establishes
connections with an instantaneous control-plane walk plus a latency model.
This module implements the *wire protocol* itself: routing probes travel
hop by hop as immediate-class flits, reserving a virtual channel and
bandwidth as they advance; on a dead end a BACKTRACK flit retraces the
reverse channel mapping, releasing reservations and marking the history
store; when the probe reaches the destination an ACK returns along the
reverse mappings and the connection opens.  TEARDOWN flits release a
connection hop by hop, and SET_BANDWIDTH control words renegotiate an
established session's contract in place (§4.3).

Control flits use the router's asynchronous cut-through path when the
output link is idle (§3.4) and otherwise consume the reconfiguration
gaps; we model each hop of control traffic as a fixed
``CONTROL_HOP_CYCLES`` delay on the simulator clock.

The protocol exists alongside the instantaneous manager so experiments
can choose fidelity: the figure harness needs thousands of established
connections (instantaneous), while the establishment-latency and
session-churn studies need the real token passing (this module).

Every scheduled continuation is a bound method plus a plain payload —
never a closure — so a simulation with probes, acks or teardowns in
flight checkpoints through the ``ckpt/1`` codec like the rest of the
component graph.  Completion callbacks ride on the session object itself;
a caller that wants checkpointability passes a picklable callable (e.g. a
bound method of a harness that is itself part of the checkpoint).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.bandwidth import BandwidthRequest
from ..core.virtual_channel import ServiceClass
from ..obs.recorder import NULL_RECORDER
from ..obs.spans import (
    DROPPED,
    STATUS_BLOCKED,
    STATUS_OK,
    STATUS_REFUSED,
    STATUS_ROLLED_BACK,
)
from ..routing.epb import profitable_ports
from ..routing.history import HistoryStore
from .network import Network

#: Cycles one control flit (probe/backtrack/ack/teardown) spends per hop:
#: link traversal plus header decode at the next router.
CONTROL_HOP_CYCLES = 2

# Completion callback: (probe, established?) -> None.
Completion = Callable[["ProbeSession", bool], None]


@dataclass
class HopReservation:
    """State the probe holds at one router it has traversed."""

    node: int
    entry_port: int
    vc_index: int
    output_port: int = -1


@dataclass
class ProbeSession:
    """One in-flight establishment attempt."""

    session_id: int
    source: int
    destination: int
    request: BandwidthRequest
    service_class: ServiceClass
    interarrival_cycles: float
    static_priority: float
    started_at: int
    history: HistoryStore = field(default_factory=HistoryStore)
    reservations: List[HopReservation] = field(default_factory=list)
    links_searched: int = 0
    backtracks: int = 0
    finished_at: Optional[int] = None
    established: bool = False
    #: Filled on success: same shape as NetworkConnection's path fields.
    path: List[int] = field(default_factory=list)
    ports: List[int] = field(default_factory=list)
    vcs: List[int] = field(default_factory=list)
    entry_ports: List[int] = field(default_factory=list)
    #: Establishment / teardown completion callbacks (stored here, not in
    #: event closures, so in-flight protocol state is picklable).
    on_complete: Optional[Completion] = None
    on_teardown: Optional[Completion] = None
    #: Control-plane span ids (plain ints so sessions stay picklable);
    #: :data:`~repro.obs.spans.DROPPED` (0) means "no span".
    span_id: int = DROPPED
    setup_span: int = DROPPED
    hop_span: int = DROPPED
    ack_span: int = DROPPED
    teardown_span: int = DROPPED
    drain_span: int = DROPPED

    @property
    def setup_cycles(self) -> int:
        """Wall-clock cycles establishment took (probe + ack)."""
        if self.finished_at is None:
            raise RuntimeError("probe still in flight")
        return self.finished_at - self.started_at


class ProbeProtocol:
    """Drives probe/backtrack/ack/teardown token passing over a network."""

    def __init__(self, network: Network) -> None:
        self.network = network
        # Span emission goes through the network's shared recorder; the
        # NULL_RECORDER fallback keeps every call site a plain attribute
        # read + ``enabled`` branch (the flit-trace contract).
        self.recorder = (
            network.recorder if network.recorder is not None else NULL_RECORDER
        )
        self._ids = itertools.count(1)
        self.sessions: Dict[int, ProbeSession] = {}
        self.probes_sent = 0
        self.acks_sent = 0
        self.backtracks_sent = 0
        self.teardowns_completed = 0
        self.renegotiations_applied = 0
        self.renegotiations_refused = 0

    # ----- establishment -------------------------------------------------------

    def establish(
        self,
        source: int,
        destination: int,
        request: BandwidthRequest,
        on_complete: Completion,
        service_class: ServiceClass = ServiceClass.CBR,
        interarrival_cycles: float = 1.0,
        static_priority: float = 0.0,
    ) -> ProbeSession:
        """Launch a probe; ``on_complete(session, ok)`` fires when the ack
        (or the final backtrack) reaches the source."""
        if source == destination:
            raise ValueError("source and destination routers must differ")
        session = ProbeSession(
            session_id=next(self._ids),
            source=source,
            destination=destination,
            request=request,
            service_class=service_class,
            interarrival_cycles=interarrival_cycles,
            static_priority=static_priority,
            started_at=self.network.sim.now,
            on_complete=on_complete,
        )
        self.sessions[session.session_id] = session
        recorder = self.recorder
        if recorder.enabled:
            tracer = recorder.spans
            now = session.started_at
            session.span_id = tracer.begin(
                f"session {session.session_id}",
                "session",
                now,
                session=session.session_id,
                source=source,
                destination=destination,
            )
            session.setup_span = tracer.begin(
                "setup",
                "setup",
                now,
                parent=session.span_id,
                session=session.session_id,
            )
        topology = self.network.topology
        host_port = topology.host_port(source)
        source_router = self.network.routers[source]
        source_vc = source_router.input_ports[host_port].find_free_vc()
        admitted = source_vc is not None and source_router.admission.inputs[
            host_port
        ].can_allocate(request)
        if not admitted:
            self._finish(session, False, delay=1)
            return session
        # The source hop is reserved when the probe leaves the interface;
        # output port is fixed once the probe picks its first link.
        session.reservations.append(HopReservation(source, host_port, -1))
        self.probes_sent += 1
        self.network.sim.schedule(1, self._probe_step_event, session.session_id)
        return session

    # ----- probe movement ----------------------------------------------------------

    def _probe_step_event(self, session_id: int) -> None:
        """Event trampoline: advance the probe of one session."""
        self._probe_step(self.sessions[session_id])

    def _close_hop_span(self, session: ProbeSession, status: str = STATUS_OK) -> None:
        """Close the session's pending per-hop span, if one is open.

        Hop spans cover a control token's link traversal, so they begin
        when the token commits to a hop and end when the next protocol
        event fires (``CONTROL_HOP_CYCLES`` later).
        """
        if session.hop_span:
            self.recorder.spans.end(
                session.hop_span, self.network.sim.now, status
            )
            session.hop_span = DROPPED

    def _probe_step(self, session: ProbeSession) -> None:
        """The probe sits at the tail reservation; try to advance it."""
        self._close_hop_span(session)
        topology = self.network.topology
        here = session.reservations[-1]
        node = here.node
        if node == session.destination:
            self._send_ack(session)
            return
        point = (node, here.entry_port)
        advanced = False
        for out_port, neighbor in profitable_ports(
            topology, node, session.destination
        ):
            if session.history.was_searched(point, out_port):
                continue
            session.history.mark_searched(point, out_port)
            session.links_searched += 1
            if any(r.node == neighbor for r in session.reservations):
                continue
            if not self._try_reserve_hop(session, node, out_port, neighbor):
                continue
            advanced = True
            break
        if advanced:
            if self.recorder.enabled:
                tail = session.reservations[-1]
                session.hop_span = self.recorder.spans.begin(
                    "hop",
                    "hop",
                    self.network.sim.now,
                    parent=session.setup_span,
                    node=node,
                    port=session.reservations[-2].output_port,
                    neighbor=tail.node,
                )
            self.network.sim.schedule(
                CONTROL_HOP_CYCLES, self._probe_step_event, session.session_id
            )
        else:
            self._backtrack(session)

    def _try_reserve_hop(
        self, session: ProbeSession, node: int, out_port: int, neighbor: int
    ) -> bool:
        """Reserve bandwidth on (node, out_port) and a VC at ``neighbor``."""
        topology = self.network.topology
        router = self.network.routers[node]
        entry = topology.port_of(neighbor, node)
        downstream = self.network.routers[neighbor]
        vc_index = downstream.input_ports[entry].find_free_vc()
        if vc_index is None:
            return False
        if not downstream.admission.inputs[entry].can_allocate(session.request):
            return False
        if not router.admission.outputs[out_port].can_allocate(session.request):
            return False
        # Commit: output bandwidth here, input bandwidth + VC downstream.
        if not router.admission.outputs[out_port].allocate(session.request):
            return False
        if not downstream.admission.inputs[entry].allocate(session.request):
            router.admission.outputs[out_port].release(session.request)
            return False
        vc = downstream.input_ports[entry].vcs[vc_index]
        vc.bind(-session.session_id, session.service_class, -1)
        downstream.input_ports[entry].mark_bound(vc_index)
        session.reservations[-1].output_port = out_port
        session.reservations.append(HopReservation(neighbor, entry, vc_index))
        return True

    def _backtrack(self, session: ProbeSession) -> None:
        """Release the tail hop and step the probe back (§3.5)."""
        self.backtracks_sent += 1
        self._close_hop_span(session)
        tail = session.reservations.pop()
        if session.reservations:
            session.backtracks += 1
            previous = session.reservations[-1]
            self._release_hop(previous, tail, session)
            if self.recorder.enabled:
                session.hop_span = self.recorder.spans.begin(
                    "backtrack",
                    "hop",
                    self.network.sim.now,
                    parent=session.setup_span,
                    node=tail.node,
                    back_to=previous.node,
                )
            self.network.sim.schedule(
                CONTROL_HOP_CYCLES, self._probe_step_event, session.session_id
            )
        else:
            # Backtracked out of the source: establishment failed.
            self._finish(session, False, delay=1)

    def _release_hop(
        self,
        previous: HopReservation,
        tail: HopReservation,
        session: ProbeSession,
    ) -> None:
        """Undo what :meth:`_try_reserve_hop` committed for ``tail``."""
        upstream = self.network.routers[previous.node]
        upstream.admission.outputs[previous.output_port].release(session.request)
        previous.output_port = -1
        downstream = self.network.routers[tail.node]
        downstream.admission.inputs[tail.entry_port].release(session.request)
        vc = downstream.input_ports[tail.entry_port].vcs[tail.vc_index]
        vc.release()
        downstream.input_ports[tail.entry_port].mark_free(tail.vc_index)

    # ----- acknowledgment ------------------------------------------------------------

    def _send_ack(self, session: ProbeSession) -> None:
        """Destination reached: return the ack, installing connection state."""
        self.acks_sent += 1
        topology = self.network.topology
        # The destination hop exits through its host port.
        last = session.reservations[-1]
        last.output_port = topology.host_port(session.destination)
        if not self.network.routers[session.destination].admission.outputs[
            last.output_port
        ].allocate(session.request):
            # Destination host egress filled while the probe was in flight.
            self._backtrack(session)
            return
        # Reserve the source hop's input VC now that the path is certain.
        source_router = self.network.routers[session.source]
        head = session.reservations[0]
        source_vc = source_router.input_ports[head.entry_port].find_free_vc()
        if source_vc is None or not source_router.admission.inputs[
            head.entry_port
        ].allocate(session.request):
            self.network.routers[session.destination].admission.outputs[
                last.output_port
            ].release(session.request)
            self._backtrack(session)
            return
        vc = source_router.input_ports[head.entry_port].vcs[source_vc]
        vc.bind(-session.session_id, session.service_class, -1)
        source_router.input_ports[head.entry_port].mark_bound(source_vc)
        head.vc_index = source_vc
        # The ack walks back over the reverse mappings, configuring each
        # hop's VC state; model it as one delayed installation.
        ack_latency = CONTROL_HOP_CYCLES * (len(session.reservations) - 1) + 1
        if self.recorder.enabled:
            session.ack_span = self.recorder.spans.begin(
                "ack",
                "ack",
                self.network.sim.now,
                parent=session.setup_span,
                hops=len(session.reservations),
            )
        self.network.sim.schedule(
            ack_latency, self._install_event, session.session_id
        )

    def _install_event(self, session_id: int) -> None:
        """Event trampoline: the ack reached the source."""
        self._install(self.sessions[session_id])

    def _install(self, session: ProbeSession) -> None:
        """Ack reached the source: finalise per-hop VC scheduling state."""
        if session.ack_span:
            self.recorder.spans.end(session.ack_span, self.network.sim.now)
            session.ack_span = DROPPED
        connection_id = -session.session_id
        downstream_vc = -1
        for i in range(len(session.reservations) - 1, -1, -1):
            hop = session.reservations[i]
            router = self.network.routers[hop.node]
            vc = router.input_ports[hop.entry_port].vcs[hop.vc_index]
            vc.interarrival_cycles = session.interarrival_cycles
            vc.static_priority = session.static_priority
            if session.service_class is ServiceClass.CBR:
                vc.allocated_cycles = session.request.permanent_cycles
                router.input_ports[hop.entry_port].status.vector(
                    "cbr_service_requested"
                ).set(hop.vc_index)
            elif session.service_class is ServiceClass.VBR:
                vc.permanent_cycles = session.request.permanent_cycles
                vc.peak_cycles = session.request.effective_peak
                router.input_ports[hop.entry_port].status.vector(
                    "vbr_service_requested"
                ).set(hop.vc_index)
            # assign_route (not direct field writes) keeps the fast-path
            # routed/credits vectors in sync and invalidates the priority
            # cache; the bandwidth fields above feed the round gate, so
            # refresh that too.
            router.assign_route(
                hop.entry_port, hop.vc_index, hop.output_port, downstream_vc
            )
            router.input_ports[hop.entry_port].status.vector(
                "connection_active"
            ).set(hop.vc_index)
            router.link_schedulers[hop.entry_port].refresh_round_state(vc)
            if downstream_vc >= 0:
                router.rau.register_connection(
                    connection_id,
                    hop.entry_port,
                    hop.vc_index,
                    hop.output_port,
                    downstream_vc,
                )
            downstream_vc = hop.vc_index
        session.path = [r.node for r in session.reservations]
        session.ports = [r.output_port for r in session.reservations]
        session.vcs = [r.vc_index for r in session.reservations]
        session.entry_ports = [r.entry_port for r in session.reservations]
        self._finish(session, True, delay=0)

    def _finish(self, session: ProbeSession, established: bool, delay: int) -> None:
        if delay:
            self.network.sim.schedule(
                delay, self._finish_event, (session.session_id, established)
            )
        else:
            self._complete(session, established)

    def _finish_event(self, payload: Tuple[int, bool]) -> None:
        """Event trampoline: deliver a delayed completion."""
        session_id, established = payload
        self._complete(self.sessions[session_id], established)

    def _complete(self, session: ProbeSession, established: bool) -> None:
        session.finished_at = self.network.sim.now
        session.established = established
        if session.setup_span:
            # The ids stay on the session after closing so the harness can
            # reference the offending span in SLO violation records.
            tracer = self.recorder.spans
            status = STATUS_OK if established else STATUS_BLOCKED
            tracer.end(
                session.setup_span,
                session.finished_at,
                status,
                backtracks=session.backtracks,
                links_searched=session.links_searched,
            )
            if not established:
                # A blocked establishment is the whole session: close its
                # root too.  Established sessions stay open until teardown.
                tracer.end(session.span_id, session.finished_at, STATUS_BLOCKED)
            else:
                tracer.annotate(session.span_id, hops=len(session.path))
        callback = session.on_complete
        if callback is not None:
            callback(session, established)

    # ----- dynamic bandwidth management (§4.3) -----------------------------------

    def renegotiate(
        self,
        session: ProbeSession,
        new_request: BandwidthRequest,
        interarrival_cycles: Optional[float] = None,
    ) -> bool:
        """Apply a SET_BANDWIDTH control word along the session's path.

        Every hop swaps the old contract for ``new_request`` or — when any
        hop lacks capacity — the already-renegotiated hops roll back and
        the old contract stays everywhere (the control word is NACKed).
        ``interarrival_cycles``, when given, updates the per-hop VC pacing
        term the biased priority consults.
        """
        if not session.established:
            raise RuntimeError("cannot renegotiate an unestablished session")
        recorder = self.recorder
        tracer = recorder.spans
        now = self.network.sim.now
        reneg_span = DROPPED
        if recorder.enabled:
            reneg_span = tracer.begin(
                "renegotiation",
                "renegotiation",
                now,
                parent=session.span_id,
                session=session.session_id,
            )
        applied: List[HopReservation] = []
        for hop in session.reservations:
            router = self.network.routers[hop.node]
            hop_span = DROPPED
            if recorder.enabled:
                hop_span = tracer.begin(
                    "set_bandwidth",
                    "renegotiation",
                    now,
                    parent=reneg_span,
                    node=hop.node,
                )
            ok = router.renegotiate_connection(
                hop.entry_port, hop.vc_index, session.request, new_request
            )
            if not ok:
                tracer.end(hop_span, now, STATUS_REFUSED)
                for back in reversed(applied):
                    if not self.network.routers[back.node].renegotiate_connection(
                        back.entry_port, back.vc_index, new_request, session.request
                    ):
                        raise RuntimeError("renegotiation rollback failed")
                    if recorder.enabled:
                        rollback_span = tracer.begin(
                            "rollback",
                            "renegotiation",
                            now,
                            parent=reneg_span,
                            node=back.node,
                        )
                        tracer.end(rollback_span, now, STATUS_ROLLED_BACK)
                tracer.end(reneg_span, now, STATUS_ROLLED_BACK)
                self.renegotiations_refused += 1
                return False
            tracer.end(hop_span, now)
            applied.append(hop)
        tracer.end(reneg_span, now)
        session.request = new_request
        if interarrival_cycles is not None:
            session.interarrival_cycles = interarrival_cycles
            for hop in session.reservations:
                router = self.network.routers[hop.node]
                router.input_ports[hop.entry_port].vcs[
                    hop.vc_index
                ].interarrival_cycles = interarrival_cycles
                # Centralised invalidation: drops the cached terms on
                # both the object and columnar engines.
                router.invalidate_priority_cache(hop.entry_port, hop.vc_index)
        self.renegotiations_applied += 1
        return True

    # ----- teardown -------------------------------------------------------------------

    def teardown(self, session: ProbeSession, on_complete: Optional[Completion] = None) -> None:
        """Send a TEARDOWN token hop by hop, releasing the connection."""
        if not session.established:
            raise RuntimeError("cannot tear down an unestablished session")
        session.on_teardown = on_complete
        if self.recorder.enabled:
            session.teardown_span = self.recorder.spans.begin(
                "teardown",
                "teardown",
                self.network.sim.now,
                parent=session.span_id,
                session=session.session_id,
                hops=len(session.reservations),
            )
        self._teardown_step(session, 0)

    def _teardown_step_event(self, payload: Tuple[int, int]) -> None:
        """Event trampoline: the teardown token reached its next hop."""
        session_id, index = payload
        self._teardown_step(self.sessions[session_id], index)

    def _teardown_step(self, session: ProbeSession, index: int) -> None:
        self._close_hop_span(session)
        now = self.network.sim.now
        if index >= len(session.reservations):
            session.established = False
            self.teardowns_completed += 1
            if session.teardown_span:
                # ``teardown`` rejects re-teardown (established is False
                # now), so these close exactly once; ids stay for queries.
                tracer = self.recorder.spans
                tracer.end(session.teardown_span, now)
                tracer.end(session.span_id, now)
            callback = session.on_teardown
            if callback is not None:
                callback(session, False)
            return
        hop = session.reservations[index]
        if self.recorder.enabled:
            session.hop_span = self.recorder.spans.begin(
                "teardown_hop",
                "teardown",
                now,
                parent=session.teardown_span,
                node=hop.node,
            )
        router = self.network.routers[hop.node]
        port = router.input_ports[hop.entry_port]
        vc = port.vcs[hop.vc_index]
        router.scrub_vc_scheduling_state(hop.entry_port, hop.vc_index)
        vc.release()
        port.status.vector("cbr_service_requested").clear(hop.vc_index)
        port.status.vector("vbr_service_requested").clear(hop.vc_index)
        port.status.vector("connection_active").clear(hop.vc_index)
        port.mark_free(hop.vc_index)
        router.rau.release_connection(-session.session_id)
        router.admission.inputs[hop.entry_port].release(session.request)
        router.admission.outputs[hop.output_port].release(session.request)
        self.network.sim.schedule(
            CONTROL_HOP_CYCLES,
            self._teardown_step_event,
            (session.session_id, index + 1),
        )

    # ----- bookkeeping -----------------------------------------------------------------

    def forget(self, session: ProbeSession) -> None:
        """Drop a finished session from the registry (long churn runs would
        otherwise accumulate every session ever attempted)."""
        if session.finished_at is None:
            raise RuntimeError("cannot forget a session still in flight")
        if session.established:
            raise RuntimeError("cannot forget an established session")
        self.sessions.pop(session.session_id, None)
