"""Injection policing at the network interface (paper §4.2).

"During data transmission, a policing protocol operates by limiting the
injection of new flits into the network in such a way that each connection
does not use higher link bandwidth than that allocated to it."  The MMR
itself relies on flow control; policing lives at the interface (or source
CPU), which is where this token-bucket implementation sits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class TokenBucket:
    """Classic token bucket: rate tokens/cycle, capacity ``burst`` tokens.

    One token admits one flit.  A CBR connection polices with burst 1-2;
    a VBR connection polices at its *permanent* rate with a burst sized to
    its contracted peak excursions.
    """

    def __init__(self, rate_per_cycle: float, burst: float) -> None:
        if rate_per_cycle <= 0:
            raise ValueError(f"rate_per_cycle must be positive, got {rate_per_cycle}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate = rate_per_cycle
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_time = 0
        self.conforming = 0
        self.violations = 0

    def _refill(self, now: int) -> None:
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._tokens = min(self.burst, self._tokens + (now - self._last_time) * self.rate)
        self._last_time = now

    def allow(self, now: int) -> bool:
        """May one flit be injected at cycle ``now``?  Consumes a token."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.conforming += 1
            return True
        self.violations += 1
        return False

    def tokens_at(self, now: int) -> float:
        """Token balance at ``now`` without consuming anything."""
        self._refill(now)
        return self._tokens

    def set_rate(self, rate_per_cycle: float, now: Optional[int] = None) -> None:
        """Apply a renegotiated rate (dynamic bandwidth management, §4.3).

        ``now`` is the renegotiation cycle.  Tokens accrued since the last
        refill are credited *at the old rate* before the new rate takes
        effect — otherwise a rate change would retroactively reprice the
        whole elapsed window (credit a backlog the old contract never
        earned, or confiscate tokens the old contract already paid for).
        """
        if rate_per_cycle <= 0:
            raise ValueError(f"rate_per_cycle must be positive, got {rate_per_cycle}")
        if now is not None:
            self._refill(now)
        self.rate = rate_per_cycle


@dataclass
class PolicerReport:
    """Counters summarising a policer's history."""

    conforming: int
    violations: int

    @property
    def violation_fraction(self) -> float:
        """Share of injection attempts the policer rejected."""
        total = self.conforming + self.violations
        return self.violations / total if total else 0.0


def report(bucket: TokenBucket) -> PolicerReport:
    """Snapshot a bucket's counters."""
    return PolicerReport(bucket.conforming, bucket.violations)
