"""Network topologies (paper §1-2: clusters and LANs, often irregular).

A :class:`Topology` is an undirected multigraph of routers plus the port
assignment at each router: one port per incident link, with the remaining
ports available for host network interfaces.  Constructors cover the
regular shapes used by multiprocessor interconnects (mesh, torus,
hypercube, ring) and the random irregular graphs typical of switch-based
LAN clusters (the setting of the Silla/Duato adaptive-routing work the MMR
adopts for best-effort traffic).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.rng import SeededRng


class TopologyError(ValueError):
    """Raised for malformed topology descriptions."""


class Topology:
    """An undirected router graph with deterministic port numbering.

    Ports ``0..degree-1`` of each node attach to its links in neighbor
    order; ports ``degree..num_ports-1`` are host ports.  All routers
    share one ``num_ports`` (the router is a single chip with a fixed
    degree); it defaults to ``max_degree + 1`` so every node has at least
    one host port.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        num_ports: Optional[int] = None,
        name: str = "custom",
    ) -> None:
        if num_nodes <= 0:
            raise TopologyError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.name = name
        self._adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
        seen = set()
        for a, b in edges:
            if not (0 <= a < num_nodes and 0 <= b < num_nodes):
                raise TopologyError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise TopologyError(f"self-loop at node {a}")
            key = (min(a, b), max(a, b))
            if key in seen:
                raise TopologyError(f"duplicate edge {key}")
            seen.add(key)
            self._adjacency[a].append(b)
            self._adjacency[b].append(a)
        for neighbors in self._adjacency:
            neighbors.sort()
        max_degree = max((len(n) for n in self._adjacency), default=0)
        if num_ports is None:
            num_ports = max_degree + 1
        if num_ports < max_degree + 1:
            raise TopologyError(
                f"num_ports={num_ports} leaves no host port at degree-"
                f"{max_degree} nodes"
            )
        self.num_ports = num_ports
        self._port_of: List[Dict[int, int]] = [
            {neighbor: port for port, neighbor in enumerate(neighbors)}
            for neighbors in self._adjacency
        ]
        self._port_to_neighbor: List[Dict[int, int]] = [
            {port: neighbor for neighbor, port in mapping.items()}
            for mapping in self._port_of
        ]
        # Port numbering is frozen at construction: a removed (failed)
        # link leaves its port dead rather than renumbering live ports.
        self._initial_degree: List[int] = [len(n) for n in self._adjacency]
        self._distances: Optional[List[List[int]]] = None

    # ----- structure ---------------------------------------------------------

    def neighbors(self, node: int) -> List[int]:
        """Adjacent routers of ``node`` (sorted)."""
        self._check(node)
        return list(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Number of router-to-router links at ``node``."""
        self._check(node)
        return len(self._adjacency[node])

    def port_of(self, node: int, neighbor: int) -> int:
        """The port of ``node`` that attaches to ``neighbor``."""
        self._check(node)
        try:
            return self._port_of[node][neighbor]
        except KeyError:
            raise TopologyError(f"no link between {node} and {neighbor}") from None

    def neighbor_on_port(self, node: int, port: int) -> Optional[int]:
        """The router at the far end of ``port``.

        None for host ports and for ports whose link has failed.
        """
        self._check(node)
        return self._port_to_neighbor[node].get(port)

    def host_port(self, node: int) -> int:
        """The first host port of ``node`` (stable across link failures)."""
        self._check(node)
        return self._initial_degree[node]

    def host_ports(self, node: int) -> List[int]:
        """All host ports of ``node`` (stable across link failures)."""
        self._check(node)
        return list(range(self._initial_degree[node], self.num_ports))

    def edges(self) -> List[Tuple[int, int]]:
        """All links as (low node, high node) pairs, sorted."""
        out = []
        for a in range(self.num_nodes):
            for b in self._adjacency[a]:
                if a < b:
                    out.append((a, b))
        return out

    def is_connected(self) -> bool:
        """True when every router can reach every other."""
        if self.num_nodes == 0:
            return True
        seen = {0}
        frontier = deque([0])
        while frontier:
            node = frontier.popleft()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == self.num_nodes

    # ----- distances ---------------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        """Hop distance between routers (BFS, cached)."""
        self._check(a)
        self._check(b)
        if self._distances is None:
            self._distances = [self._bfs(node) for node in range(self.num_nodes)]
        d = self._distances[a][b]
        if d < 0:
            raise TopologyError(f"nodes {a} and {b} are disconnected")
        return d

    def _bfs(self, start: int) -> List[int]:
        dist = [-1] * self.num_nodes
        dist[start] = 0
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in self._adjacency[node]:
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[node] + 1
                    frontier.append(neighbor)
        return dist

    def invalidate_distances(self) -> None:
        """Drop the distance cache (after removing a link, e.g. failures)."""
        self._distances = None

    def remove_link(self, a: int, b: int) -> None:
        """Fail the link between ``a`` and ``b``.

        Port numbering is untouched: the two ports become dead
        (``neighbor_on_port`` returns None) so routers wired to the old
        numbering remain consistent.
        """
        self._check(a)
        self._check(b)
        if b not in self._port_of[a]:
            raise TopologyError(f"no link between {a} and {b}")
        self._adjacency[a].remove(b)
        self._adjacency[b].remove(a)
        del self._port_to_neighbor[a][self._port_of[a].pop(b)]
        del self._port_to_neighbor[b][self._port_of[b].pop(a)]
        self.invalidate_distances()

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.num_nodes})")

    def __repr__(self) -> str:
        return (
            f"Topology({self.name}, nodes={self.num_nodes}, "
            f"links={len(self.edges())}, ports={self.num_ports})"
        )


# ----- constructors ------------------------------------------------------------


def ring(num_nodes: int, num_ports: Optional[int] = None) -> Topology:
    """A bidirectional ring."""
    if num_nodes < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {num_nodes}")
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return Topology(num_nodes, edges, num_ports, name=f"ring{num_nodes}")


def mesh(width: int, height: int, num_ports: Optional[int] = None) -> Topology:
    """A width x height 2D mesh."""
    if width <= 0 or height <= 0:
        raise TopologyError("mesh dimensions must be positive")
    edges = []
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x + 1 < width:
                edges.append((node, node + 1))
            if y + 1 < height:
                edges.append((node, node + width))
    topo = Topology(width * height, edges, num_ports, name=f"mesh{width}x{height}")
    # Grid metadata for dimension-order routing (node = y * width + x).
    # Plain attributes, so topologies pickled before they existed restore
    # fine; consumers read them with getattr(topology, "grid", None).
    topo.grid = (width, height)
    topo.wrap = False
    return topo


def torus(width: int, height: int, num_ports: Optional[int] = None) -> Topology:
    """A width x height 2D torus (wraparound mesh).

    In a dimension of size 2 the wrap-around link connects the same
    router pair as the mesh link, so the edge set is deduplicated there:
    those routers get one physical link (and one port) per such
    neighbor, not a double link with a misleading port count.  Size-1
    dimensions would require self-loops and raise.

    Edges are emitted in the historical per-node order (dedup only
    removes the size-2 wrap duplicates), so pre-existing tori build
    identically to prior releases.  Port numbering is derived from the
    sorted adjacency sets and is order-independent anyway.
    """
    if width < 2 or height < 2:
        raise TopologyError(
            "torus dimensions must be at least 2 (a size-1 dimension "
            "would wrap a node onto itself)"
        )
    edges = []
    seen = set()
    for y in range(height):
        for x in range(width):
            node = y * width + x
            for other in (
                y * width + (x + 1) % width,
                ((y + 1) % height) * width + x,
            ):
                key = (min(node, other), max(node, other))
                if key in seen:
                    continue  # size-2 dimension: wrap == mesh edge
                seen.add(key)
                edges.append((node, other))
    topo = Topology(
        width * height, edges, num_ports, name=f"torus{width}x{height}"
    )
    topo.grid = (width, height)
    topo.wrap = True
    return topo


def hypercube(dimension: int, num_ports: Optional[int] = None) -> Topology:
    """A binary hypercube of the given dimension."""
    if dimension <= 0:
        raise TopologyError(f"dimension must be positive, got {dimension}")
    nodes = 1 << dimension
    edges = []
    for node in range(nodes):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if node < other:
                edges.append((node, other))
    return Topology(nodes, edges, num_ports, name=f"hypercube{dimension}")


def irregular(
    num_nodes: int,
    rng: SeededRng,
    mean_degree: float = 3.0,
    num_ports: Optional[int] = None,
    max_tries: int = 200,
) -> Topology:
    """A connected random irregular topology (switch-based LAN cluster).

    Starts from a random spanning tree (guaranteeing connectivity, as ad
    hoc LAN wiring grows) and adds random extra links until the mean
    degree is reached.  If the try budget runs out before the target link
    count is reached (the requested density may even exceed the complete
    graph), :class:`TopologyError` is raised naming the achieved versus
    requested link counts — a silently sparser graph would skew every
    blocking/latency figure computed on it.
    """
    if num_nodes < 2:
        raise TopologyError(f"need at least 2 nodes, got {num_nodes}")
    if mean_degree < 2.0 * (num_nodes - 1) / num_nodes:
        raise TopologyError(f"mean_degree {mean_degree} below tree degree")
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    edges = set()
    for i in range(1, num_nodes):
        attach = nodes[rng.randint(0, i - 1)]
        a, b = min(nodes[i], attach), max(nodes[i], attach)
        edges.add((a, b))
    target_links = int(round(mean_degree * num_nodes / 2))
    tries = 0
    while len(edges) < target_links and tries < max_tries * target_links:
        tries += 1
        a = rng.randint(0, num_nodes - 1)
        b = rng.randint(0, num_nodes - 1)
        if a == b:
            continue
        edges.add((min(a, b), max(a, b)))
    if len(edges) < target_links:
        raise TopologyError(
            f"irregular({num_nodes}, mean_degree={mean_degree}) exhausted "
            f"{tries} tries at {len(edges)} links; {target_links} requested"
        )
    return Topology(
        num_nodes, sorted(edges), num_ports, name=f"irregular{num_nodes}"
    )
