"""Dimension-order (XY) routing for mesh and torus grids (paper §1).

The topology-scaling studies run the MMR over regular 2D grids, where
the classical wormhole discipline is dimension-order routing: correct
the X coordinate fully, then the Y coordinate.  On a mesh the induced
channel-dependency graph is acyclic (no X channel ever depends on a Y
channel's release, and within a dimension all dependencies point the
same way), so the relation is deadlock-free without an escape layer —
``tests/test_dimension_order.py`` checks this through
:func:`repro.routing.deadlock.verify_deadlock_free`.  On a torus the
wrap links close dependency rings within a dimension; plain XY there is
*not* deadlock-free in general and relies on the finite simulated
workloads draining (the classical fix — dateline VC classes — is out of
scope and called out in DESIGN.md).

Three facades over the same next-hop function, matching the consumers:

* :func:`dimension_order_search` — a ``path_search`` for
  :class:`~repro.network.connection.ConnectionManager` (same signature
  as :func:`~repro.routing.epb.epb_search`, but deterministic and
  backtrack-free: if the single XY path is inadmissible, the probe
  fails).
* :class:`DimensionOrderRouter` — hop-by-hop ``choices()`` provider for
  best-effort routing in :class:`~repro.network.network.Network`.
* :func:`dimension_order_relation` — a
  :data:`~repro.routing.deadlock.RoutingRelation` for the
  channel-dependency analysis.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..network.topology import Topology, TopologyError
from .adaptive import RouteChoice
from .epb import Admissible, ProbeResult


def require_grid(topology: Topology) -> Tuple[int, int]:
    """The (width, height) of a grid topology.

    Raises :class:`TopologyError` for topologies without grid metadata
    (only :func:`~repro.network.topology.mesh` and ``torus`` set it).
    """
    grid = getattr(topology, "grid", None)
    if grid is None:
        raise TopologyError(
            f"dimension-order routing needs a mesh/torus grid topology; "
            f"{topology.name!r} has no grid metadata"
        )
    return grid


def _toward(a: int, b: int, size: int, wrap: bool) -> int:
    """Next coordinate moving from ``a`` toward ``b`` along one dimension.

    On wrapped dimensions the shorter way around wins; ties (exactly
    half way, even ``size``) break toward increasing coordinate so the
    choice is deterministic everywhere.
    """
    if not wrap:
        return a + 1 if b > a else a - 1
    forward = (b - a) % size
    backward = (a - b) % size
    if forward <= backward:
        return (a + 1) % size
    return (a - 1) % size


def next_hop(topology: Topology, node: int, destination: int) -> Optional[int]:
    """The unique XY next hop from ``node`` toward ``destination``.

    None when already at the destination.
    """
    width, height = require_grid(topology)
    wrap = bool(getattr(topology, "wrap", False))
    x, y = node % width, node // width
    dest_x, dest_y = destination % width, destination // width
    if x != dest_x:
        return y * width + _toward(x, dest_x, width, wrap)
    if y != dest_y:
        return _toward(y, dest_y, height, wrap) * width + x
    return None


def dimension_order_search(
    topology: Topology,
    source: int,
    destination: int,
    admissible: Admissible,
    max_steps: int = 100000,
) -> ProbeResult:
    """Probe the single XY path (ConnectionManager ``path_search``).

    Deterministic and backtrack-free: dimension-order admits exactly one
    path, so an inadmissible link on it fails the probe outright (the
    partial path is returned for diagnostics, like an abandoned EPB
    probe).
    """
    if source == destination:
        return ProbeResult(True, [source])
    path: List[int] = [source]
    ports: List[int] = []
    links_searched = 0
    node = source
    while node != destination:
        if links_searched >= max_steps:
            return ProbeResult(False, path, ports, links_searched)
        nxt = next_hop(topology, node, destination)
        out_port = topology.port_of(node, nxt)
        links_searched += 1
        if not admissible(node, out_port, nxt):
            return ProbeResult(False, path, ports, links_searched)
        path.append(nxt)
        ports.append(out_port)
        node = nxt
    return ProbeResult(True, path, ports, links_searched)


class DimensionOrderRouter:
    """Hop-by-hop XY choice provider for best-effort routing.

    Drop-in for :class:`~repro.routing.adaptive.AdaptiveRouter.choices`:
    returns the one legal hop (never an escape hop — XY needs no escape
    layer on a mesh).  ``arrived_up`` is accepted and ignored so the
    network's call site stays uniform.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        require_grid(topology)  # fail at construction, not first packet

    def choices(
        self,
        node: int,
        destination: int,
        arrived_up: Optional[bool] = None,
    ) -> List[RouteChoice]:
        nxt = next_hop(self.topology, node, destination)
        if nxt is None:
            return []
        port = self.topology.port_of(node, nxt)
        return [RouteChoice(port, nxt, escape=False, minimal=True)]


def dimension_order_relation(topology: Topology):
    """The XY routing relation as a dependency-graph input."""

    def relation(
        channel_in: Optional[Tuple[int, int]], node: int, destination: int
    ) -> Iterator[Tuple[int, int]]:
        nxt = next_hop(topology, node, destination)
        if nxt is not None:
            yield (node, nxt)

    return relation
