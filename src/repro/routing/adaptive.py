"""Fully adaptive routing for irregular topologies (paper §3.5, [26, 27]).

Best-effort packets in the MMR use the Silla/Duato adaptive routing for
irregular networks: a packet may take *any* minimal (profitable) link when
one is free, and falls back to a legal up*/down* escape hop otherwise.
The escape layer keeps the scheme deadlock-free (Duato's theory [11]); the
adaptive layer recovers the path diversity that up*/down* alone forfeits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..network.topology import Topology
from .updown import UpDownRouting


@dataclass(frozen=True)
class RouteChoice:
    """One permitted next hop for a packet."""

    output_port: int
    next_node: int
    #: True when the hop is in the escape (up*/down*) class and must use
    #: the escape virtual channel.
    escape: bool
    #: True when the hop is minimal (reduces distance to the destination).
    minimal: bool


class AdaptiveRouter:
    """Routing relation: adaptive minimal hops + up*/down* escape hops."""

    def __init__(self, topology: Topology, root: int = 0) -> None:
        self.topology = topology
        self.updown = UpDownRouting(topology, root)

    def choices(
        self,
        node: int,
        destination: int,
        arrived_up: Optional[bool] = None,
    ) -> List[RouteChoice]:
        """All permitted next hops, adaptive (minimal) choices first.

        ``arrived_up`` is the up*/down* direction of the hop that delivered
        the packet (None at injection); it constrains only the escape
        choices — the adaptive class is unrestricted because packets can
        always fall back to the escape layer at the next router (Duato's
        extension of up*/down* to adaptive routing).
        """
        if node == destination:
            return []
        here = self.topology.distance(node, destination)
        adaptive: List[RouteChoice] = []
        for neighbor in self.topology.neighbors(node):
            if self.topology.distance(neighbor, destination) < here:
                adaptive.append(
                    RouteChoice(
                        self.topology.port_of(node, neighbor),
                        neighbor,
                        escape=False,
                        minimal=True,
                    )
                )
        escape: List[RouteChoice] = []
        for port, neighbor, goes_up in self.updown.legal_next_hops(
            node, destination, arrived_up
        ):
            minimal = self.topology.distance(neighbor, destination) < here
            escape.append(
                RouteChoice(port, neighbor, escape=True, minimal=minimal)
            )
        adaptive.sort(key=lambda c: c.output_port)
        escape.sort(key=lambda c: (not c.minimal, c.output_port))
        return adaptive + escape

    def route(
        self,
        source: int,
        destination: int,
        prefer_adaptive: bool = True,
        max_hops: Optional[int] = None,
    ) -> List[int]:
        """Trace one route under zero contention (for tests and planning).

        With ``prefer_adaptive`` the packet greedily takes the first
        minimal adaptive hop; otherwise it follows the escape layer only.
        """
        if max_hops is None:
            max_hops = 4 * self.topology.num_nodes
        path = [source]
        node = source
        arrived_up: Optional[bool] = None
        while node != destination:
            if len(path) > max_hops:
                raise RuntimeError(
                    f"route {source}->{destination} exceeded {max_hops} hops"
                )
            choices = self.choices(node, destination, arrived_up)
            if not choices:
                raise RuntimeError(f"no route from {node} to {destination}")
            pick = None
            if prefer_adaptive:
                pick = next((c for c in choices if not c.escape), None)
            if pick is None:
                pick = next(c for c in choices if c.escape)
            arrived_up = (
                self.updown.is_up(node, pick.next_node) if pick.escape else None
            )
            node = pick.next_node
            path.append(node)
        return path
