"""Exhaustive profitable backtracking — EPB (paper §3.5, [17]).

EPB establishes connections: a routing probe "performs an exhaustive
search of the minimal paths in the network until a valid path is found or
the probe backtracks to the source node".  Profitable links are those on a
minimal path (they reduce the distance to the destination); the per-VC
history store prevents searching the same link twice.

The search itself is a control-plane walk over network state: each step
asks an admissibility predicate whether the candidate output link can
accept the connection (free VC downstream and bandwidth available — the
caller binds this to real router state).  The walk's cost statistics
(links searched, backtracks) feed the establishment-latency model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..network.topology import Topology
from .history import HistoryStore

# admissible(node, output_port, next_node) -> bool: can the probe reserve
# the link leaving ``node`` through ``output_port`` toward ``next_node``?
Admissible = Callable[[int, int, int], bool]


@dataclass
class ProbeResult:
    """Outcome of one EPB probe."""

    success: bool
    #: Router path source..destination (inclusive) on success, else the
    #: partial path at abandonment.
    path: List[int] = field(default_factory=list)
    #: Output port taken at each router of ``path`` except the last.
    ports: List[int] = field(default_factory=list)
    links_searched: int = 0
    backtracks: int = 0

    @property
    def hops(self) -> int:
        """Number of links in the found path."""
        return max(0, len(self.path) - 1)


def profitable_ports(
    topology: Topology, node: int, destination: int
) -> List[Tuple[int, int]]:
    """(output port, next node) pairs lying on a minimal path.

    A link is profitable when the neighbor is strictly closer to the
    destination.  Sorted by port for determinism.
    """
    if node == destination:
        return []
    try:
        here = topology.distance(node, destination)
    except Exception:
        # Destination unreachable (partitioned network): nothing is
        # profitable, the probe backs out and the request fails cleanly.
        return []
    out = []
    for neighbor in topology.neighbors(node):
        if topology.distance(neighbor, destination) < here:
            out.append((topology.port_of(node, neighbor), neighbor))
    out.sort()
    return out


def epb_search(
    topology: Topology,
    source: int,
    destination: int,
    admissible: Admissible,
    max_steps: int = 100000,
) -> ProbeResult:
    """Run one EPB probe from ``source`` to ``destination``.

    Depth-first over minimal paths only: forward moves must be profitable
    and admissible; exhausted nodes are backtracked.  The history store
    guarantees termination — each (search point, output link) pair is
    tried at most once.
    """
    if source == destination:
        return ProbeResult(True, [source])
    history = HistoryStore()
    result = ProbeResult(False)
    # Stack entries: (node, port entered through at that node; -1 at source).
    stack: List[Tuple[int, int]] = [(source, -1)]
    path_ports: List[int] = []
    on_path = {source}
    steps = 0
    while stack:
        steps += 1
        if steps > max_steps:
            break
        node, in_port = stack[-1]
        point = (node, in_port)
        advanced = False
        for out_port, neighbor in profitable_ports(topology, node, destination):
            if history.was_searched(point, out_port):
                continue
            history.mark_searched(point, out_port)
            result.links_searched += 1
            if neighbor in on_path:
                # Minimal-path search cannot revisit; skip (counts as a
                # searched link, as the hardware history store would).
                continue
            if not admissible(node, out_port, neighbor):
                continue
            entered = topology.port_of(neighbor, node)
            stack.append((neighbor, entered))
            path_ports.append(out_port)
            on_path.add(neighbor)
            advanced = True
            if neighbor == destination:
                result.success = True
                result.path = [n for n, _ in stack]
                result.ports = list(path_ports)
                return result
            break
        if not advanced:
            # Dead end: release this node and back the probe up one hop.
            stack.pop()
            on_path.discard(node)
            history.clear_point(point)
            if path_ports:
                path_ports.pop()
            if stack:
                result.backtracks += 1
    result.path = [source]
    return result


def count_minimal_paths(
    topology: Topology, source: int, destination: int, limit: int = 10000
) -> int:
    """Number of distinct minimal paths (search-space size; for analysis).

    Capped at ``limit`` to bound the recursion on dense graphs.
    """
    if source == destination:
        return 1
    total = 0
    stack = [(source, frozenset({source}))]
    while stack and total < limit:
        node, visited = stack.pop()
        for _, neighbor in profitable_ports(topology, node, destination):
            if neighbor in visited:
                continue
            if neighbor == destination:
                total += 1
                if total >= limit:
                    break
            else:
                stack.append((neighbor, visited | {neighbor}))
    return total
