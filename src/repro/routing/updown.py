"""Up*/down* routing for irregular topologies (Autonet [24]).

Up*/down* orients every link with respect to a BFS spanning tree: the
"up" end is the node closer to the root (ties broken by lower node id).
A legal route traverses zero or more up links followed by zero or more
down links — never down-then-up — which breaks every cycle in the channel
dependence graph and so guarantees deadlock freedom.  The MMR uses this as
the escape layer of the adaptive routing it borrows for best-effort
traffic in irregular networks [26, 27].
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..network.topology import Topology


class UpDownRouting:
    """Precomputed up*/down* orientation and route legality checks."""

    def __init__(self, topology: Topology, root: int = 0) -> None:
        topology._check(root)
        if not topology.is_connected():
            raise ValueError("up*/down* requires a connected topology")
        self.topology = topology
        self.root = root
        self.level: List[int] = self._bfs_levels()
        # Reachability over legal continuations is computed on demand.
        self._legal_reach_cache: Dict[Tuple[int, bool], frozenset] = {}

    def _bfs_levels(self) -> List[int]:
        level = [-1] * self.topology.num_nodes
        level[self.root] = 0
        frontier = deque([self.root])
        while frontier:
            node = frontier.popleft()
            for neighbor in self.topology.neighbors(node):
                if level[neighbor] < 0:
                    level[neighbor] = level[node] + 1
                    frontier.append(neighbor)
        return level

    def is_up(self, from_node: int, to_node: int) -> bool:
        """True when traversing from_node -> to_node goes *up* (toward the
        root: lower BFS level, ties to the lower node id)."""
        la, lb = self.level[from_node], self.level[to_node]
        if la != lb:
            return lb < la
        return to_node < from_node

    def legal_next_hops(
        self, node: int, destination: int, arrived_up: Optional[bool]
    ) -> List[Tuple[int, int, bool]]:
        """Legal (port, neighbor, goes_up) continuations from ``node``.

        ``arrived_up`` is the direction of the hop that brought the packet
        here (None at the source).  After a down hop only down hops remain
        legal.  Only hops from which the destination stays reachable via a
        legal suffix are returned, so following any returned hop can never
        dead-end.
        """
        out = []
        for neighbor in self.topology.neighbors(node):
            up = self.is_up(node, neighbor)
            if arrived_up is False and up:
                continue  # down -> up is illegal
            if destination == neighbor or destination in self._legal_reach(
                neighbor, up
            ):
                out.append((self.topology.port_of(node, neighbor), neighbor, up))
        return out

    def _legal_reach(self, node: int, arrived_up: bool) -> frozenset:
        """Nodes reachable from ``node`` given the last hop direction."""
        key = (node, arrived_up)
        cached = self._legal_reach_cache.get(key)
        if cached is not None:
            return cached
        seen = {(node, arrived_up)}
        reach = {node}
        frontier = deque([(node, arrived_up)])
        while frontier:
            here, came_up = frontier.popleft()
            for neighbor in self.topology.neighbors(here):
                up = self.is_up(here, neighbor)
                if came_up is False and up:
                    continue
                state = (neighbor, up)
                if state not in seen:
                    seen.add(state)
                    reach.add(neighbor)
                    frontier.append(state)
        result = frozenset(reach)
        self._legal_reach_cache[key] = result
        return result

    def route(self, source: int, destination: int) -> List[int]:
        """One legal up*/down* path (shortest legal), as a node list.

        BFS over (node, last-direction) states so the returned path is
        minimal among legal paths.
        """
        if source == destination:
            return [source]
        start = (source, None)
        parents: Dict[Tuple[int, Optional[bool]], Tuple[int, Optional[bool]]] = {}
        seen = {start}
        frontier = deque([start])
        while frontier:
            state = frontier.popleft()
            node, came_up = state
            for neighbor in self.topology.neighbors(node):
                up = self.is_up(node, neighbor)
                if came_up is False and up:
                    continue
                next_state = (neighbor, up)
                if next_state in seen:
                    continue
                seen.add(next_state)
                parents[next_state] = state
                if neighbor == destination:
                    path = [neighbor]
                    back = state
                    while True:
                        path.append(back[0])
                        if back == start:
                            break
                        back = parents[back]
                    path.reverse()
                    return path
                frontier.append(next_state)
        raise RuntimeError(
            f"no legal up*/down* path {source} -> {destination}: "
            "topology disconnected?"
        )
