"""History stores for backtracking probes (paper §3.5).

"In order to avoid searching the same links twice, a history store
associated with each input virtual channel records all the output links
that have already been searched."  The store is keyed by (router, input
channel) and holds the set of output links a probe has already tried from
that point in its search.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

# A search position: (router node id, arrival port) — the input channel the
# probe occupies at that router (-1 for the source injection point).
SearchPoint = Tuple[int, int]


class HistoryStore:
    """Per-search-point record of output links already probed."""

    def __init__(self) -> None:
        self._searched: Dict[SearchPoint, Set[int]] = {}

    def mark_searched(self, point: SearchPoint, output_port: int) -> None:
        """Record that the probe tried ``output_port`` from ``point``."""
        self._searched.setdefault(point, set()).add(output_port)

    def was_searched(self, point: SearchPoint, output_port: int) -> bool:
        """Has ``output_port`` already been tried from ``point``?"""
        return output_port in self._searched.get(point, ())

    def searched_at(self, point: SearchPoint) -> FrozenSet[int]:
        """All output ports tried from ``point`` so far."""
        return frozenset(self._searched.get(point, ()))

    def clear_point(self, point: SearchPoint) -> None:
        """Forget a search point (its VC was released on backtrack)."""
        self._searched.pop(point, None)

    def clear(self) -> None:
        """Forget everything (the probe completed or was abandoned)."""
        self._searched.clear()

    def total_marks(self) -> int:
        """Total (point, port) pairs recorded — probe search effort."""
        return sum(len(ports) for ports in self._searched.values())
